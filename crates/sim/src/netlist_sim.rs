//! Cycle-accurate interpretation of generated netlists.

use crate::{BusAccess, ClockDomain, Component, Sensitivity, SignalBus, SignalId, SimError};
use hdp_hdl::prim::Prim;
use hdp_hdl::{CellId, LogicVector, Netlist, PortDir};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// Per-cell state of sequential primitives.
#[derive(Debug, Clone)]
enum SeqState {
    None,
    Reg(LogicVector),
    Bram {
        mem: Vec<Option<u64>>,
        out: Option<u64>,
    },
    Fifo {
        depth: usize,
        data: VecDeque<u64>,
    },
    Lifo {
        depth: usize,
        data: Vec<u64>,
    },
}

/// Runs an [`hdp_hdl::Netlist`] as a simulated [`Component`].
///
/// This is how the designs emitted by the metaprogramming generator
/// are exercised against the board device models: the same netlist
/// that `hdp-synth` maps onto Spartan-IIE resources is interpreted
/// here, cell by cell, with full four-state semantics.
///
/// Entity ports are wired to simulator signals through the map given
/// at construction. `inout` ports are not supported by the interpreter
/// (the generated designs talk to the external SRAM through separate
/// `in`/`out` pins plus the req/ack handshake, as in Figure 5).
///
/// ## Incremental evaluation
///
/// The interpreter keeps a levelized view of the combinational cells
/// (their position in the topological order is their *rank*). After
/// the first full evaluation, each [`Component::eval`] re-evaluates
/// only the fanout cone of what actually changed — input nets that
/// latched a new value and outputs of sequential cells after a clock
/// edge — draining a rank-ordered worklist so every cell still sees
/// fully settled inputs. This makes a settle pass cost proportional to
/// activity rather than to design size, and is bit-identical to the
/// full sweep (the rank order is exactly the full sweep's visit
/// order over the affected cells).
///
/// The component is `Clone`: a pristine (never-evaluated) instance
/// can be cloned per job as a cheap template — the netlist is shared
/// behind an `Arc` and the derived state vectors memcpy, skipping
/// re-levelization and port re-wiring entirely.
#[derive(Clone)]
pub struct NetlistComponent {
    name: String,
    netlist: Arc<Netlist>,
    /// (port index in entity, sim signal) pairs.
    port_wiring: Vec<(String, PortDir, hdp_hdl::NetId, SignalId)>,
    topo: Vec<CellId>,
    net_values: Vec<LogicVector>,
    seq_state: Vec<SeqState>,
    /// Nets driven by at least one combinational cell (pre-set to `Z`
    /// each full eval so tri-state resolution works).
    comb_driven: Vec<bool>,
    /// Topological rank of each combinational cell (`usize::MAX` for
    /// sequential cells, which never enter the worklist).
    rank: Vec<usize>,
    /// net index -> combinational cells reading it.
    fanout: Vec<Vec<usize>>,
    /// net index -> combinational cells driving it (len > 1 marks a
    /// shared tri-state net whose drivers must co-evaluate).
    comb_drivers: Vec<Vec<usize>>,
    /// Indices of sequential cells (Reg / BlockRam / Fifo / Lifo).
    seq_cells: Vec<usize>,
    /// Worklist of scheduled combinational cells, drained in rank order.
    heap: BinaryHeap<Reverse<(usize, usize)>>,
    /// Whether a cell is currently on the worklist.
    queued: Vec<bool>,
    /// Scratch stack for transitive co-driver scheduling.
    sched_stack: Vec<usize>,
    /// Monotonic eval counter; a shared net is `Z`-reset the first time
    /// a driver writes it in a given wave.
    wave: u64,
    net_wave: Vec<u64>,
    /// Run the legacy whole-netlist evaluation once (construction,
    /// reset, white-box mutation).
    full_eval: bool,
    /// Incremental evaluation enabled (the default). Off, every eval
    /// re-runs the whole netlist — the reference path, kept for
    /// differential testing and as a benchmark baseline.
    incremental: bool,
    /// A clock edge happened: sequential outputs must be re-presented.
    seq_dirty: bool,
    /// Per-net activity counting enabled (off by default: the change
    /// sites then pay one bool check).
    track_activity: bool,
    /// net index -> observed value changes (the per-net switching
    /// activity of the generated design). Sized on first enable.
    activity: Vec<u64>,
    /// Pre-eval snapshot scratch for full evaluations, which rewrite
    /// every net and so must diff rather than count at change sites.
    activity_snapshot: Vec<LogicVector>,
}

impl std::fmt::Debug for NetlistComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetlistComponent")
            .field("name", &self.name)
            .field("entity", &self.netlist.entity().name())
            .field("cells", &self.netlist.cells().len())
            .finish()
    }
}

impl NetlistComponent {
    /// Wraps a validated netlist, wiring each entity port to a
    /// simulator signal.
    ///
    /// # Errors
    ///
    /// Returns the netlist's own validation failure, a
    /// [`SimError::Protocol`] for an unmapped or unsupported port, or a
    /// width mismatch between a port and its signal.
    pub fn new(
        name: impl Into<String>,
        netlist: Netlist,
        bus: &SignalBus,
        port_map: &[(&str, SignalId)],
    ) -> Result<Self, SimError> {
        hdp_hdl::validate::check(&netlist)?;
        Self::new_prevalidated(name, Arc::new(netlist), bus, port_map)
    }

    /// Like [`NetlistComponent::new`] but skips the netlist validation
    /// pass, for netlists already validated by an earlier `new` — e.g.
    /// a content-addressed design cache replaying the same netlist for
    /// every stimulus. Port wiring is still fully checked.
    ///
    /// # Errors
    ///
    /// A [`SimError::Protocol`] for an unmapped or unsupported port, a
    /// width mismatch between a port and its signal, or a
    /// combinational cycle (levelization runs either way).
    pub fn new_prevalidated(
        name: impl Into<String>,
        netlist: Arc<Netlist>,
        bus: &SignalBus,
        port_map: &[(&str, SignalId)],
    ) -> Result<Self, SimError> {
        let name = name.into();
        let topo = netlist.comb_topo_order()?;
        let mut port_wiring = Vec::new();
        for port in netlist.entity().ports() {
            if port.dir() == PortDir::InOut {
                return Err(SimError::Protocol {
                    component: name,
                    message: format!(
                        "inout port `{}` is not supported by the netlist interpreter",
                        port.name()
                    ),
                });
            }
            let Some(&(_, signal)) = port_map.iter().find(|(p, _)| *p == port.name()) else {
                return Err(SimError::Protocol {
                    component: name,
                    message: format!("port `{}` is not mapped to a signal", port.name()),
                });
            };
            if bus.width(signal)? != port.width() {
                return Err(SimError::SignalWidth {
                    signal: bus.name(signal)?.to_owned(),
                    expected: port.width(),
                    found: bus.width(signal)?,
                });
            }
            let net = netlist
                .port_net(port.name())
                .expect("validated netlist binds every port");
            port_wiring.push((port.name().to_owned(), port.dir(), net, signal));
        }
        for (p, _) in port_map {
            if netlist.entity().port(p).is_none() {
                return Err(SimError::Protocol {
                    component: name,
                    message: format!("mapped port `{p}` does not exist on the entity"),
                });
            }
        }
        let net_values: Vec<LogicVector> = netlist
            .nets()
            .iter()
            .map(|n| LogicVector::unknown(n.width()).expect("net widths validated"))
            .collect();
        let mut comb_driven = vec![false; netlist.nets().len()];
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); netlist.nets().len()];
        let mut comb_drivers: Vec<Vec<usize>> = vec![Vec::new(); netlist.nets().len()];
        let mut seq_cells = Vec::new();
        let mut seq_state = Vec::with_capacity(netlist.cells().len());
        for (ci, cell) in netlist.cells().iter().enumerate() {
            let state = match cell.prim() {
                Prim::Reg { width, .. } => {
                    SeqState::Reg(LogicVector::unknown(*width).expect("validated"))
                }
                Prim::BlockRam { addr_width, .. } => SeqState::Bram {
                    mem: vec![None; 1 << addr_width],
                    out: None,
                },
                Prim::FifoMacro { depth, .. } => SeqState::Fifo {
                    depth: *depth,
                    data: VecDeque::new(),
                },
                Prim::LifoMacro { depth, .. } => SeqState::Lifo {
                    depth: *depth,
                    data: Vec::new(),
                },
                _ => {
                    for &net in cell.outputs() {
                        comb_driven[net.index()] = true;
                        comb_drivers[net.index()].push(ci);
                    }
                    for &net in cell.inputs() {
                        fanout[net.index()].push(ci);
                    }
                    SeqState::None
                }
            };
            if !matches!(state, SeqState::None) {
                seq_cells.push(ci);
            }
            seq_state.push(state);
        }
        let mut rank = vec![usize::MAX; netlist.cells().len()];
        for (pos, &ci) in topo.iter().enumerate() {
            rank[ci.index()] = pos;
        }
        let queued = vec![false; netlist.cells().len()];
        let net_wave = vec![0; netlist.nets().len()];
        Ok(Self {
            name,
            netlist,
            port_wiring,
            topo,
            net_values,
            seq_state,
            comb_driven,
            rank,
            fanout,
            comb_drivers,
            seq_cells,
            heap: BinaryHeap::new(),
            queued,
            sched_stack: Vec::new(),
            wave: 0,
            net_wave,
            full_eval: true,
            incremental: true,
            seq_dirty: true,
            track_activity: false,
            activity: Vec::new(),
            activity_snapshot: Vec::new(),
        })
    }

    /// Enables or disables incremental evaluation (on by default).
    /// Disabled, every settle pass re-evaluates the whole netlist in
    /// topological order — bit-identical, just slower.
    pub fn set_incremental(&mut self, enabled: bool) {
        self.incremental = enabled;
        if !enabled {
            self.full_eval = true;
        }
    }

    /// The wrapped netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The port wiring, for the lowering translator: `(port, dir, net,
    /// signal)` in wiring order.
    pub(crate) fn lowered_wiring(&self) -> &[(String, PortDir, hdp_hdl::NetId, SignalId)] {
        &self.port_wiring
    }

    /// The output-net values a sequential cell currently presents, for
    /// the lowered executor (which reproduces the interpreter's
    /// sequential-presentation phase on its own planes).
    pub(crate) fn lowered_seq_outputs(&self, ci: usize) -> Vec<(usize, LogicVector)> {
        self.seq_output_values(ci)
    }

    /// Writes a settled net value back into the interpreter's net
    /// cache. The lowered executor uses this for sequential cell
    /// *inputs* so a delegated `tick` samples exactly the values the op
    /// stream computed.
    pub(crate) fn lowered_sync_net(&mut self, net: usize, value: LogicVector) {
        self.net_values[net] = value;
    }

    /// Marks the interpreter's combinational cache stale after a
    /// lowered settle, so any later interpreted evaluation (fallback,
    /// mode switch) recomputes every net instead of trusting values
    /// the op stream may have bypassed.
    pub(crate) fn lowered_mark_stale(&mut self) {
        self.full_eval = true;
    }

    /// The settled value of an internal net, for white-box assertions.
    #[must_use]
    pub fn net_value(&self, name: &str) -> Option<LogicVector> {
        let id = self.netlist.find_net(name)?;
        Some(self.net_values[id.index()])
    }

    /// Enables or disables per-net activity counting (off by default).
    /// While enabled, every observed net-value change — input latches,
    /// sequential outputs after a clock edge, combinational settles —
    /// increments that net's counter, giving generated designs the
    /// same switching-activity profile telemetry gives top-level
    /// signals. Counts accumulated so far are retained across toggles.
    pub fn set_activity_tracking(&mut self, enabled: bool) {
        self.track_activity = enabled;
        if enabled && self.activity.len() != self.netlist.nets().len() {
            self.activity.resize(self.netlist.nets().len(), 0);
        }
    }

    /// The accumulated value-change count of an internal net, or
    /// `None` for an unknown net. Zero until
    /// [`NetlistComponent::set_activity_tracking`] is enabled.
    #[must_use]
    pub fn net_activity(&self, name: &str) -> Option<u64> {
        let id = self.netlist.find_net(name)?;
        Some(self.activity.get(id.index()).copied().unwrap_or(0))
    }

    /// All per-net activity counters as `(net name, changes)` pairs in
    /// net declaration order. Empty until activity tracking has been
    /// enabled.
    #[must_use]
    pub fn net_activity_table(&self) -> Vec<(&str, u64)> {
        self.netlist
            .nets()
            .iter()
            .zip(self.activity.iter())
            .map(|(net, &count)| (net.name(), count))
            .collect()
    }

    /// The current output-net values a sequential cell presents, as
    /// `(net index, value)` pairs. Empty for combinational cells.
    fn seq_output_values(&self, ci: usize) -> Vec<(usize, LogicVector)> {
        let cell = &self.netlist.cells()[ci];
        match (&self.seq_state[ci], cell.prim()) {
            (SeqState::Reg(v), Prim::Reg { .. }) => {
                vec![(cell.outputs()[0].index(), *v)]
            }
            (SeqState::Bram { out, .. }, Prim::BlockRam { data_width, .. }) => {
                let v = match out {
                    Some(v) => LogicVector::from_u64(*v, *data_width).expect("stored word"),
                    None => LogicVector::unknown(*data_width).expect("validated"),
                };
                vec![(cell.outputs()[0].index(), v)]
            }
            (SeqState::Fifo { depth, data }, Prim::FifoMacro { width, .. }) => {
                let outs = cell.outputs();
                let front = match data.front() {
                    Some(&v) => LogicVector::from_u64(v, *width).expect("stored word"),
                    None => LogicVector::unknown(*width).expect("validated"),
                };
                vec![
                    (outs[0].index(), front),
                    (
                        outs[1].index(),
                        LogicVector::from_u64(u64::from(data.is_empty()), 1).expect("1 bit"),
                    ),
                    (
                        outs[2].index(),
                        LogicVector::from_u64(u64::from(data.len() >= *depth), 1).expect("1 bit"),
                    ),
                ]
            }
            (SeqState::Lifo { depth, data }, Prim::LifoMacro { width, .. }) => {
                let outs = cell.outputs();
                let top = match data.last() {
                    Some(&v) => LogicVector::from_u64(v, *width).expect("stored word"),
                    None => LogicVector::unknown(*width).expect("validated"),
                };
                vec![
                    (outs[0].index(), top),
                    (
                        outs[1].index(),
                        LogicVector::from_u64(u64::from(data.is_empty()), 1).expect("1 bit"),
                    ),
                    (
                        outs[2].index(),
                        LogicVector::from_u64(u64::from(data.len() >= *depth), 1).expect("1 bit"),
                    ),
                ]
            }
            _ => Vec::new(),
        }
    }

    fn drive_seq_outputs(&mut self) {
        for i in 0..self.seq_cells.len() {
            let ci = self.seq_cells[i];
            for (net, v) in self.seq_output_values(ci) {
                self.net_values[net] = v;
            }
        }
    }

    /// Puts a combinational cell on the rank-ordered worklist, along
    /// with (transitively) every co-driver of its shared output nets —
    /// a shared tri-state net is only correct when all its drivers
    /// contribute to the same resolution wave.
    fn schedule_cell(&mut self, cell: usize) {
        self.sched_stack.push(cell);
        while let Some(ci) = self.sched_stack.pop() {
            if self.queued[ci] {
                continue;
            }
            self.queued[ci] = true;
            self.heap.push(Reverse((self.rank[ci], ci)));
            let n_outs = self.netlist.cells()[ci].outputs().len();
            for k in 0..n_outs {
                let net = self.netlist.cells()[ci].outputs()[k].index();
                if self.comb_drivers[net].len() > 1 {
                    for j in 0..self.comb_drivers[net].len() {
                        self.sched_stack.push(self.comb_drivers[net][j]);
                    }
                }
            }
        }
    }

    /// Schedules every combinational reader of a net.
    fn schedule_net_fanout(&mut self, net: usize) {
        for k in 0..self.fanout[net].len() {
            let reader = self.fanout[net][k];
            self.schedule_cell(reader);
        }
    }

    /// Legacy whole-netlist evaluation: every cell, in topological
    /// order. Used for the first pass after construction, reset or
    /// white-box mutation; also the reference the incremental path
    /// must match bit for bit.
    fn eval_full(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        // Full evaluation rewrites every net (tri-states are pre-set to
        // Z), so activity must be measured as a pre/post diff.
        if self.track_activity {
            self.activity_snapshot.clear();
            self.activity_snapshot.extend_from_slice(&self.net_values);
        }
        // 1. Latch input ports into their nets.
        for (_, dir, net, signal) in &self.port_wiring {
            if *dir == PortDir::In {
                self.net_values[net.index()] = bus.read(*signal)?;
            }
        }
        // 2. Present sequential outputs.
        self.drive_seq_outputs();
        // 3. Pre-release tri-state buses.
        for (ni, driven) in self.comb_driven.iter().enumerate() {
            if *driven {
                let width = self.net_values[ni].width();
                self.net_values[ni] = LogicVector::high_z(width).expect("validated");
            }
        }
        // 4. Evaluate combinational cells in topological order.
        for idx in 0..self.topo.len() {
            let ci = self.topo[idx];
            let cell = &self.netlist.cells()[ci.index()];
            let inputs: Vec<LogicVector> = cell
                .inputs()
                .iter()
                .map(|n| self.net_values[n.index()])
                .collect();
            let outputs = cell.prim().eval_comb(&inputs).map_err(SimError::from)?;
            for (&net, value) in cell.outputs().iter().zip(outputs) {
                let slot = &mut self.net_values[net.index()];
                *slot = slot.resolve(&value).map_err(SimError::from)?;
            }
        }
        // 5. Drive output ports.
        for (_, dir, net, signal) in &self.port_wiring {
            if *dir == PortDir::Out {
                bus.drive(*signal, self.net_values[net.index()])?;
            }
        }
        if self.track_activity {
            for (ni, old) in self.activity_snapshot.iter().enumerate() {
                if self.net_values[ni] != *old {
                    self.activity[ni] += 1;
                }
            }
        }
        // The netlist is now fully settled from current inputs and
        // state: later passes only need the fanout of future changes.
        self.heap.clear();
        self.queued.iter_mut().for_each(|q| *q = false);
        self.full_eval = false;
        self.seq_dirty = false;
        Ok(())
    }

    /// Incremental evaluation: re-run only the fanout cone of changed
    /// input nets and (after a clock edge) changed sequential outputs.
    fn eval_incremental(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        self.wave += 1;
        // 1. Latch input ports, scheduling readers of changed nets.
        for pi in 0..self.port_wiring.len() {
            let (dir, net, signal) = {
                let w = &self.port_wiring[pi];
                (w.1, w.2, w.3)
            };
            if dir == PortDir::In {
                let new = bus.read(signal)?;
                if new != self.net_values[net.index()] {
                    self.net_values[net.index()] = new;
                    if self.track_activity {
                        self.activity[net.index()] += 1;
                    }
                    self.schedule_net_fanout(net.index());
                }
            }
        }
        // 2. After a clock edge, re-present sequential outputs.
        if self.seq_dirty {
            self.seq_dirty = false;
            for i in 0..self.seq_cells.len() {
                let ci = self.seq_cells[i];
                for (net, v) in self.seq_output_values(ci) {
                    if v != self.net_values[net] {
                        self.net_values[net] = v;
                        if self.track_activity {
                            self.activity[net] += 1;
                        }
                        self.schedule_net_fanout(net);
                    }
                }
            }
        }
        // 3. Drain the worklist in rank order. Rank order guarantees a
        // reader runs after every (scheduled) driver of its inputs, so
        // each cell sees settled values exactly as in the full sweep.
        while let Some(Reverse((_, ci))) = self.heap.pop() {
            self.queued[ci] = false;
            let cell = &self.netlist.cells()[ci];
            let inputs: Vec<LogicVector> = cell
                .inputs()
                .iter()
                .map(|n| self.net_values[n.index()])
                .collect();
            let out_nets: Vec<usize> = cell.outputs().iter().map(|n| n.index()).collect();
            let outputs = cell.prim().eval_comb(&inputs).map_err(SimError::from)?;
            for (&net, value) in out_nets.iter().zip(outputs) {
                let old = self.net_values[net];
                let new = if self.comb_drivers[net].len() > 1 {
                    // Shared net: Z-reset once per wave, then resolve
                    // each co-driver's contribution (all of them are
                    // scheduled together by `schedule_cell`).
                    let base = if self.net_wave[net] == self.wave {
                        old
                    } else {
                        self.net_wave[net] = self.wave;
                        LogicVector::high_z(old.width()).expect("validated")
                    };
                    base.resolve(&value).map_err(SimError::from)?
                } else {
                    value
                };
                if new != old {
                    self.net_values[net] = new;
                    if self.track_activity {
                        self.activity[net] += 1;
                    }
                    self.schedule_net_fanout(net);
                }
            }
        }
        // 4. Drive output ports (the bus deduplicates unchanged values).
        for (_, dir, net, signal) in &self.port_wiring {
            if *dir == PortDir::Out {
                bus.drive(*signal, self.net_values[net.index()])?;
            }
        }
        Ok(())
    }

    fn strobe(&self, net: hdp_hdl::NetId) -> bool {
        self.net_values[net.index()].to_u64() == Some(1)
    }

    fn word(&self, net: hdp_hdl::NetId, what: &str) -> Result<u64, SimError> {
        self.net_values[net.index()]
            .to_u64()
            .ok_or_else(|| SimError::Protocol {
                component: self.name.clone(),
                message: format!("undefined {what} on net `{}`", self.netlist.net(net).name()),
            })
    }

    /// The clock-edge body shared by [`Component::tick`] (every cell)
    /// and [`Component::tick_domains`] (only cells whose domain fires).
    fn tick_cells(&mut self, firing: Option<&[&str]>) -> Result<(), SimError> {
        self.seq_dirty = true;
        // Per-domain firing mask, indexable by the cell's domain index.
        let fires: Option<Vec<bool>> = firing.map(|f| {
            self.netlist
                .domains()
                .iter()
                .map(|d| f.contains(&d.name()))
                .collect()
        });
        // net_values hold the settled pre-edge values from the last eval.
        for si in 0..self.seq_cells.len() {
            let ci = self.seq_cells[si];
            if let Some(mask) = &fires {
                if !mask[self.netlist.cell_domains()[ci]] {
                    continue;
                }
            }
            let cell = &self.netlist.cells()[ci];
            let ins = cell.inputs().to_vec();
            match cell.prim().clone() {
                Prim::Reg { has_enable, .. } => {
                    let load = if has_enable {
                        self.strobe(ins[1])
                    } else {
                        true
                    };
                    if load {
                        let d = self.net_values[ins[0].index()];
                        if let SeqState::Reg(v) = &mut self.seq_state[ci] {
                            *v = d;
                        }
                    }
                }
                Prim::BlockRam { .. } => {
                    let we = self.strobe(ins[0]);
                    let (waddr, wdata) = if we {
                        (
                            Some(self.word(ins[1], "write address")?),
                            Some(self.word(ins[2], "write data")?),
                        )
                    } else {
                        (None, None)
                    };
                    let raddr = self.net_values[ins[3].index()].to_u64();
                    if let SeqState::Bram { mem, out } = &mut self.seq_state[ci] {
                        if let (Some(a), Some(d)) = (waddr, wdata) {
                            mem[a as usize] = Some(d);
                        }
                        *out = raddr.and_then(|a| mem[a as usize]);
                    }
                }
                Prim::FifoMacro { .. } => {
                    let push = self.strobe(ins[0]);
                    let pop = self.strobe(ins[1]);
                    let wdata = if push {
                        Some(self.word(ins[2], "fifo write data")?)
                    } else {
                        None
                    };
                    let name = self.name.clone();
                    let cell_name = cell.name().to_owned();
                    if let SeqState::Fifo { depth, data } = &mut self.seq_state[ci] {
                        if pop && data.pop_front().is_none() {
                            return Err(SimError::Protocol {
                                component: name,
                                message: format!("pop on empty fifo `{cell_name}`"),
                            });
                        }
                        if let Some(d) = wdata {
                            if data.len() >= *depth {
                                return Err(SimError::Protocol {
                                    component: name,
                                    message: format!("push on full fifo `{cell_name}`"),
                                });
                            }
                            data.push_back(d);
                        }
                    }
                }
                Prim::LifoMacro { .. } => {
                    let push = self.strobe(ins[0]);
                    let pop = self.strobe(ins[1]);
                    let wdata = if push {
                        Some(self.word(ins[2], "lifo write data")?)
                    } else {
                        None
                    };
                    let name = self.name.clone();
                    let cell_name = cell.name().to_owned();
                    if let SeqState::Lifo { depth, data } = &mut self.seq_state[ci] {
                        if pop && data.pop().is_none() {
                            return Err(SimError::Protocol {
                                component: name,
                                message: format!("pop on empty lifo `{cell_name}`"),
                            });
                        }
                        if let Some(d) = wdata {
                            if data.len() >= *depth {
                                return Err(SimError::Protocol {
                                    component: name,
                                    message: format!("push on full lifo `{cell_name}`"),
                                });
                            }
                            data.push(d);
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl Component for NetlistComponent {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        if self.full_eval || !self.incremental {
            self.eval_full(bus)
        } else {
            self.eval_incremental(bus)
        }
    }

    fn tick(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.tick_cells(None)
    }

    fn clock_domains(&self) -> Vec<ClockDomain> {
        self.netlist
            .domains()
            .iter()
            .map(|d| ClockDomain::new(d.name(), d.period()))
            .collect()
    }

    fn tick_domains(&mut self, _bus: &mut SignalBus, firing: &[&str]) -> Result<(), SimError> {
        self.tick_cells(Some(firing))
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        for (ci, cell) in self.netlist.cells().iter().enumerate() {
            match (&mut self.seq_state[ci], cell.prim()) {
                (
                    SeqState::Reg(v),
                    Prim::Reg {
                        width, reset_value, ..
                    },
                ) => {
                    *v = LogicVector::from_u64(*reset_value, *width).expect("validated reset");
                }
                (SeqState::Bram { out, .. }, _) => *out = None,
                (SeqState::Fifo { data, .. }, _) => data.clear(),
                (SeqState::Lifo { data, .. }, _) => data.clear(),
                _ => {}
            }
        }
        self.full_eval = true;
        self.seq_dirty = true;
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        Sensitivity::Signals(
            self.port_wiring
                .iter()
                .filter(|(_, dir, _, _)| *dir == PortDir::In)
                .map(|&(_, _, _, signal)| signal)
                .collect(),
        )
    }

    fn is_clocked(&self) -> bool {
        !self.seq_cells.is_empty()
    }

    fn drives(&self) -> Option<Vec<SignalId>> {
        Some(
            self.port_wiring
                .iter()
                .filter(|(_, dir, _, _)| *dir != PortDir::In)
                .map(|&(_, _, _, signal)| signal)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use hdp_hdl::prim::Prim;
    use hdp_hdl::Entity;

    /// Counter netlist: q' = q + 1 via Reg + Inc.
    fn counter_netlist() -> Netlist {
        let entity = Entity::builder("counter")
            .port("q", PortDir::Out, 8)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let q = nl.add_net("q", 8).unwrap();
        let d = nl.add_net("d", 8).unwrap();
        nl.add_cell(
            "u_reg",
            Prim::Reg {
                width: 8,
                has_enable: false,
                reset_value: 0,
            },
            vec![d],
            vec![q],
        )
        .unwrap();
        nl.add_cell("u_inc", Prim::Inc { width: 8 }, vec![q], vec![d])
            .unwrap();
        nl.bind_port("q", q).unwrap();
        nl
    }

    #[test]
    fn counter_netlist_counts() {
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 8).unwrap();
        let dut = NetlistComponent::new("dut", counter_netlist(), sim.bus(), &[("q", q)]).unwrap();
        sim.add_component(dut);
        let mon = sim.add_component(crate::probe::Monitor::with_capacity("mon_q", q, 7));
        sim.reset().unwrap();
        assert_eq!(sim.peek(q).unwrap().to_u64(), Some(0));
        sim.run(7).unwrap();
        assert_eq!(sim.peek(q).unwrap().to_u64(), Some(7));
        // The monitor samples the settled pre-edge value each cycle.
        sim.component::<crate::probe::Monitor>(mon)
            .unwrap()
            .expect_values(&[0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn unmapped_port_is_rejected() {
        let sim = Simulator::new();
        let err = NetlistComponent::new("dut", counter_netlist(), sim.bus(), &[]).unwrap_err();
        assert!(matches!(err, SimError::Protocol { .. }));
    }

    #[test]
    fn extra_mapped_port_is_rejected() {
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 8).unwrap();
        let x = sim.add_signal("x", 8).unwrap();
        let err = NetlistComponent::new(
            "dut",
            counter_netlist(),
            sim.bus(),
            &[("q", q), ("nope", x)],
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Protocol { .. }));
    }

    #[test]
    fn width_mismatched_signal_is_rejected() {
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 4).unwrap();
        let err =
            NetlistComponent::new("dut", counter_netlist(), sim.bus(), &[("q", q)]).unwrap_err();
        assert!(matches!(err, SimError::SignalWidth { .. }));
    }

    /// A fifo-macro wrapper netlist for protocol tests.
    fn fifo_netlist(depth: usize) -> Netlist {
        let entity = Entity::builder("f")
            .port("push", PortDir::In, 1)
            .unwrap()
            .port("pop", PortDir::In, 1)
            .unwrap()
            .port("wdata", PortDir::In, 8)
            .unwrap()
            .port("rdata", PortDir::Out, 8)
            .unwrap()
            .port("empty", PortDir::Out, 1)
            .unwrap()
            .port("full", PortDir::Out, 1)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let push = nl.add_net("push", 1).unwrap();
        let pop = nl.add_net("pop", 1).unwrap();
        let wdata = nl.add_net("wdata", 8).unwrap();
        let rdata = nl.add_net("rdata", 8).unwrap();
        let empty = nl.add_net("empty", 1).unwrap();
        let full = nl.add_net("full", 1).unwrap();
        nl.add_cell(
            "u_fifo",
            Prim::FifoMacro { depth, width: 8 },
            vec![push, pop, wdata],
            vec![rdata, empty, full],
        )
        .unwrap();
        for (p, n) in [
            ("push", push),
            ("pop", pop),
            ("wdata", wdata),
            ("rdata", rdata),
            ("empty", empty),
            ("full", full),
        ] {
            nl.bind_port(p, n).unwrap();
        }
        nl
    }

    #[test]
    fn fifo_macro_behaves_like_device() {
        let mut sim = Simulator::new();
        let push = sim.add_signal("push", 1).unwrap();
        let pop = sim.add_signal("pop", 1).unwrap();
        let wdata = sim.add_signal("wdata", 8).unwrap();
        let rdata = sim.add_signal("rdata", 8).unwrap();
        let empty = sim.add_signal("empty", 1).unwrap();
        let full = sim.add_signal("full", 1).unwrap();
        let dut = NetlistComponent::new(
            "dut",
            fifo_netlist(4),
            sim.bus(),
            &[
                ("push", push),
                ("pop", pop),
                ("wdata", wdata),
                ("rdata", rdata),
                ("empty", empty),
                ("full", full),
            ],
        )
        .unwrap();
        sim.add_component(dut);
        sim.poke(push, 0).unwrap();
        sim.poke(pop, 0).unwrap();
        sim.poke(wdata, 0).unwrap();
        sim.reset().unwrap();
        assert_eq!(sim.peek(empty).unwrap().to_u64(), Some(1));
        sim.poke(push, 1).unwrap();
        sim.poke(wdata, 0x33).unwrap();
        sim.step().unwrap();
        sim.poke(push, 0).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.peek(rdata).unwrap().to_u64(), Some(0x33));
        assert_eq!(sim.peek(empty).unwrap().to_u64(), Some(0));
        // Pop on empty after draining is a protocol error.
        sim.poke(pop, 1).unwrap();
        sim.step().unwrap();
        let err = sim.step().unwrap_err();
        assert!(matches!(err, SimError::Protocol { .. }));
    }

    #[test]
    fn lifo_macro_reverses_order() {
        let entity = Entity::builder("l")
            .port("push", PortDir::In, 1)
            .unwrap()
            .port("pop", PortDir::In, 1)
            .unwrap()
            .port("wdata", PortDir::In, 8)
            .unwrap()
            .port("rdata", PortDir::Out, 8)
            .unwrap()
            .port("empty", PortDir::Out, 1)
            .unwrap()
            .port("full", PortDir::Out, 1)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let push = nl.add_net("push", 1).unwrap();
        let pop = nl.add_net("pop", 1).unwrap();
        let wdata = nl.add_net("wdata", 8).unwrap();
        let rdata = nl.add_net("rdata", 8).unwrap();
        let empty = nl.add_net("empty", 1).unwrap();
        let full = nl.add_net("full", 1).unwrap();
        nl.add_cell(
            "u_lifo",
            Prim::LifoMacro { depth: 4, width: 8 },
            vec![push, pop, wdata],
            vec![rdata, empty, full],
        )
        .unwrap();
        for (p, n) in [
            ("push", push),
            ("pop", pop),
            ("wdata", wdata),
            ("rdata", rdata),
            ("empty", empty),
            ("full", full),
        ] {
            nl.bind_port(p, n).unwrap();
        }
        let mut sim = Simulator::new();
        let push_s = sim.add_signal("push", 1).unwrap();
        let pop_s = sim.add_signal("pop", 1).unwrap();
        let wdata_s = sim.add_signal("wdata", 8).unwrap();
        let rdata_s = sim.add_signal("rdata", 8).unwrap();
        let empty_s = sim.add_signal("empty", 1).unwrap();
        let full_s = sim.add_signal("full", 1).unwrap();
        let dut = NetlistComponent::new(
            "dut",
            nl,
            sim.bus(),
            &[
                ("push", push_s),
                ("pop", pop_s),
                ("wdata", wdata_s),
                ("rdata", rdata_s),
                ("empty", empty_s),
                ("full", full_s),
            ],
        )
        .unwrap();
        sim.add_component(dut);
        sim.poke(push_s, 0).unwrap();
        sim.poke(pop_s, 0).unwrap();
        sim.poke(wdata_s, 0).unwrap();
        sim.reset().unwrap();
        for v in [5u64, 6, 7] {
            sim.poke(push_s, 1).unwrap();
            sim.poke(wdata_s, v).unwrap();
            sim.step().unwrap();
        }
        sim.poke(push_s, 0).unwrap();
        let mut seen = Vec::new();
        for _ in 0..3 {
            sim.settle().unwrap();
            seen.push(sim.peek(rdata_s).unwrap().to_u64().unwrap());
            sim.poke(pop_s, 1).unwrap();
            sim.step().unwrap();
            sim.poke(pop_s, 0).unwrap();
        }
        assert_eq!(seen, vec![7, 6, 5]);
        sim.settle().unwrap();
        assert_eq!(sim.peek(empty_s).unwrap().to_u64(), Some(1));
    }

    #[test]
    fn net_activity_counts_changes() {
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 8).unwrap();
        let mut dut =
            NetlistComponent::new("dut", counter_netlist(), sim.bus(), &[("q", q)]).unwrap();
        dut.set_activity_tracking(true);
        let id = sim.add_component(dut);
        sim.reset().unwrap();
        sim.run(5).unwrap();
        let dut = sim.component::<NetlistComponent>(id).unwrap();
        // q changes on reset (X -> 0) and once per clock edge.
        let q_act = dut.net_activity("q").unwrap();
        let d_act = dut.net_activity("d").unwrap();
        assert!(q_act >= 5, "q toggled at least once per cycle: {q_act}");
        assert!(d_act >= 5, "d follows q: {d_act}");
        assert!(dut.net_activity("nonexistent").is_none());
        let table = dut.net_activity_table();
        assert_eq!(table.len(), 2);
        assert!(table.iter().any(|&(n, c)| n == "q" && c == q_act));
    }

    #[test]
    fn net_activity_off_by_default() {
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 8).unwrap();
        let dut = NetlistComponent::new("dut", counter_netlist(), sim.bus(), &[("q", q)]).unwrap();
        let id = sim.add_component(dut);
        sim.reset().unwrap();
        sim.run(3).unwrap();
        let dut = sim.component::<NetlistComponent>(id).unwrap();
        assert_eq!(dut.net_activity("q"), Some(0));
        assert!(dut.net_activity_table().is_empty());
    }

    #[test]
    fn second_domain_register_ticks_at_its_own_rate() {
        // Two independent counters in one netlist: `u_fast` on the
        // default clk, `u_slow` in an `rd` domain firing every second
        // base step.
        let entity = Entity::builder("two")
            .port("qf", PortDir::Out, 8)
            .unwrap()
            .port("qs", PortDir::Out, 8)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let qf = nl.add_net("qf", 8).unwrap();
        let df = nl.add_net("df", 8).unwrap();
        let qs = nl.add_net("qs", 8).unwrap();
        let ds = nl.add_net("ds", 8).unwrap();
        let rd = nl.add_domain("rd", 2).unwrap();
        let reg = |v| Prim::Reg {
            width: 8,
            has_enable: false,
            reset_value: v,
        };
        nl.add_cell("u_fast", reg(0), vec![df], vec![qf]).unwrap();
        nl.add_cell_in_domain("u_slow", reg(0), vec![ds], vec![qs], rd)
            .unwrap();
        nl.add_cell("i_f", Prim::Inc { width: 8 }, vec![qf], vec![df])
            .unwrap();
        nl.add_cell("i_s", Prim::Inc { width: 8 }, vec![qs], vec![ds])
            .unwrap();
        nl.bind_port("qf", qf).unwrap();
        nl.bind_port("qs", qs).unwrap();
        let mut sim = Simulator::new();
        let qf_s = sim.add_signal("qf", 8).unwrap();
        let qs_s = sim.add_signal("qs", 8).unwrap();
        let dut =
            NetlistComponent::new("dut", nl, sim.bus(), &[("qf", qf_s), ("qs", qs_s)]).unwrap();
        sim.add_component(dut);
        sim.reset().unwrap();
        sim.run(6).unwrap();
        assert_eq!(sim.peek(qf_s).unwrap().to_u64(), Some(6));
        // `rd` fires at t = 0, 2, 4 — three edges in six steps.
        assert_eq!(sim.peek(qs_s).unwrap().to_u64(), Some(3));
    }

    #[test]
    fn net_value_white_box_probe() {
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 8).unwrap();
        let dut = NetlistComponent::new("dut", counter_netlist(), sim.bus(), &[("q", q)]).unwrap();
        let id = sim.add_component(dut);
        sim.reset().unwrap();
        sim.run(3).unwrap();
        let dut = sim.component::<NetlistComponent>(id).unwrap();
        assert_eq!(dut.net_value("q").unwrap().to_u64(), Some(3));
        assert_eq!(dut.net_value("d").unwrap().to_u64(), Some(4));
        assert!(dut.net_value("nonexistent").is_none());
    }
}
