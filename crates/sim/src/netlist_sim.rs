//! Cycle-accurate interpretation of generated netlists.

use crate::{Component, SignalBus, SignalId, SimError};
use hdp_hdl::prim::Prim;
use hdp_hdl::{CellId, LogicVector, Netlist, PortDir};
use std::collections::VecDeque;

/// Per-cell state of sequential primitives.
#[derive(Debug, Clone)]
enum SeqState {
    None,
    Reg(LogicVector),
    Bram {
        mem: Vec<Option<u64>>,
        out: Option<u64>,
    },
    Fifo {
        depth: usize,
        data: VecDeque<u64>,
    },
    Lifo {
        depth: usize,
        data: Vec<u64>,
    },
}

/// Runs an [`hdp_hdl::Netlist`] as a simulated [`Component`].
///
/// This is how the designs emitted by the metaprogramming generator
/// are exercised against the board device models: the same netlist
/// that `hdp-synth` maps onto Spartan-IIE resources is interpreted
/// here, cell by cell, with full four-state semantics.
///
/// Entity ports are wired to simulator signals through the map given
/// at construction. `inout` ports are not supported by the interpreter
/// (the generated designs talk to the external SRAM through separate
/// `in`/`out` pins plus the req/ack handshake, as in Figure 5).
pub struct NetlistComponent {
    name: String,
    netlist: Netlist,
    /// (port index in entity, sim signal) pairs.
    port_wiring: Vec<(String, PortDir, hdp_hdl::NetId, SignalId)>,
    topo: Vec<CellId>,
    net_values: Vec<LogicVector>,
    seq_state: Vec<SeqState>,
    /// Nets driven by at least one combinational cell (pre-set to `Z`
    /// each eval so tri-state resolution works).
    comb_driven: Vec<bool>,
}

impl std::fmt::Debug for NetlistComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetlistComponent")
            .field("name", &self.name)
            .field("entity", &self.netlist.entity().name())
            .field("cells", &self.netlist.cells().len())
            .finish()
    }
}

impl NetlistComponent {
    /// Wraps a validated netlist, wiring each entity port to a
    /// simulator signal.
    ///
    /// # Errors
    ///
    /// Returns the netlist's own validation failure, a
    /// [`SimError::Protocol`] for an unmapped or unsupported port, or a
    /// width mismatch between a port and its signal.
    pub fn new(
        name: impl Into<String>,
        netlist: Netlist,
        bus: &SignalBus,
        port_map: &[(&str, SignalId)],
    ) -> Result<Self, SimError> {
        let name = name.into();
        hdp_hdl::validate::check(&netlist)?;
        let topo = netlist.comb_topo_order()?;
        let mut port_wiring = Vec::new();
        for port in netlist.entity().ports() {
            if port.dir() == PortDir::InOut {
                return Err(SimError::Protocol {
                    component: name,
                    message: format!(
                        "inout port `{}` is not supported by the netlist interpreter",
                        port.name()
                    ),
                });
            }
            let Some(&(_, signal)) = port_map.iter().find(|(p, _)| *p == port.name()) else {
                return Err(SimError::Protocol {
                    component: name,
                    message: format!("port `{}` is not mapped to a signal", port.name()),
                });
            };
            if bus.width(signal)? != port.width() {
                return Err(SimError::SignalWidth {
                    signal: bus.name(signal)?.to_owned(),
                    expected: port.width(),
                    found: bus.width(signal)?,
                });
            }
            let net = netlist
                .port_net(port.name())
                .expect("validated netlist binds every port");
            port_wiring.push((port.name().to_owned(), port.dir(), net, signal));
        }
        for (p, _) in port_map {
            if netlist.entity().port(p).is_none() {
                return Err(SimError::Protocol {
                    component: name,
                    message: format!("mapped port `{p}` does not exist on the entity"),
                });
            }
        }
        let net_values: Vec<LogicVector> = netlist
            .nets()
            .iter()
            .map(|n| LogicVector::unknown(n.width()).expect("net widths validated"))
            .collect();
        let mut comb_driven = vec![false; netlist.nets().len()];
        let mut seq_state = Vec::with_capacity(netlist.cells().len());
        for cell in netlist.cells() {
            let state = match cell.prim() {
                Prim::Reg { width, .. } => {
                    SeqState::Reg(LogicVector::unknown(*width).expect("validated"))
                }
                Prim::BlockRam { addr_width, .. } => SeqState::Bram {
                    mem: vec![None; 1 << addr_width],
                    out: None,
                },
                Prim::FifoMacro { depth, .. } => SeqState::Fifo {
                    depth: *depth,
                    data: VecDeque::new(),
                },
                Prim::LifoMacro { depth, .. } => SeqState::Lifo {
                    depth: *depth,
                    data: Vec::new(),
                },
                _ => {
                    for &net in cell.outputs() {
                        comb_driven[net.index()] = true;
                    }
                    SeqState::None
                }
            };
            seq_state.push(state);
        }
        Ok(Self {
            name,
            netlist,
            port_wiring,
            topo,
            net_values,
            seq_state,
            comb_driven,
        })
    }

    /// The wrapped netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The settled value of an internal net, for white-box assertions.
    #[must_use]
    pub fn net_value(&self, name: &str) -> Option<LogicVector> {
        let id = self.netlist.find_net(name)?;
        Some(self.net_values[id.index()])
    }

    fn drive_seq_outputs(&mut self) {
        for (ci, cell) in self.netlist.cells().iter().enumerate() {
            match (&self.seq_state[ci], cell.prim()) {
                (SeqState::Reg(v), Prim::Reg { .. }) => {
                    self.net_values[cell.outputs()[0].index()] = *v;
                }
                (SeqState::Bram { out, .. }, Prim::BlockRam { data_width, .. }) => {
                    self.net_values[cell.outputs()[0].index()] = match out {
                        Some(v) => LogicVector::from_u64(*v, *data_width).expect("stored word"),
                        None => LogicVector::unknown(*data_width).expect("validated"),
                    };
                }
                (SeqState::Fifo { depth, data }, Prim::FifoMacro { width, .. }) => {
                    let outs = cell.outputs();
                    self.net_values[outs[0].index()] = match data.front() {
                        Some(&v) => LogicVector::from_u64(v, *width).expect("stored word"),
                        None => LogicVector::unknown(*width).expect("validated"),
                    };
                    self.net_values[outs[1].index()] =
                        LogicVector::from_u64(u64::from(data.is_empty()), 1).expect("1 bit");
                    self.net_values[outs[2].index()] =
                        LogicVector::from_u64(u64::from(data.len() >= *depth), 1).expect("1 bit");
                }
                (SeqState::Lifo { depth, data }, Prim::LifoMacro { width, .. }) => {
                    let outs = cell.outputs();
                    self.net_values[outs[0].index()] = match data.last() {
                        Some(&v) => LogicVector::from_u64(v, *width).expect("stored word"),
                        None => LogicVector::unknown(*width).expect("validated"),
                    };
                    self.net_values[outs[1].index()] =
                        LogicVector::from_u64(u64::from(data.is_empty()), 1).expect("1 bit");
                    self.net_values[outs[2].index()] =
                        LogicVector::from_u64(u64::from(data.len() >= *depth), 1).expect("1 bit");
                }
                _ => {}
            }
        }
    }

    fn strobe(&self, net: hdp_hdl::NetId) -> bool {
        self.net_values[net.index()].to_u64() == Some(1)
    }

    fn word(&self, net: hdp_hdl::NetId, what: &str) -> Result<u64, SimError> {
        self.net_values[net.index()]
            .to_u64()
            .ok_or_else(|| SimError::Protocol {
                component: self.name.clone(),
                message: format!("undefined {what} on net `{}`", self.netlist.net(net).name()),
            })
    }
}

impl Component for NetlistComponent {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        // 1. Latch input ports into their nets.
        for (_, dir, net, signal) in &self.port_wiring {
            if *dir == PortDir::In {
                self.net_values[net.index()] = bus.read(*signal)?;
            }
        }
        // 2. Present sequential outputs.
        self.drive_seq_outputs();
        // 3. Pre-release tri-state buses.
        for (ni, driven) in self.comb_driven.iter().enumerate() {
            if *driven {
                let width = self.net_values[ni].width();
                self.net_values[ni] = LogicVector::high_z(width).expect("validated");
            }
        }
        // 4. Evaluate combinational cells in topological order.
        for &ci in &self.topo {
            let cell = &self.netlist.cells()[ci.index()];
            let inputs: Vec<LogicVector> = cell
                .inputs()
                .iter()
                .map(|n| self.net_values[n.index()])
                .collect();
            let outputs = cell.prim().eval_comb(&inputs).map_err(SimError::from)?;
            for (&net, value) in cell.outputs().iter().zip(outputs) {
                let slot = &mut self.net_values[net.index()];
                *slot = slot.resolve(&value).map_err(SimError::from)?;
            }
        }
        // 5. Drive output ports.
        for (_, dir, net, signal) in &self.port_wiring {
            if *dir == PortDir::Out {
                bus.drive(*signal, self.net_values[net.index()])?;
            }
        }
        Ok(())
    }

    fn tick(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        // net_values hold the settled pre-edge values from the last eval.
        for ci in 0..self.netlist.cells().len() {
            let cell = &self.netlist.cells()[ci];
            let ins = cell.inputs().to_vec();
            match cell.prim().clone() {
                Prim::Reg { has_enable, .. } => {
                    let load = if has_enable {
                        self.strobe(ins[1])
                    } else {
                        true
                    };
                    if load {
                        let d = self.net_values[ins[0].index()];
                        if let SeqState::Reg(v) = &mut self.seq_state[ci] {
                            *v = d;
                        }
                    }
                }
                Prim::BlockRam { .. } => {
                    let we = self.strobe(ins[0]);
                    let (waddr, wdata) = if we {
                        (
                            Some(self.word(ins[1], "write address")?),
                            Some(self.word(ins[2], "write data")?),
                        )
                    } else {
                        (None, None)
                    };
                    let raddr = self.net_values[ins[3].index()].to_u64();
                    if let SeqState::Bram { mem, out } = &mut self.seq_state[ci] {
                        if let (Some(a), Some(d)) = (waddr, wdata) {
                            mem[a as usize] = Some(d);
                        }
                        *out = raddr.and_then(|a| mem[a as usize]);
                    }
                }
                Prim::FifoMacro { .. } => {
                    let push = self.strobe(ins[0]);
                    let pop = self.strobe(ins[1]);
                    let wdata = if push {
                        Some(self.word(ins[2], "fifo write data")?)
                    } else {
                        None
                    };
                    let name = self.name.clone();
                    let cell_name = cell.name().to_owned();
                    if let SeqState::Fifo { depth, data } = &mut self.seq_state[ci] {
                        if pop && data.pop_front().is_none() {
                            return Err(SimError::Protocol {
                                component: name,
                                message: format!("pop on empty fifo `{cell_name}`"),
                            });
                        }
                        if let Some(d) = wdata {
                            if data.len() >= *depth {
                                return Err(SimError::Protocol {
                                    component: name,
                                    message: format!("push on full fifo `{cell_name}`"),
                                });
                            }
                            data.push_back(d);
                        }
                    }
                }
                Prim::LifoMacro { .. } => {
                    let push = self.strobe(ins[0]);
                    let pop = self.strobe(ins[1]);
                    let wdata = if push {
                        Some(self.word(ins[2], "lifo write data")?)
                    } else {
                        None
                    };
                    let name = self.name.clone();
                    let cell_name = cell.name().to_owned();
                    if let SeqState::Lifo { depth, data } = &mut self.seq_state[ci] {
                        if pop && data.pop().is_none() {
                            return Err(SimError::Protocol {
                                component: name,
                                message: format!("pop on empty lifo `{cell_name}`"),
                            });
                        }
                        if let Some(d) = wdata {
                            if data.len() >= *depth {
                                return Err(SimError::Protocol {
                                    component: name,
                                    message: format!("push on full lifo `{cell_name}`"),
                                });
                            }
                            data.push(d);
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        for (ci, cell) in self.netlist.cells().iter().enumerate() {
            match (&mut self.seq_state[ci], cell.prim()) {
                (
                    SeqState::Reg(v),
                    Prim::Reg {
                        width, reset_value, ..
                    },
                ) => {
                    *v = LogicVector::from_u64(*reset_value, *width).expect("validated reset");
                }
                (SeqState::Bram { out, .. }, _) => *out = None,
                (SeqState::Fifo { data, .. }, _) => data.clear(),
                (SeqState::Lifo { data, .. }, _) => data.clear(),
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use hdp_hdl::prim::Prim;
    use hdp_hdl::Entity;

    /// Counter netlist: q' = q + 1 via Reg + Inc.
    fn counter_netlist() -> Netlist {
        let entity = Entity::builder("counter")
            .port("q", PortDir::Out, 8)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let q = nl.add_net("q", 8).unwrap();
        let d = nl.add_net("d", 8).unwrap();
        nl.add_cell(
            "u_reg",
            Prim::Reg {
                width: 8,
                has_enable: false,
                reset_value: 0,
            },
            vec![d],
            vec![q],
        )
        .unwrap();
        nl.add_cell("u_inc", Prim::Inc { width: 8 }, vec![q], vec![d])
            .unwrap();
        nl.bind_port("q", q).unwrap();
        nl
    }

    #[test]
    fn counter_netlist_counts() {
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 8).unwrap();
        let dut = NetlistComponent::new("dut", counter_netlist(), sim.bus(), &[("q", q)]).unwrap();
        sim.add_component(dut);
        sim.reset().unwrap();
        assert_eq!(sim.peek(q).unwrap().to_u64(), Some(0));
        sim.run(7).unwrap();
        assert_eq!(sim.peek(q).unwrap().to_u64(), Some(7));
    }

    #[test]
    fn unmapped_port_is_rejected() {
        let sim = Simulator::new();
        let err = NetlistComponent::new("dut", counter_netlist(), sim.bus(), &[]).unwrap_err();
        assert!(matches!(err, SimError::Protocol { .. }));
    }

    #[test]
    fn extra_mapped_port_is_rejected() {
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 8).unwrap();
        let x = sim.add_signal("x", 8).unwrap();
        let err = NetlistComponent::new(
            "dut",
            counter_netlist(),
            sim.bus(),
            &[("q", q), ("nope", x)],
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Protocol { .. }));
    }

    #[test]
    fn width_mismatched_signal_is_rejected() {
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 4).unwrap();
        let err =
            NetlistComponent::new("dut", counter_netlist(), sim.bus(), &[("q", q)]).unwrap_err();
        assert!(matches!(err, SimError::SignalWidth { .. }));
    }

    /// A fifo-macro wrapper netlist for protocol tests.
    fn fifo_netlist(depth: usize) -> Netlist {
        let entity = Entity::builder("f")
            .port("push", PortDir::In, 1)
            .unwrap()
            .port("pop", PortDir::In, 1)
            .unwrap()
            .port("wdata", PortDir::In, 8)
            .unwrap()
            .port("rdata", PortDir::Out, 8)
            .unwrap()
            .port("empty", PortDir::Out, 1)
            .unwrap()
            .port("full", PortDir::Out, 1)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let push = nl.add_net("push", 1).unwrap();
        let pop = nl.add_net("pop", 1).unwrap();
        let wdata = nl.add_net("wdata", 8).unwrap();
        let rdata = nl.add_net("rdata", 8).unwrap();
        let empty = nl.add_net("empty", 1).unwrap();
        let full = nl.add_net("full", 1).unwrap();
        nl.add_cell(
            "u_fifo",
            Prim::FifoMacro { depth, width: 8 },
            vec![push, pop, wdata],
            vec![rdata, empty, full],
        )
        .unwrap();
        for (p, n) in [
            ("push", push),
            ("pop", pop),
            ("wdata", wdata),
            ("rdata", rdata),
            ("empty", empty),
            ("full", full),
        ] {
            nl.bind_port(p, n).unwrap();
        }
        nl
    }

    #[test]
    fn fifo_macro_behaves_like_device() {
        let mut sim = Simulator::new();
        let push = sim.add_signal("push", 1).unwrap();
        let pop = sim.add_signal("pop", 1).unwrap();
        let wdata = sim.add_signal("wdata", 8).unwrap();
        let rdata = sim.add_signal("rdata", 8).unwrap();
        let empty = sim.add_signal("empty", 1).unwrap();
        let full = sim.add_signal("full", 1).unwrap();
        let dut = NetlistComponent::new(
            "dut",
            fifo_netlist(4),
            sim.bus(),
            &[
                ("push", push),
                ("pop", pop),
                ("wdata", wdata),
                ("rdata", rdata),
                ("empty", empty),
                ("full", full),
            ],
        )
        .unwrap();
        sim.add_component(dut);
        sim.poke(push, 0).unwrap();
        sim.poke(pop, 0).unwrap();
        sim.poke(wdata, 0).unwrap();
        sim.reset().unwrap();
        assert_eq!(sim.peek(empty).unwrap().to_u64(), Some(1));
        sim.poke(push, 1).unwrap();
        sim.poke(wdata, 0x33).unwrap();
        sim.step().unwrap();
        sim.poke(push, 0).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.peek(rdata).unwrap().to_u64(), Some(0x33));
        assert_eq!(sim.peek(empty).unwrap().to_u64(), Some(0));
        // Pop on empty after draining is a protocol error.
        sim.poke(pop, 1).unwrap();
        sim.step().unwrap();
        let err = sim.step().unwrap_err();
        assert!(matches!(err, SimError::Protocol { .. }));
    }

    #[test]
    fn lifo_macro_reverses_order() {
        let entity = Entity::builder("l")
            .port("push", PortDir::In, 1)
            .unwrap()
            .port("pop", PortDir::In, 1)
            .unwrap()
            .port("wdata", PortDir::In, 8)
            .unwrap()
            .port("rdata", PortDir::Out, 8)
            .unwrap()
            .port("empty", PortDir::Out, 1)
            .unwrap()
            .port("full", PortDir::Out, 1)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let push = nl.add_net("push", 1).unwrap();
        let pop = nl.add_net("pop", 1).unwrap();
        let wdata = nl.add_net("wdata", 8).unwrap();
        let rdata = nl.add_net("rdata", 8).unwrap();
        let empty = nl.add_net("empty", 1).unwrap();
        let full = nl.add_net("full", 1).unwrap();
        nl.add_cell(
            "u_lifo",
            Prim::LifoMacro { depth: 4, width: 8 },
            vec![push, pop, wdata],
            vec![rdata, empty, full],
        )
        .unwrap();
        for (p, n) in [
            ("push", push),
            ("pop", pop),
            ("wdata", wdata),
            ("rdata", rdata),
            ("empty", empty),
            ("full", full),
        ] {
            nl.bind_port(p, n).unwrap();
        }
        let mut sim = Simulator::new();
        let push_s = sim.add_signal("push", 1).unwrap();
        let pop_s = sim.add_signal("pop", 1).unwrap();
        let wdata_s = sim.add_signal("wdata", 8).unwrap();
        let rdata_s = sim.add_signal("rdata", 8).unwrap();
        let empty_s = sim.add_signal("empty", 1).unwrap();
        let full_s = sim.add_signal("full", 1).unwrap();
        let dut = NetlistComponent::new(
            "dut",
            nl,
            sim.bus(),
            &[
                ("push", push_s),
                ("pop", pop_s),
                ("wdata", wdata_s),
                ("rdata", rdata_s),
                ("empty", empty_s),
                ("full", full_s),
            ],
        )
        .unwrap();
        sim.add_component(dut);
        sim.poke(push_s, 0).unwrap();
        sim.poke(pop_s, 0).unwrap();
        sim.poke(wdata_s, 0).unwrap();
        sim.reset().unwrap();
        for v in [5u64, 6, 7] {
            sim.poke(push_s, 1).unwrap();
            sim.poke(wdata_s, v).unwrap();
            sim.step().unwrap();
        }
        sim.poke(push_s, 0).unwrap();
        let mut seen = Vec::new();
        for _ in 0..3 {
            sim.settle().unwrap();
            seen.push(sim.peek(rdata_s).unwrap().to_u64().unwrap());
            sim.poke(pop_s, 1).unwrap();
            sim.step().unwrap();
            sim.poke(pop_s, 0).unwrap();
        }
        assert_eq!(seen, vec![7, 6, 5]);
        sim.settle().unwrap();
        assert_eq!(sim.peek(empty_s).unwrap().to_u64(), Some(1));
    }

    #[test]
    fn net_value_white_box_probe() {
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 8).unwrap();
        let dut = NetlistComponent::new("dut", counter_netlist(), sim.bus(), &[("q", q)]).unwrap();
        let id = sim.add_component(dut);
        sim.reset().unwrap();
        sim.run(3).unwrap();
        let dut = sim.component::<NetlistComponent>(id).unwrap();
        assert_eq!(dut.net_value("q").unwrap().to_u64(), Some(3));
        assert_eq!(dut.net_value("d").unwrap().to_u64(), Some(4));
        assert!(dut.net_value("nonexistent").is_none());
    }
}
