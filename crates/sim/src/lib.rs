//! # hdp-sim — cycle-accurate simulation substrate
//!
//! The paper evaluates its generated components on the XESS XSB-300E
//! prototyping board (§3.4/§4): a Spartan-IIE FPGA surrounded by a
//! SAA7113 video decoder, a VGA DAC and external static RAM. This crate
//! replaces that board with deterministic device models and a
//! delta-cycle simulator so the same designs can be exercised
//! end-to-end on a workstation:
//!
//! * [`Simulator`] — two-phase clocked scheduler: combinational
//!   settling to a fixpoint (delta cycles), then a synchronous clock
//!   edge. Settling is event-driven by default — only components
//!   sensitive to a changed signal re-evaluate — with a full-sweep
//!   reference mode, a multi-threaded wave mode
//!   ([`SchedMode::Parallel`]), an ahead-of-time compiled mode
//!   ([`SchedMode::Compiled`]) and a lowered mode
//!   ([`SchedMode::Lowered`]) selectable via [`SchedMode`]. Parallel
//!   waves evaluate signal-disjoint islands of woken components on
//!   worker threads against an immutable pass snapshot and commit
//!   their drives in registration order; compiled mode freezes the
//!   design into a levelized rank schedule over a bit-packed signal
//!   arena and settles in one walk; lowered mode additionally
//!   translates every [`NetlistComponent`] on that walk into a flat
//!   word-level op stream executed straight against `u64` planes.
//!   Every mode produces bit-identical traces.
//! * [`LaneBatch`] — 64-way bit-parallel execution of one feed-forward
//!   netlist: [`LANES`] independent stimulus lanes are packed one per
//!   bit of a `u64` word per net-bit column, so a single settle/tick
//!   advances 64 runs at once (conformance fuzzing, service batches).
//! * [`SimBuilder`] — builder-style construction that freezes the
//!   scheduler's sensitivity tables once and applies power-on reset.
//! * [`Component`] — the trait every hardware model implements,
//!   including its [`Sensitivity`] declaration.
//! * [`devices`] — the board: FIFO and LIFO cores, synchronous block
//!   RAM, external SRAM with a req/ack handshake and configurable
//!   latency, a 3-line video buffer, a video-decoder stream source and
//!   a VGA sink.
//! * [`NetlistComponent`] — interprets an [`hdp_hdl::Netlist`] produced
//!   by the metaprogramming generator, so generated designs and
//!   hand-written models run side by side in one simulation.
//! * [`probe`] — stimulus and monitor helpers for testbenches.
//! * [`telemetry`] — opt-in counters (eval counts, delta-pass depth,
//!   wake shapes, per-signal toggle activity) and a Chrome trace-event
//!   exporter; see [`Simulator::stats`] and [`TelemetryLevel`].
//! * [`vcd`] — waveform dumping for debugging.
//!
//! ## Example
//!
//! ```
//! use hdp_sim::{SimBuilder, devices::FifoCore};
//!
//! # fn main() -> Result<(), hdp_sim::SimError> {
//! let mut b = SimBuilder::new();
//! let push = b.signal("push", 1)?;
//! let pop = b.signal("pop", 1)?;
//! let wdata = b.signal("wdata", 8)?;
//! let rdata = b.signal("rdata", 8)?;
//! let empty = b.signal("empty", 1)?;
//! let full = b.signal("full", 1)?;
//! b.component(FifoCore::new("u_fifo", 16, 8, push, pop, wdata, rdata, empty, full));
//! let mut sim = b.build()?; // sensitivity tables frozen, reset applied
//! sim.poke(push, 1)?;
//! sim.poke(wdata, 0x42)?;
//! sim.step()?; // push 0x42
//! sim.poke(push, 0)?;
//! sim.step()?;
//! assert_eq!(sim.peek(rdata)?.to_u64(), Some(0x42));
//! assert_eq!(sim.peek(empty)?.to_u64(), Some(0));
//! # Ok(())
//! # }
//! ```
//!
//! ## Choosing a scheduler
//!
//! All five [`SchedMode`]s run the same designs and produce
//! bit-identical settled values; they differ only in how the settle
//! phase finds the fixpoint. The default event-driven mode needs no
//! setup:
//!
//! ```
//! use hdp_sim::{SchedMode, SimBuilder, devices::FifoCore};
//!
//! # fn main() -> Result<(), hdp_sim::SimError> {
//! let mut b = SimBuilder::new(); // SchedMode::EventDriven
//! let push = b.signal("push", 1)?;
//! let pop = b.signal("pop", 1)?;
//! let wdata = b.signal("wdata", 8)?;
//! let rdata = b.signal("rdata", 8)?;
//! let empty = b.signal("empty", 1)?;
//! let full = b.signal("full", 1)?;
//! b.component(FifoCore::new("u_fifo", 16, 8, push, pop, wdata, rdata, empty, full));
//! let mut sim = b.build()?;
//! assert_eq!(sim.mode(), SchedMode::EventDriven);
//! sim.step()?;
//! # Ok(())
//! # }
//! ```
//!
//! The full sweep is the executable reference model, useful when
//! debugging a suspected scheduling problem:
//!
//! ```
//! use hdp_sim::{SchedMode, SimBuilder};
//!
//! # fn main() -> Result<(), hdp_sim::SimError> {
//! let mut b = SimBuilder::with_mode(SchedMode::FullSweep);
//! let clk_count = b.signal("unused", 4)?;
//! let mut sim = b.build()?;
//! sim.poke(clk_count, 3)?;
//! sim.step()?;
//! assert_eq!(sim.peek(clk_count)?.to_u64(), Some(3));
//! # Ok(())
//! # }
//! ```
//!
//! Parallel mode fans event-driven waves out over worker threads —
//! worthwhile for designs with many independent islands:
//!
//! ```
//! use hdp_sim::{SchedMode, SimBuilder, devices::Bram};
//!
//! # fn main() -> Result<(), hdp_sim::SimError> {
//! let mut b = SimBuilder::new();
//! let we = b.signal("we", 1)?;
//! let waddr = b.signal("waddr", 4)?;
//! let wdata = b.signal("wdata", 8)?;
//! let raddr = b.signal("raddr", 4)?;
//! let rdata = b.signal("rdata", 8)?;
//! b.component(Bram::new("u_bram", 4, 8, we, waddr, wdata, raddr, rdata));
//! b.poke(we, 0)?;
//! b.poke(waddr, 0)?;
//! b.poke(wdata, 0)?;
//! b.poke(raddr, 0)?;
//! b.threads(4); // SchedMode::Parallel { threads: 4 }
//! let mut sim = b.build()?;
//! assert_eq!(sim.mode(), SchedMode::Parallel { threads: 4 });
//! sim.run(3)?;
//! # Ok(())
//! # }
//! ```
//!
//! Compiled mode freezes the design after a validation settle and
//! replaces the delta loop with one walk of a levelized schedule —
//! the fastest mode for fixed netlists simulated over many cycles.
//! Designs it cannot levelize fall back to event-driven evaluation
//! transparently ([`Simulator::compile_fallback_reason`] says why):
//!
//! ```
//! use hdp_sim::{SchedMode, SimBuilder, devices::LifoCore};
//!
//! # fn main() -> Result<(), hdp_sim::SimError> {
//! let mut b = SimBuilder::new();
//! let push = b.signal("push", 1)?;
//! let pop = b.signal("pop", 1)?;
//! let wdata = b.signal("wdata", 8)?;
//! let rdata = b.signal("rdata", 8)?;
//! let empty = b.signal("empty", 1)?;
//! let full = b.signal("full", 1)?;
//! b.component(LifoCore::new("u_lifo", 8, 8, push, pop, wdata, rdata, empty, full));
//! b.poke(push, 0)?;
//! b.poke(pop, 0)?;
//! b.poke(wdata, 0)?;
//! b.compiled(); // SchedMode::Compiled
//! let mut sim = b.build()?;
//! assert_eq!(sim.mode(), SchedMode::Compiled);
//! assert!(sim.compile()?, "a LIFO levelizes cleanly");
//! sim.poke(push, 1)?;
//! sim.poke(wdata, 0x5A)?;
//! sim.step()?;
//! sim.poke(push, 0)?;
//! sim.settle()?;
//! assert_eq!(sim.peek(rdata)?.to_u64(), Some(0x5A));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
mod component;
pub mod devices;
mod error;
mod lower;
mod netlist_sim;
pub mod probe;
mod sched;
mod signal;
pub mod telemetry;
pub mod vcd;

pub use compiled::CompiledPlan;
pub use component::{ClockDomain, Component, Sensitivity, DEFAULT_CLOCK};
pub use error::SimError;
pub use lower::{LaneBatch, LANES};
pub use netlist_sim::NetlistComponent;
pub use sched::{ComponentId, SchedMode, SimBuilder, Simulator};
pub use signal::{BusAccess, BusReader, DriveLog, SignalBus, SignalId, SplitBus};
pub use telemetry::{
    ComponentStats, FallbackCause, SignalStats, SimStats, TelemetryLevel, TraceEvent,
};
