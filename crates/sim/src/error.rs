//! Error types for the simulator.

use hdp_hdl::HdlError;
use std::error::Error;
use std::fmt;

/// Errors produced while building or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A signal name or width was rejected.
    Hdl(HdlError),
    /// A referenced signal does not exist.
    UnknownSignal {
        /// The raw signal index.
        index: usize,
    },
    /// A component drove or read a signal with the wrong width.
    SignalWidth {
        /// Name of the signal.
        signal: String,
        /// Width expected by the signal.
        expected: usize,
        /// Width of the offending value.
        found: usize,
    },
    /// Combinational settling did not converge — a zero-delay feedback
    /// loop between components.
    NoConvergence {
        /// The delta-cycle limit that was exhausted.
        limit: usize,
        /// `signal (last driven by component)` descriptions of the
        /// signals still changing in the final delta pass — the wires
        /// of the feedback loop. Capped to the first few offenders.
        oscillating: Vec<String>,
    },
    /// A component detected a protocol violation (FIFO overflow, VGA
    /// underrun, SRAM handshake misuse, ...).
    Protocol {
        /// The reporting component.
        component: String,
        /// Description of the violation.
        message: String,
    },
    /// Duplicate signal name.
    DuplicateSignal {
        /// The duplicated name.
        name: String,
    },
    /// A [`crate::CompiledPlan`] was installed into a simulator whose
    /// design does not match the plan's source design.
    PlanMismatch {
        /// Human-readable description of the first mismatch.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Hdl(e) => write!(f, "{e}"),
            SimError::UnknownSignal { index } => write!(f, "unknown signal #{index}"),
            SimError::SignalWidth {
                signal,
                expected,
                found,
            } => write!(
                f,
                "signal `{signal}` has width {expected}, driven with width {found}"
            ),
            SimError::NoConvergence { limit, oscillating } => {
                write!(f, "combinational settling exceeded {limit} delta cycles")?;
                if !oscillating.is_empty() {
                    write!(f, "; oscillating: {}", oscillating.join(", "))?;
                }
                Ok(())
            }
            SimError::Protocol { component, message } => {
                write!(f, "protocol violation in `{component}`: {message}")
            }
            SimError::DuplicateSignal { name } => {
                write!(f, "duplicate signal name `{name}`")
            }
            SimError::PlanMismatch { reason } => {
                write!(f, "compiled plan does not fit this design: {reason}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Hdl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HdlError> for SimError {
    fn from(e: HdlError) -> Self {
        SimError::Hdl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn hdl_error_converts_and_sources() {
        let e = SimError::from(HdlError::InvalidWidth { width: 0 });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("width"));
    }

    #[test]
    fn no_convergence_names_oscillating_signals() {
        let e = SimError::NoConvergence {
            limit: 64,
            oscillating: vec![
                "x (last driven by `a`)".into(),
                "y (last driven by `b`)".into(),
            ],
        };
        let text = e.to_string();
        assert!(text.contains("64"));
        assert!(text.contains("x (last driven by `a`)"));
        assert!(text.contains("y (last driven by `b`)"));
    }

    #[test]
    fn protocol_error_names_component() {
        let e = SimError::Protocol {
            component: "u_fifo".into(),
            message: "push on full".into(),
        };
        assert!(e.to_string().contains("u_fifo"));
        assert!(e.to_string().contains("push on full"));
    }
}
