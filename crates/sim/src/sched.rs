//! The clocked delta-cycle scheduler.
//!
//! Two interchangeable scheduling strategies share one set of
//! semantics (see [`SchedMode`]):
//!
//! * **Event-driven** (default) — components declare the signals their
//!   `eval` reads ([`crate::Sensitivity`]); each delta pass evaluates
//!   only the components sensitive to a signal that changed in the
//!   previous pass. Clocked components are additionally woken once
//!   after every clock edge, everything after reset.
//! * **Full sweep** — every component is evaluated in every delta
//!   pass. Retained as the executable reference model: the event
//!   scheduler is required (and property-tested) to produce
//!   bit-identical signal traces.

use crate::signal::DRIVER_POKE;
use crate::{Component, Sensitivity, SignalBus, SignalId, SimError};
use hdp_hdl::LogicVector;
use std::any::Any;

/// Maximum settle iterations before declaring non-convergence.
const DELTA_LIMIT: usize = 64;

/// How many oscillating signals a non-convergence report names.
const OSCILLATION_REPORT_CAP: usize = 8;

/// Scheduling strategy of a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Evaluate only components sensitive to changed signals.
    #[default]
    EventDriven,
    /// Evaluate every component in every delta pass (reference mode).
    FullSweep,
}

/// Handle to a component instance owned by a [`Simulator`], returned
/// by [`Simulator::add_component`] and usable with
/// [`Simulator::component`] to inspect device state after a run (e.g.
/// the frames collected by a [`crate::devices::VideoOut`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentId(usize);

trait AnyComponent: Component {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Component + Any> AnyComponent for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A synchronous single-clock simulator.
///
/// Owns the [`SignalBus`] and the component instances and advances
/// them cycle by cycle. See the crate-level example, and
/// [`SimBuilder`] for construction that freezes the event scheduler's
/// sensitivity tables before the first step.
#[derive(Default)]
pub struct Simulator {
    bus: SignalBus,
    components: Vec<Box<dyn AnyComponent>>,
    /// Values poked by the testbench, re-driven at the start of every
    /// settle iteration so they behave like external pad drivers.
    pokes: Vec<(SignalId, LogicVector)>,
    cycle: u64,
    mode: SchedMode,
    /// Sensitivity tables, valid while `tables_ready`.
    tables_ready: bool,
    /// signal index -> components sensitive to it.
    watchers: Vec<Vec<usize>>,
    /// Components evaluated in every pass: declared `Always` plus any
    /// promoted for sharing a signal with another driver.
    always: Vec<usize>,
    /// Components with clock-edge behaviour.
    clocked: Vec<usize>,
    /// Sticky co-driver promotions (survive table rebuilds).
    promoted: Vec<bool>,
    /// Components to wake at the next settle.
    seeds: Vec<usize>,
    /// Signals poked since the last settle (their watchers get woken).
    poked_signals: Vec<SignalId>,
    /// Wake every component at the next settle (reset, mode switch,
    /// late additions).
    wake_all: bool,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("signals", &self.bus.len())
            .field("components", &self.components.len())
            .field("cycle", &self.cycle)
            .field("mode", &self.mode)
            .finish()
    }
}

impl Simulator {
    /// Creates an empty simulator with the default (event-driven)
    /// scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty simulator with an explicit scheduling mode.
    #[must_use]
    pub fn with_mode(mode: SchedMode) -> Self {
        Simulator {
            mode,
            ..Self::default()
        }
    }

    /// The active scheduling mode.
    #[must_use]
    pub fn mode(&self) -> SchedMode {
        self.mode
    }

    /// Switches scheduling mode. Safe at any point: the next settle
    /// re-evaluates everything once to re-synchronise.
    pub fn set_mode(&mut self, mode: SchedMode) {
        if self.mode != mode {
            self.mode = mode;
            self.wake_all = true;
        }
    }

    /// Declares a signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateSignal`] or a width error.
    pub fn add_signal(
        &mut self,
        name: impl Into<String>,
        width: usize,
    ) -> Result<SignalId, SimError> {
        let id = self.bus.add(name, width)?;
        if self.tables_ready {
            self.watchers.push(Vec::new());
        }
        Ok(id)
    }

    /// Adds a component instance, returning a handle for later
    /// inspection with [`Simulator::component`].
    ///
    /// Adding a component invalidates the frozen sensitivity tables;
    /// they are rebuilt lazily at the next settle. Prefer registering
    /// everything up front (see [`SimBuilder`]).
    pub fn add_component(&mut self, component: impl Component + 'static) -> ComponentId {
        self.components.push(Box::new(component));
        self.tables_ready = false;
        self.wake_all = true;
        ComponentId(self.components.len() - 1)
    }

    /// Downcasts a component back to its concrete type, e.g. to read
    /// the frames a [`crate::devices::VideoOut`] collected.
    ///
    /// Returns `None` if the handle is stale or `T` is not the type
    /// that was added.
    #[must_use]
    pub fn component<T: Component + 'static>(&self, id: ComponentId) -> Option<&T> {
        // Explicit deref: `.as_any()` on the Box would resolve the
        // blanket impl for `Box<dyn AnyComponent>` itself.
        (**self.components.get(id.0)?).as_any().downcast_ref::<T>()
    }

    /// Mutable variant of [`Simulator::component`], e.g. to preload a
    /// [`crate::devices::Sram`] between runs.
    ///
    /// Mutating device state behind the scheduler's back is treated
    /// like a reset for wake-up purposes: every component is
    /// re-evaluated at the next settle.
    #[must_use]
    pub fn component_mut<T: Component + 'static>(&mut self, id: ComponentId) -> Option<&mut T> {
        self.wake_all = true;
        (**self.components.get_mut(id.0)?)
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// The number of clock cycles executed since the last reset.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Immutable access to the signal bus (for monitors).
    #[must_use]
    pub fn bus(&self) -> &SignalBus {
        &self.bus
    }

    /// Reads a signal's current value.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] for a stale id.
    pub fn peek(&self, id: SignalId) -> Result<LogicVector, SimError> {
        self.bus.read(id)
    }

    /// Drives a signal from the testbench with a defined integer value.
    ///
    /// The value persists (it is re-driven each settle pass) until the
    /// next `poke` of the same signal or [`Simulator::unpoke`].
    ///
    /// # Errors
    ///
    /// Returns width or unknown-signal errors.
    pub fn poke(&mut self, id: SignalId, value: u64) -> Result<(), SimError> {
        let width = self.bus.width(id)?;
        let v = LogicVector::from_u64(value, width).map_err(SimError::from)?;
        self.poke_vector(id, v)
    }

    /// Drives a signal from the testbench with an arbitrary logic value.
    ///
    /// # Errors
    ///
    /// Returns width or unknown-signal errors.
    pub fn poke_vector(&mut self, id: SignalId, value: LogicVector) -> Result<(), SimError> {
        if self.bus.width(id)? != value.width() {
            return Err(SimError::SignalWidth {
                signal: self.bus.name(id)?.to_owned(),
                expected: self.bus.width(id)?,
                found: value.width(),
            });
        }
        match self.pokes.iter_mut().find(|(s, _)| *s == id) {
            Some((_, v)) => *v = value,
            None => self.pokes.push((id, value)),
        }
        self.poked_signals.push(id);
        Ok(())
    }

    /// Stops driving a previously poked signal.
    ///
    /// The signal holds its last value until something else drives it.
    pub fn unpoke(&mut self, id: SignalId) {
        self.pokes.retain(|(s, _)| *s != id);
    }

    /// Applies synchronous reset to every component and settles.
    ///
    /// # Errors
    ///
    /// Propagates component errors and non-convergence.
    pub fn reset(&mut self) -> Result<(), SimError> {
        self.cycle = 0;
        for (i, c) in self.components.iter_mut().enumerate() {
            self.bus.set_driver(i);
            c.reset(&mut self.bus)?;
        }
        self.bus.set_driver(DRIVER_POKE);
        self.wake_all = true;
        self.settle()
    }

    /// Settles combinational logic to a fixpoint without advancing the
    /// clock. Useful after poking inputs mid-cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoConvergence`] on a zero-delay loop, or the
    /// first component error.
    pub fn settle(&mut self) -> Result<(), SimError> {
        match self.mode {
            SchedMode::FullSweep => self.settle_sweep(),
            SchedMode::EventDriven => self.settle_event(),
        }
    }

    /// Reference settle: every component, every pass.
    fn settle_sweep(&mut self) -> Result<(), SimError> {
        // A full sweep subsumes any pending targeted wake-ups.
        self.seeds.clear();
        self.poked_signals.clear();
        self.wake_all = false;
        for _ in 0..DELTA_LIMIT {
            self.bus.begin_pass();
            self.bus.set_driver(DRIVER_POKE);
            for (id, value) in &self.pokes {
                self.bus.drive(*id, *value)?;
            }
            for (i, c) in self.components.iter_mut().enumerate() {
                self.bus.set_driver(i);
                c.eval(&mut self.bus)?;
            }
            if !self.bus.any_changed() {
                return Ok(());
            }
        }
        Err(self.no_convergence())
    }

    /// Event-driven settle: evaluate only woken components.
    fn settle_event(&mut self) -> Result<(), SimError> {
        self.ensure_tables()?;
        let mut wake: Vec<usize> = if self.wake_all {
            (0..self.components.len()).collect()
        } else {
            let mut w = std::mem::take(&mut self.seeds);
            for id in self.poked_signals.drain(..) {
                w.extend_from_slice(&self.watchers[id.index()]);
            }
            w
        };
        self.wake_all = false;
        self.seeds.clear();
        self.poked_signals.clear();
        for _ in 0..DELTA_LIMIT {
            self.bus.begin_pass();
            self.bus.set_driver(DRIVER_POKE);
            for (id, value) in &self.pokes {
                self.bus.drive(*id, *value)?;
            }
            // Components evaluate in registration order, exactly as the
            // full sweep would order them.
            wake.extend_from_slice(&self.always);
            wake.sort_unstable();
            wake.dedup();
            for &i in &wake {
                self.bus.set_driver(i);
                self.components[i].eval(&mut self.bus)?;
            }
            // A signal that just gained a second driver needs all its
            // drivers co-evaluated from now on, or per-pass resolution
            // would see partial contributions.
            let mut next: Vec<usize> = Vec::new();
            for slot in self.bus.take_new_shared() {
                for &d in self.bus.slot_drivers(slot) {
                    if d != DRIVER_POKE && !self.promoted[d] {
                        self.promoted[d] = true;
                        self.always.push(d);
                        next.push(d);
                    }
                }
            }
            for slot in self.bus.dirty_slots() {
                next.extend_from_slice(&self.watchers[slot]);
            }
            if next.is_empty() {
                return Ok(());
            }
            wake = next;
        }
        Err(self.no_convergence())
    }

    /// Builds the non-convergence report from the last pass's dirty set.
    fn no_convergence(&self) -> SimError {
        let oscillating = self
            .bus
            .dirty_slots()
            .iter()
            .take(OSCILLATION_REPORT_CAP)
            .map(|&slot| {
                let name = self
                    .bus
                    .name(SignalId(slot))
                    .unwrap_or("<unknown>")
                    .to_owned();
                let driver = match self.bus.last_changer(slot) {
                    DRIVER_POKE => "testbench".to_owned(),
                    i => self
                        .components
                        .get(i)
                        .map_or_else(|| format!("component #{i}"), |c| c.name().to_owned()),
                };
                format!("`{name}` (last driven by `{driver}`)")
            })
            .collect();
        SimError::NoConvergence {
            limit: DELTA_LIMIT,
            oscillating,
        }
    }

    /// Rebuilds the sensitivity tables if stale, validating every
    /// declared signal id.
    fn ensure_tables(&mut self) -> Result<(), SimError> {
        if self.tables_ready {
            return Ok(());
        }
        self.watchers = vec![Vec::new(); self.bus.len()];
        self.always.clear();
        self.clocked.clear();
        self.promoted.resize(self.components.len(), false);
        for (i, c) in self.components.iter().enumerate() {
            match c.sensitivity() {
                Sensitivity::Always => self.always.push(i),
                Sensitivity::Signals(signals) => {
                    if self.promoted[i] {
                        self.always.push(i);
                    }
                    for s in signals {
                        let watchers = self
                            .watchers
                            .get_mut(s.index())
                            .ok_or(SimError::UnknownSignal { index: s.index() })?;
                        if !watchers.contains(&i) {
                            watchers.push(i);
                        }
                    }
                }
            }
            if c.is_clocked() {
                self.clocked.push(i);
            }
        }
        self.tables_ready = true;
        Ok(())
    }

    /// Executes one full clock cycle: settle, then clock edge.
    ///
    /// # Errors
    ///
    /// Propagates settle and component errors.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.settle()?;
        // Track tick-phase drives on a clean pass so their watchers can
        // be woken (no in-repo tick drives signals, but the contract
        // allows it).
        self.bus.begin_pass();
        match self.mode {
            SchedMode::FullSweep => {
                for (i, c) in self.components.iter_mut().enumerate() {
                    self.bus.set_driver(i);
                    c.tick(&mut self.bus)?;
                }
            }
            SchedMode::EventDriven => {
                for idx in 0..self.clocked.len() {
                    let i = self.clocked[idx];
                    self.bus.set_driver(i);
                    self.components[i].tick(&mut self.bus)?;
                }
                // The edge changed registered state: wake every clocked
                // component, plus watchers of anything tick drove.
                self.seeds.extend_from_slice(&self.clocked);
                for slot in self.bus.dirty_slots() {
                    self.seeds.extend_from_slice(&self.watchers[slot]);
                }
            }
        }
        self.bus.set_driver(DRIVER_POKE);
        self.cycle += 1;
        // Settle again so post-edge outputs are observable immediately.
        self.settle()
    }

    /// Executes `n` clock cycles.
    ///
    /// # Errors
    ///
    /// Propagates the first error; earlier cycles remain applied.
    pub fn run(&mut self, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Runs until `predicate` returns `true` (checked after each cycle)
    /// or `max_cycles` elapse. Returns `true` if the predicate fired.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut predicate: impl FnMut(&SignalBus) -> bool,
    ) -> Result<bool, SimError> {
        for _ in 0..max_cycles {
            self.step()?;
            if predicate(&self.bus) {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// Builder-style construction of a [`Simulator`].
///
/// Registers signals, components and initial pokes up front, then
/// [`SimBuilder::build`] freezes the event scheduler's sensitivity
/// tables once, validates every declared sensitivity against the
/// signal set, and applies power-on reset — so the returned simulator
/// never rebuilds tables mid-run.
///
/// ```
/// use hdp_sim::{SimBuilder, devices::FifoCore};
///
/// # fn main() -> Result<(), hdp_sim::SimError> {
/// let mut b = SimBuilder::new();
/// let push = b.signal("push", 1)?;
/// let pop = b.signal("pop", 1)?;
/// let wdata = b.signal("wdata", 8)?;
/// let rdata = b.signal("rdata", 8)?;
/// let empty = b.signal("empty", 1)?;
/// let full = b.signal("full", 1)?;
/// b.component(FifoCore::new("u_fifo", 4, 8, push, pop, wdata, rdata, empty, full));
/// b.poke(push, 0)?;
/// b.poke(pop, 0)?;
/// b.poke(wdata, 0)?;
/// let mut sim = b.build()?; // tables frozen, reset applied
/// assert_eq!(sim.peek(empty)?.to_u64(), Some(1));
/// sim.step()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SimBuilder {
    sim: Simulator,
}

impl SimBuilder {
    /// Starts an empty builder (event-driven mode).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts an empty builder with an explicit scheduling mode.
    #[must_use]
    pub fn with_mode(mode: SchedMode) -> Self {
        SimBuilder {
            sim: Simulator::with_mode(mode),
        }
    }

    /// Declares a signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateSignal`] or a width error.
    pub fn signal(&mut self, name: impl Into<String>, width: usize) -> Result<SignalId, SimError> {
        self.sim.add_signal(name, width)
    }

    /// Registers a component.
    pub fn component(&mut self, component: impl Component + 'static) -> ComponentId {
        self.sim.add_component(component)
    }

    /// Sets an initial testbench drive, applied from the first settle.
    ///
    /// # Errors
    ///
    /// Returns width or unknown-signal errors.
    pub fn poke(&mut self, id: SignalId, value: u64) -> Result<(), SimError> {
        self.sim.poke(id, value)
    }

    /// Sets an initial testbench drive with an arbitrary logic value.
    ///
    /// # Errors
    ///
    /// Returns width or unknown-signal errors.
    pub fn poke_vector(&mut self, id: SignalId, value: LogicVector) -> Result<(), SimError> {
        self.sim.poke_vector(id, value)
    }

    /// Freezes the sensitivity tables, validates them, applies
    /// power-on reset and returns the ready simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] if a component declared
    /// sensitivity to a signal that does not exist, plus any reset or
    /// settle error.
    pub fn build(mut self) -> Result<Simulator, SimError> {
        self.sim.ensure_tables()?;
        self.sim.reset()?;
        Ok(self.sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    /// A register: q <= d on every edge.
    struct Reg {
        name: String,
        d: SignalId,
        q: SignalId,
        state: u64,
    }

    impl Component for Reg {
        fn name(&self) -> &str {
            &self.name
        }
        fn eval(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
            bus.drive_u64(self.q, self.state)
        }
        fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
            self.state = bus.read_u64(self.d, &self.name)?;
            Ok(())
        }
        fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
            self.state = 0;
            Ok(())
        }
        fn sensitivity(&self) -> Sensitivity {
            Sensitivity::Signals(vec![])
        }
    }

    /// Combinational +1.
    struct Inc {
        name: String,
        a: SignalId,
        y: SignalId,
        evals: Option<Rc<Cell<usize>>>,
    }

    impl Component for Inc {
        fn name(&self) -> &str {
            &self.name
        }
        fn eval(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
            if let Some(evals) = &self.evals {
                evals.set(evals.get() + 1);
            }
            let a = bus.read(self.a)?;
            if let Some(v) = a.to_u64() {
                bus.drive_u64(self.y, (v + 1) & 0xFF)?;
            }
            Ok(())
        }
        fn tick(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
            Ok(())
        }
        fn sensitivity(&self) -> Sensitivity {
            Sensitivity::Signals(vec![self.a])
        }
        fn is_clocked(&self) -> bool {
            false
        }
    }

    fn counter_sim(mode: SchedMode) -> (Simulator, SignalId) {
        let mut sim = Simulator::with_mode(mode);
        let q = sim.add_signal("q", 8).unwrap();
        let d = sim.add_signal("d", 8).unwrap();
        sim.add_component(Reg {
            name: "r".into(),
            d,
            q,
            state: 0,
        });
        sim.add_component(Inc {
            name: "i".into(),
            a: q,
            y: d,
            evals: None,
        });
        sim.reset().unwrap();
        (sim, q)
    }

    #[test]
    fn counter_from_reg_and_inc() {
        // q -> inc -> d -> reg -> q : a classic counter loop broken by
        // the register.
        for mode in [SchedMode::EventDriven, SchedMode::FullSweep] {
            let (mut sim, q) = counter_sim(mode);
            assert_eq!(sim.peek(q).unwrap().to_u64(), Some(0));
            sim.run(5).unwrap();
            assert_eq!(sim.peek(q).unwrap().to_u64(), Some(5));
            assert_eq!(sim.cycle(), 5);
        }
    }

    #[test]
    fn poke_persists_across_cycles() {
        for mode in [SchedMode::EventDriven, SchedMode::FullSweep] {
            let mut sim = Simulator::with_mode(mode);
            let d = sim.add_signal("d", 8).unwrap();
            let q = sim.add_signal("q", 8).unwrap();
            sim.add_component(Reg {
                name: "r".into(),
                d,
                q,
                state: 0,
            });
            sim.reset().unwrap();
            sim.poke(d, 42).unwrap();
            sim.run(3).unwrap();
            assert_eq!(sim.peek(q).unwrap().to_u64(), Some(42));
        }
    }

    #[test]
    fn zero_delay_loop_is_detected() {
        // Two combinational inverters in a loop: y = x+1, x = y+1 never
        // converges.
        for mode in [SchedMode::EventDriven, SchedMode::FullSweep] {
            let mut sim2 = Simulator::with_mode(mode);
            let x2 = sim2.add_signal("x", 8).unwrap();
            let y2 = sim2.add_signal("y", 8).unwrap();
            sim2.add_component(Inc {
                name: "a".into(),
                a: x2,
                y: y2,
                evals: None,
            });
            sim2.add_component(Inc {
                name: "b".into(),
                a: y2,
                y: x2,
                evals: None,
            });
            // Seed the loop with a defined value so it oscillates.
            sim2.poke(x2, 0).unwrap();
            sim2.settle().ok(); // poked variant may resolve to X, that's fine
            sim2.unpoke(x2);
            let err = sim2.settle();
            // Either the loop oscillates (NoConvergence) or collapses to X
            // (converged); both are acceptable outcomes for an illegal
            // netlist, but an infinite hang is not. The poked case must not
            // hang either.
            match err {
                Ok(()) | Err(SimError::NoConvergence { .. }) => {}
                Err(other) => panic!("unexpected error {other}"),
            }
        }
    }

    #[test]
    fn no_convergence_report_names_loop_signals() {
        // An unambiguous oscillator: y = x+1 and x = y+1 with defined
        // seed values and no poke interference after the first settle.
        let mut sim = Simulator::new();
        let x = sim.add_signal("x", 8).unwrap();
        let y = sim.add_signal("y", 8).unwrap();
        sim.add_component(Inc {
            name: "a".into(),
            a: x,
            y,
            evals: None,
        });
        sim.add_component(Inc {
            name: "b".into(),
            a: y,
            y: x,
            evals: None,
        });
        sim.poke(x, 0).unwrap();
        sim.settle().ok();
        sim.unpoke(x);
        if let Err(SimError::NoConvergence { oscillating, .. }) = sim.settle() {
            assert!(!oscillating.is_empty(), "report must name signals");
            let text = oscillating.join(", ");
            assert!(
                text.contains("`x`") || text.contains("`y`"),
                "report names the loop wires: {text}"
            );
            assert!(
                text.contains("`a`") || text.contains("`b`"),
                "report names the drivers: {text}"
            );
        }
    }

    #[test]
    fn run_until_fires_predicate() {
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 8).unwrap();
        let d = sim.add_signal("d", 8).unwrap();
        sim.add_component(Reg {
            name: "r".into(),
            d,
            q,
            state: 0,
        });
        sim.add_component(Inc {
            name: "i".into(),
            a: q,
            y: d,
            evals: None,
        });
        sim.reset().unwrap();
        let hit = sim
            .run_until(100, |bus| bus.read(q).unwrap().to_u64() == Some(10))
            .unwrap();
        assert!(hit);
        assert_eq!(sim.cycle(), 10);
    }

    #[test]
    fn run_until_gives_up() {
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 8).unwrap();
        sim.poke(q, 0).unwrap();
        let hit = sim
            .run_until(5, |bus| bus.read(q).unwrap().to_u64() == Some(1))
            .unwrap();
        assert!(!hit);
    }

    #[test]
    fn event_mode_skips_unaffected_components() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 8).unwrap();
        let y = sim.add_signal("y", 8).unwrap();
        let evals = Rc::new(Cell::new(0));
        sim.add_component(Inc {
            name: "i".into(),
            a,
            y,
            evals: Some(Rc::clone(&evals)),
        });
        sim.poke(a, 1).unwrap();
        sim.reset().unwrap();
        let after_reset = evals.get();
        assert!(after_reset >= 1, "reset evaluates everything once");
        // Nothing the component is sensitive to changes across idle
        // cycles, and it is not clocked: zero further evaluations.
        sim.run(10).unwrap();
        assert_eq!(evals.get(), after_reset, "idle cycles must not re-eval");
        // A poke on the watched signal wakes it again.
        sim.poke(a, 7).unwrap();
        sim.settle().unwrap();
        assert!(evals.get() > after_reset);
        assert_eq!(sim.peek(y).unwrap().to_u64(), Some(8));
    }

    #[test]
    fn shared_signal_promotes_both_drivers() {
        /// Drives `bus_sig` with `value` while `sel == me`, else `Z`.
        struct TriState {
            name: String,
            sel: SignalId,
            bus_sig: SignalId,
            me: u64,
            value: u64,
        }
        impl Component for TriState {
            fn name(&self) -> &str {
                &self.name
            }
            fn eval(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
                if bus.read(self.sel)?.to_u64() == Some(self.me) {
                    bus.drive_u64(self.bus_sig, self.value)
                } else {
                    bus.drive(
                        self.bus_sig,
                        LogicVector::high_z(8).map_err(SimError::from)?,
                    )
                }
            }
            fn tick(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
                Ok(())
            }
            fn sensitivity(&self) -> Sensitivity {
                Sensitivity::Signals(vec![self.sel])
            }
            fn is_clocked(&self) -> bool {
                false
            }
        }
        for mode in [SchedMode::EventDriven, SchedMode::FullSweep] {
            let mut sim = Simulator::with_mode(mode);
            let sel = sim.add_signal("sel", 1).unwrap();
            let shared = sim.add_signal("shared", 8).unwrap();
            sim.add_component(TriState {
                name: "t0".into(),
                sel,
                bus_sig: shared,
                me: 0,
                value: 0x11,
            });
            sim.add_component(TriState {
                name: "t1".into(),
                sel,
                bus_sig: shared,
                me: 1,
                value: 0x22,
            });
            sim.poke(sel, 0).unwrap();
            sim.reset().unwrap();
            assert_eq!(sim.peek(shared).unwrap().to_u64(), Some(0x11));
            sim.poke(sel, 1).unwrap();
            sim.settle().unwrap();
            assert_eq!(sim.peek(shared).unwrap().to_u64(), Some(0x22));
            sim.poke(sel, 0).unwrap();
            sim.settle().unwrap();
            assert_eq!(sim.peek(shared).unwrap().to_u64(), Some(0x11));
        }
    }

    #[test]
    fn builder_freezes_tables_and_resets() {
        let mut b = SimBuilder::new();
        let q = b.signal("q", 8).unwrap();
        let d = b.signal("d", 8).unwrap();
        b.component(Reg {
            name: "r".into(),
            d,
            q,
            state: 3,
        });
        b.component(Inc {
            name: "i".into(),
            a: q,
            y: d,
            evals: None,
        });
        let mut sim = b.build().unwrap();
        // Reset applied by build: register state cleared and settled.
        assert_eq!(sim.peek(q).unwrap().to_u64(), Some(0));
        sim.run(4).unwrap();
        assert_eq!(sim.peek(q).unwrap().to_u64(), Some(4));
    }

    #[test]
    fn builder_rejects_unknown_sensitivity_signal() {
        struct Liar {
            bogus: SignalId,
        }
        impl Component for Liar {
            fn name(&self) -> &str {
                "liar"
            }
            fn eval(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
                Ok(())
            }
            fn tick(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
                Ok(())
            }
            fn sensitivity(&self) -> Sensitivity {
                Sensitivity::Signals(vec![self.bogus])
            }
        }
        let mut b = SimBuilder::new();
        b.component(Liar {
            bogus: SignalId(99),
        });
        assert!(matches!(
            b.build(),
            Err(SimError::UnknownSignal { index: 99 })
        ));
    }

    #[test]
    fn mode_switch_mid_run_stays_consistent() {
        let (mut sim, q) = counter_sim(SchedMode::EventDriven);
        sim.run(3).unwrap();
        sim.set_mode(SchedMode::FullSweep);
        sim.run(3).unwrap();
        sim.set_mode(SchedMode::EventDriven);
        sim.run(3).unwrap();
        assert_eq!(sim.peek(q).unwrap().to_u64(), Some(9));
    }

    #[test]
    fn debug_format_mentions_counts() {
        let sim = Simulator::new();
        assert!(format!("{sim:?}").contains("components"));
    }
}
