//! The clocked delta-cycle scheduler.

use crate::{Component, SignalBus, SignalId, SimError};
use hdp_hdl::LogicVector;
use std::any::Any;

/// Maximum settle iterations before declaring non-convergence.
const DELTA_LIMIT: usize = 64;

/// Handle to a component instance owned by a [`Simulator`], returned
/// by [`Simulator::add_component`] and usable with
/// [`Simulator::component`] to inspect device state after a run (e.g.
/// the frames collected by a [`crate::devices::VideoOut`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentId(usize);

trait AnyComponent: Component {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Component + Any> AnyComponent for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A synchronous single-clock simulator.
///
/// Owns the [`SignalBus`] and the component instances and advances
/// them cycle by cycle. See the crate-level example.
#[derive(Default)]
pub struct Simulator {
    bus: SignalBus,
    components: Vec<Box<dyn AnyComponent>>,
    /// Values poked by the testbench, re-driven at the start of every
    /// settle iteration so they behave like external pad drivers.
    pokes: Vec<(SignalId, LogicVector)>,
    cycle: u64,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("signals", &self.bus.len())
            .field("components", &self.components.len())
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl Simulator {
    /// Creates an empty simulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateSignal`] or a width error.
    pub fn add_signal(
        &mut self,
        name: impl Into<String>,
        width: usize,
    ) -> Result<SignalId, SimError> {
        self.bus.add(name, width)
    }

    /// Adds a component instance, returning a handle for later
    /// inspection with [`Simulator::component`].
    pub fn add_component(&mut self, component: impl Component + 'static) -> ComponentId {
        self.components.push(Box::new(component));
        ComponentId(self.components.len() - 1)
    }

    /// Downcasts a component back to its concrete type, e.g. to read
    /// the frames a [`crate::devices::VideoOut`] collected.
    ///
    /// Returns `None` if the handle is stale or `T` is not the type
    /// that was added.
    #[must_use]
    pub fn component<T: Component + 'static>(&self, id: ComponentId) -> Option<&T> {
        // Explicit deref: `.as_any()` on the Box would resolve the
        // blanket impl for `Box<dyn AnyComponent>` itself.
        (**self.components.get(id.0)?).as_any().downcast_ref::<T>()
    }

    /// Mutable variant of [`Simulator::component`], e.g. to preload a
    /// [`crate::devices::Sram`] between runs.
    #[must_use]
    pub fn component_mut<T: Component + 'static>(&mut self, id: ComponentId) -> Option<&mut T> {
        (**self.components.get_mut(id.0)?)
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// The number of clock cycles executed since the last reset.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Immutable access to the signal bus (for monitors).
    #[must_use]
    pub fn bus(&self) -> &SignalBus {
        &self.bus
    }

    /// Reads a signal's current value.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] for a stale id.
    pub fn peek(&self, id: SignalId) -> Result<LogicVector, SimError> {
        self.bus.read(id)
    }

    /// Drives a signal from the testbench with a defined integer value.
    ///
    /// The value persists (it is re-driven each settle pass) until the
    /// next `poke` of the same signal or [`Simulator::unpoke`].
    ///
    /// # Errors
    ///
    /// Returns width or unknown-signal errors.
    pub fn poke(&mut self, id: SignalId, value: u64) -> Result<(), SimError> {
        let width = self.bus.width(id)?;
        let v = LogicVector::from_u64(value, width).map_err(SimError::from)?;
        self.poke_vector(id, v)
    }

    /// Drives a signal from the testbench with an arbitrary logic value.
    ///
    /// # Errors
    ///
    /// Returns width or unknown-signal errors.
    pub fn poke_vector(&mut self, id: SignalId, value: LogicVector) -> Result<(), SimError> {
        if self.bus.width(id)? != value.width() {
            return Err(SimError::SignalWidth {
                signal: self.bus.name(id)?.to_owned(),
                expected: self.bus.width(id)?,
                found: value.width(),
            });
        }
        match self.pokes.iter_mut().find(|(s, _)| *s == id) {
            Some((_, v)) => *v = value,
            None => self.pokes.push((id, value)),
        }
        Ok(())
    }

    /// Stops driving a previously poked signal.
    pub fn unpoke(&mut self, id: SignalId) {
        self.pokes.retain(|(s, _)| *s != id);
    }

    /// Applies synchronous reset to every component and settles.
    ///
    /// # Errors
    ///
    /// Propagates component errors and non-convergence.
    pub fn reset(&mut self) -> Result<(), SimError> {
        self.cycle = 0;
        for c in &mut self.components {
            c.reset(&mut self.bus)?;
        }
        self.settle()
    }

    /// Settles combinational logic to a fixpoint without advancing the
    /// clock. Useful after poking inputs mid-cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoConvergence`] on a zero-delay loop, or the
    /// first component error.
    pub fn settle(&mut self) -> Result<(), SimError> {
        for _ in 0..DELTA_LIMIT {
            self.bus.begin_pass();
            for (id, value) in &self.pokes {
                self.bus.drive(*id, *value)?;
            }
            for c in &mut self.components {
                c.eval(&mut self.bus)?;
            }
            if !self.bus.any_changed() {
                return Ok(());
            }
        }
        Err(SimError::NoConvergence { limit: DELTA_LIMIT })
    }

    /// Executes one full clock cycle: settle, then clock edge.
    ///
    /// # Errors
    ///
    /// Propagates settle and component errors.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.settle()?;
        for c in &mut self.components {
            c.tick(&mut self.bus)?;
        }
        self.cycle += 1;
        // Settle again so post-edge outputs are observable immediately.
        self.settle()
    }

    /// Executes `n` clock cycles.
    ///
    /// # Errors
    ///
    /// Propagates the first error; earlier cycles remain applied.
    pub fn run(&mut self, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Runs until `predicate` returns `true` (checked after each cycle)
    /// or `max_cycles` elapse. Returns `true` if the predicate fired.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut predicate: impl FnMut(&SignalBus) -> bool,
    ) -> Result<bool, SimError> {
        for _ in 0..max_cycles {
            self.step()?;
            if predicate(&self.bus) {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A register: q <= d on every edge.
    struct Reg {
        name: String,
        d: SignalId,
        q: SignalId,
        state: u64,
    }

    impl Component for Reg {
        fn name(&self) -> &str {
            &self.name
        }
        fn eval(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
            bus.drive_u64(self.q, self.state)
        }
        fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
            self.state = bus.read_u64(self.d, &self.name)?;
            Ok(())
        }
        fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
            self.state = 0;
            Ok(())
        }
    }

    /// Combinational +1.
    struct Inc {
        name: String,
        a: SignalId,
        y: SignalId,
    }

    impl Component for Inc {
        fn name(&self) -> &str {
            &self.name
        }
        fn eval(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
            let a = bus.read(self.a)?;
            if let Some(v) = a.to_u64() {
                bus.drive_u64(self.y, (v + 1) & 0xFF)?;
            }
            Ok(())
        }
        fn tick(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
            Ok(())
        }
    }

    #[test]
    fn counter_from_reg_and_inc() {
        // q -> inc -> d -> reg -> q : a classic counter loop broken by
        // the register.
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 8).unwrap();
        let d = sim.add_signal("d", 8).unwrap();
        sim.add_component(Reg {
            name: "r".into(),
            d,
            q,
            state: 0,
        });
        sim.add_component(Inc {
            name: "i".into(),
            a: q,
            y: d,
        });
        sim.reset().unwrap();
        assert_eq!(sim.peek(q).unwrap().to_u64(), Some(0));
        sim.run(5).unwrap();
        assert_eq!(sim.peek(q).unwrap().to_u64(), Some(5));
        assert_eq!(sim.cycle(), 5);
    }

    #[test]
    fn poke_persists_across_cycles() {
        let mut sim = Simulator::new();
        let d = sim.add_signal("d", 8).unwrap();
        let q = sim.add_signal("q", 8).unwrap();
        sim.add_component(Reg {
            name: "r".into(),
            d,
            q,
            state: 0,
        });
        sim.reset().unwrap();
        sim.poke(d, 42).unwrap();
        sim.run(3).unwrap();
        assert_eq!(sim.peek(q).unwrap().to_u64(), Some(42));
    }

    #[test]
    fn zero_delay_loop_is_detected() {
        // Two combinational inverters in a loop: y = x+1, x = y+1 never
        // converges.
        let mut sim = Simulator::new();
        let x = sim.add_signal("x", 8).unwrap();
        let y = sim.add_signal("y", 8).unwrap();
        sim.add_component(Inc {
            name: "a".into(),
            a: x,
            y,
        });
        sim.add_component(Inc {
            name: "b".into(),
            a: y,
            y: x,
        });
        sim.poke(x, 0).unwrap();
        // x is poked (external driver conflicts resolve to X quickly) —
        // use an un-poked loop instead.
        sim.unpoke(x);
        let mut sim2 = Simulator::new();
        let x2 = sim2.add_signal("x", 8).unwrap();
        let y2 = sim2.add_signal("y", 8).unwrap();
        sim2.add_component(Inc {
            name: "a".into(),
            a: x2,
            y: y2,
        });
        sim2.add_component(Inc {
            name: "b".into(),
            a: y2,
            y: x2,
        });
        // Seed the loop with a defined value so it oscillates.
        sim2.poke(x2, 0).unwrap();
        sim2.settle().ok(); // poked variant may resolve to X, that's fine
        sim2.unpoke(x2);
        let err = sim2.settle();
        // Either the loop oscillates (NoConvergence) or collapses to X
        // (converged); both are acceptable outcomes for an illegal
        // netlist, but an infinite hang is not. The poked case must not
        // hang either.
        match err {
            Ok(()) | Err(SimError::NoConvergence { .. }) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn run_until_fires_predicate() {
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 8).unwrap();
        let d = sim.add_signal("d", 8).unwrap();
        sim.add_component(Reg {
            name: "r".into(),
            d,
            q,
            state: 0,
        });
        sim.add_component(Inc {
            name: "i".into(),
            a: q,
            y: d,
        });
        sim.reset().unwrap();
        let hit = sim
            .run_until(100, |bus| bus.read(q).unwrap().to_u64() == Some(10))
            .unwrap();
        assert!(hit);
        assert_eq!(sim.cycle(), 10);
    }

    #[test]
    fn run_until_gives_up() {
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 8).unwrap();
        sim.poke(q, 0).unwrap();
        let hit = sim
            .run_until(5, |bus| bus.read(q).unwrap().to_u64() == Some(1))
            .unwrap();
        assert!(!hit);
    }

    #[test]
    fn debug_format_mentions_counts() {
        let sim = Simulator::new();
        assert!(format!("{sim:?}").contains("components"));
    }
}
