//! The clocked delta-cycle scheduler.
//!
//! Five interchangeable scheduling strategies share one set of
//! semantics (see [`SchedMode`]):
//!
//! * **Event-driven** (default) — components declare the signals their
//!   `eval` reads ([`crate::Sensitivity`]); each delta pass evaluates
//!   only the components sensitive to a signal that changed in the
//!   previous pass. Clocked components are additionally woken once
//!   after every clock edge, everything after reset.
//! * **Full sweep** — every component is evaluated in every delta
//!   pass. Retained as the executable reference model: the other
//!   schedulers are required (and property-tested) to produce
//!   bit-identical signal traces.
//! * **Parallel** — the event scheduler's wake waves, distributed over
//!   worker threads. The woken components are partitioned into
//!   *islands* (connected components of the signal-connectivity
//!   graph: a component belongs to the same island as every signal it
//!   reads or drives); islands are signal-disjoint, so each worker
//!   evaluates its islands against an immutable pass snapshot
//!   ([`crate::BusReader`]) plus a worker-local overlay of its own
//!   earlier writes, logging drives to a [`crate::DriveLog`]. The
//!   scheduler then commits all logs in component registration order,
//!   which reproduces the sequential pass bit for bit: multi-driver
//!   resolution order, dirty tracking, driver attribution in
//!   [`SimError::NoConvergence`] reports and VCD traces are all
//!   identical at every thread count.
//! * **Compiled** — after a validation settle, the design is frozen
//!   ahead of time: components are levelized into static ranks by
//!   combinational depth and signals are flattened into a bit-packed
//!   `u64`-word arena ([`crate::SchedMode::Compiled`]). Every
//!   subsequent settle is a single in-order walk of the rank schedule
//!   instead of a delta-cycle loop. Designs the levelizer cannot
//!   order (combinational cycles, [`Sensitivity::Always`]) fall back
//!   transparently — and permanently — to the event-driven scheduler;
//!   an invalidated schedule (newly discovered driver, added
//!   components) falls back for one settle and rebuilds.
//! * **Lowered** — the compiled rank walk, with every
//!   [`crate::NetlistComponent`] additionally translated into a flat
//!   word-level op stream ([`crate::SchedMode::Lowered`]) executed
//!   straight against `u64` value/unknown/high-Z planes: no virtual
//!   `eval` dispatch, no `BusAccess` reads per net, no `LogicVector`
//!   materialisation between cells. Components that are not netlist
//!   interpreters (or whose shape cannot lower) keep their virtual
//!   `eval` on the same walk, and every fallback rule of compiled
//!   mode applies unchanged.

use crate::compiled::{CompiledBus, CompiledPlan, CompiledSchedule, SignalArena};
use crate::lower::{exec_settle, LoweredProgram, LoweredScratch};
use crate::netlist_sim::NetlistComponent;
use crate::signal::{BusAccess as _, BusReader, DRIVER_POKE};
use crate::telemetry::{
    ComponentStats, FallbackCause, SignalStats, SimStats, Telemetry, TelemetryLevel, TraceEvent,
};
use crate::{
    ClockDomain, Component, DriveLog, Sensitivity, SignalBus, SignalId, SimError, DEFAULT_CLOCK,
};
use hdp_hdl::LogicVector;
use std::any::Any;
use std::sync::Arc;
use std::time::Instant;

/// Maximum settle iterations before declaring non-convergence.
const DELTA_LIMIT: usize = 64;

/// How many oscillating signals a non-convergence report names.
const OSCILLATION_REPORT_CAP: usize = 8;

/// Minimum woken components in a pass before [`SchedMode::Parallel`]
/// fans out to worker threads. Spawning scoped workers costs tens of
/// microseconds; waves smaller than this evaluate inline faster.
const PARALLEL_WAKE_MIN: usize = 8;

/// Incremental FNV-1a (64-bit) hasher for design signatures. Inputs
/// are length-prefixed, so distinct field sequences cannot collide by
/// concatenation.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Scheduling strategy of a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Evaluate only components sensitive to changed signals.
    #[default]
    EventDriven,
    /// Evaluate every component in every delta pass (reference mode).
    FullSweep,
    /// Event-driven waves evaluated on `threads` worker threads, with
    /// drives committed in registration order (bit-identical to
    /// [`SchedMode::EventDriven`]). `threads <= 1` degenerates to the
    /// sequential event scheduler, as do designs whose woken
    /// components all share one connectivity island in a given pass.
    ///
    /// Requires every component to declare a concrete
    /// [`Sensitivity::Signals`] list; if any component reports
    /// [`Sensitivity::Always`] (reads undeclared), the simulator
    /// conservatively falls back to the sequential event scheduler.
    Parallel {
        /// Number of worker threads for wave evaluation.
        threads: usize,
    },
    /// Ahead-of-time compiled evaluation: after a validation settle
    /// the design is frozen into a levelized schedule (components
    /// sorted into static ranks by longest combinational path) over a
    /// bit-packed signal arena, and each settle becomes one in-order
    /// walk — no delta-cycle loop, no per-pass wake bookkeeping.
    /// Settled values, VCD traces, telemetry toggle totals and error
    /// reports are bit-identical to [`SchedMode::EventDriven`].
    ///
    /// Falls back transparently to the event-driven scheduler:
    /// *permanently* for designs that cannot be levelized — a
    /// combinational cycle, or any component declaring
    /// [`Sensitivity::Always`] (see
    /// [`Simulator::compile_fallback_reason`]) — and for *one settle*
    /// whenever the frozen schedule is invalidated (a drive by a
    /// component the schedule had not seen drive that signal, added
    /// components or signals, or direct device mutation through
    /// [`Simulator::component_mut`]), after which it rebuilds.
    Compiled,
    /// [`SchedMode::Compiled`]'s rank walk with netlist interpreters
    /// lowered to flat word-level op streams: each
    /// [`crate::NetlistComponent`] is translated once into a
    /// `Vec<LoweredOp>` over per-net `u64` value/unknown/high-Z
    /// planes, and its slot in the walk executes that straight-line
    /// stream — no per-cell virtual dispatch, no `BusAccess` facade
    /// between cells, no `LogicVector` allocation on the hot path.
    /// Clock edges, memory-port protocol checks and their error
    /// messages stay with the interpreter's `tick`, which samples the
    /// settled planes.
    ///
    /// Components that are not netlist interpreters — or whose shape
    /// cannot lower (e.g. inout ports) — keep their virtual `eval` on
    /// the same walk, and all of [`SchedMode::Compiled`]'s
    /// transient/permanent fallback rules apply unchanged. Settled
    /// values, traces and telemetry toggle totals remain bit-identical
    /// to [`SchedMode::EventDriven`].
    Lowered,
}

impl SchedMode {
    /// [`SchedMode::Parallel`] with the thread count taken from the
    /// `HDP_SIM_THREADS` environment variable, falling back to the
    /// machine's available parallelism (capped at 8).
    #[must_use]
    pub fn parallel() -> Self {
        SchedMode::Parallel {
            threads: default_threads(),
        }
    }
}

/// Thread count from `HDP_SIM_THREADS`, else available parallelism
/// capped at 8 (waves rarely have more independent islands than that).
fn default_threads() -> usize {
    std::env::var("HDP_SIM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(2, |n| n.get().min(8)))
        .min(64)
}

/// Handle to a component instance owned by a [`Simulator`], returned
/// by [`Simulator::add_component`] and usable with
/// [`Simulator::component`] to inspect device state after a run (e.g.
/// the frames collected by a [`crate::devices::VideoOut`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentId(usize);

/// `Send` is a supertrait so component instances can be evaluated on
/// [`SchedMode::Parallel`] worker threads.
trait AnyComponent: Component + Send {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Component + Send + Any> AnyComponent for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Reusable per-worker state for parallel wave evaluation.
#[derive(Default)]
struct WorkerScratch {
    /// Pass serial for which each overlay slot is live.
    overlay_wave: Vec<u64>,
    /// Worker-local committed value per slot (valid when the wave tag
    /// matches the current pass).
    overlay_val: Vec<LogicVector>,
    /// `(component, signal, value)` drives awaiting ordered commit.
    commits: Vec<(usize, SignalId, LogicVector)>,
    /// Scratch drive log handed to each component evaluation.
    log: DriveLog,
    /// First evaluation error in this worker's registration-ordered
    /// bucket, if any.
    error: Option<(usize, SimError)>,
    /// Telemetry: `(component, eval duration ns)` per evaluation this
    /// wave, merged into the scheduler's counters at commit time so
    /// workers never share counter memory (no atomics).
    evals: Vec<(usize, u64)>,
    /// Telemetry: spans recorded this wave ([`TelemetryLevel::Full`]).
    spans: Vec<TraceEvent>,
}

/// The telemetry context a parallel worker needs: the level and the
/// span epoch, both `Copy`, captured before the scoped spawn.
#[derive(Clone, Copy)]
struct WorkerTelemetry {
    level: TelemetryLevel,
    epoch: Option<Instant>,
}

impl WorkerTelemetry {
    fn ns_since_epoch(&self, at: Instant) -> u64 {
        self.epoch.map_or(0, |e| {
            u64::try_from(at.saturating_duration_since(e).as_nanos()).unwrap_or(u64::MAX)
        })
    }
}

/// Evaluates one worker's registration-ordered bucket of woken
/// components against the pass snapshot, accumulating drives in the
/// worker's commit buffer. Stops at the first error, mirroring the
/// sequential scheduler (drives logged before the error remain, the
/// erroring component's later drives never happen).
fn worker_eval(
    bucket: Vec<(usize, &mut Box<dyn AnyComponent>)>,
    scratch: &mut WorkerScratch,
    bus: &SignalBus,
    wave: u64,
    telem: WorkerTelemetry,
    worker: u32,
) {
    scratch.overlay_wave.resize(bus.len(), 0);
    scratch.overlay_val.resize(
        bus.len(),
        LogicVector::unknown(1).expect("1-bit placeholder"),
    );
    let WorkerScratch {
        overlay_wave,
        overlay_val,
        commits,
        log,
        error,
        evals,
        spans,
    } = scratch;
    for (idx, comp) in bucket {
        log.clear();
        let started = telem.level.timed().then(Instant::now);
        let reader = BusReader::new(bus, wave, overlay_wave, overlay_val);
        let res = comp.eval_split(&reader, log);
        if telem.level.enabled() {
            let dur_ns = started.map_or(0, |t| {
                u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
            });
            evals.push((idx, dur_ns));
            if let Some(t0) = started {
                spans.push(TraceEvent {
                    name: comp.name().to_owned(),
                    cat: "eval",
                    ts_ns: telem.ns_since_epoch(t0),
                    dur_ns,
                    tid: worker + 1,
                });
            }
        }
        for &(id, v) in log.raw() {
            commits.push((idx, id, v));
        }
        for &(slot, v) in log.resolved() {
            overlay_wave[slot] = wave;
            overlay_val[slot] = v;
        }
        if let Err(e) = res {
            *error = Some((idx, e));
            return;
        }
    }
}

/// The frozen state of [`SchedMode::Compiled`]: the schedule itself
/// (or the reason none could be built) plus the design snapshot it was
/// built from, so any later growth of the design is detected cheaply.
struct ActivePlan {
    /// `SignalBus::len` at build time.
    n_sigs: usize,
    /// Component count at build time.
    n_comps: usize,
    /// `SignalBus::driver_link_count` at build time. The count is
    /// monotonic, so any newly discovered `(signal, driver)` pair —
    /// including ones the compiled walk itself observes and records —
    /// invalidates the plan.
    links: usize,
    /// The levelized schedule, or the human-readable reason the design
    /// cannot be levelized (permanent event-driven fallback).
    sched: Result<CompiledSchedule, String>,
}

/// One component's lowered op-stream program plus its reusable scratch
/// planes ([`SchedMode::Lowered`]). The program is behind an `Arc` so
/// [`Simulator::export_plan`] can ship it inside a [`CompiledPlan`]
/// without cloning the op stream.
struct LoweredUnit {
    prog: Arc<LoweredProgram>,
    scratch: LoweredScratch,
}

/// A synchronous single-clock simulator.
///
/// Owns the [`SignalBus`] and the component instances and advances
/// them cycle by cycle. See the crate-level example, and
/// [`SimBuilder`] for construction that freezes the event scheduler's
/// sensitivity tables before the first step.
#[derive(Default)]
pub struct Simulator {
    bus: SignalBus,
    components: Vec<Box<dyn AnyComponent>>,
    /// Values poked by the testbench, re-driven at the start of every
    /// settle iteration so they behave like external pad drivers.
    pokes: Vec<(SignalId, LogicVector)>,
    cycle: u64,
    mode: SchedMode,
    /// Sensitivity tables, valid while `tables_ready`.
    tables_ready: bool,
    /// signal index -> components sensitive to it.
    watchers: Vec<Vec<usize>>,
    /// Components evaluated in every pass: declared `Always` plus any
    /// promoted for sharing a signal with another driver.
    always: Vec<usize>,
    /// Components with clock-edge behaviour.
    clocked: Vec<usize>,
    /// Sticky co-driver promotions (survive table rebuilds).
    promoted: Vec<bool>,
    /// Components to wake at the next settle.
    seeds: Vec<usize>,
    /// Signals poked since the last settle (their watchers get woken).
    poked_signals: Vec<SignalId>,
    /// Wake every component at the next settle (reset, mode switch,
    /// late additions).
    wake_all: bool,
    /// Whether any component declared [`Sensitivity::Always`] — such
    /// components may read arbitrary signals, so the parallel
    /// scheduler cannot partition and falls back to sequential waves.
    has_always: bool,
    /// Connectivity island (union-find root) per component, for
    /// [`SchedMode::Parallel`]. Rebuilt lazily when the component set,
    /// signal set or discovered driver links change.
    islands: Vec<usize>,
    /// `SignalBus::driver_link_count` the islands were built from.
    islands_links: usize,
    /// `SignalBus::len` the islands were built from.
    islands_sigs: usize,
    /// Whether a full sequential wake-all settle has run since the
    /// last table rebuild. Driver links (which components write which
    /// signals) are discovered at runtime; the first settle runs
    /// sequentially so the island partition is complete before any
    /// parallel wave.
    islands_validated: bool,
    /// Monotonic parallel-pass serial, tagging worker overlay entries.
    pass_serial: u64,
    /// Reusable wake/next buffers for the settle loops (hoisted out of
    /// the per-pass hot path to avoid allocator churn).
    scratch_wake: Vec<usize>,
    scratch_next: Vec<usize>,
    /// Reusable per-worker evaluation state.
    worker_scratch: Vec<WorkerScratch>,
    /// Reusable merge buffer for ordered commits.
    commit_scratch: Vec<(usize, SignalId, LogicVector)>,
    /// The frozen plan for [`SchedMode::Compiled`], built after a
    /// validation settle. `None` until the first compiled settle or
    /// after invalidation.
    compiled: Option<ActivePlan>,
    /// Per-component lowered op-stream programs for
    /// [`SchedMode::Lowered`], index-aligned with `components`. `None`
    /// entries evaluate through the virtual `eval` path on the rank
    /// walk (not a netlist interpreter, or a shape that cannot lower).
    lowered: Vec<Option<LoweredUnit>>,
    /// Whether `lowered` is current for the component set.
    lowered_ready: bool,
    /// Clock domains registered directly on the simulator with
    /// [`Simulator::add_clock_domain`] (testbench-level declarations),
    /// merged with component declarations into `domains`.
    extra_domains: Vec<ClockDomain>,
    /// The merged clock-domain table, valid while `domains_ready`:
    /// index 0 is always the default `clk`/period-1 domain, further
    /// entries in first-declaration order. A domain named by several
    /// components must carry one period everywhere.
    domains: Vec<ClockDomain>,
    /// Whether `domains` is current for the component set.
    domains_ready: bool,
    /// True when every merged domain has period 1: every step fires
    /// every domain and the tick phase takes the exact historical
    /// single-clock path.
    single_rate: bool,
    /// Telemetry counters (all mutation behind a level check; zero
    /// counter traffic at [`TelemetryLevel::Off`]).
    telemetry: Telemetry,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("signals", &self.bus.len())
            .field("components", &self.components.len())
            .field("cycle", &self.cycle)
            .field("mode", &self.mode)
            .finish()
    }
}

impl Simulator {
    /// Creates an empty simulator with the default (event-driven)
    /// scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty simulator with an explicit scheduling mode.
    #[must_use]
    pub fn with_mode(mode: SchedMode) -> Self {
        Simulator {
            mode,
            ..Self::default()
        }
    }

    /// The active scheduling mode.
    #[must_use]
    pub fn mode(&self) -> SchedMode {
        self.mode
    }

    /// Switches scheduling mode. Safe at any point: the next settle
    /// re-evaluates everything once to re-synchronise.
    pub fn set_mode(&mut self, mode: SchedMode) {
        if self.mode != mode {
            self.mode = mode;
            self.wake_all = true;
        }
    }

    /// Declares a signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateSignal`] or a width error.
    pub fn add_signal(
        &mut self,
        name: impl Into<String>,
        width: usize,
    ) -> Result<SignalId, SimError> {
        let id = self.bus.add(name, width)?;
        if self.tables_ready {
            self.watchers.push(Vec::new());
        }
        Ok(id)
    }

    /// Adds a component instance, returning a handle for later
    /// inspection with [`Simulator::component`]. Components must be
    /// [`Send`] so [`SchedMode::Parallel`] can evaluate them on worker
    /// threads.
    ///
    /// Adding a component invalidates the frozen sensitivity tables;
    /// they are rebuilt lazily at the next settle. Prefer registering
    /// everything up front (see [`SimBuilder`]).
    pub fn add_component(&mut self, component: impl Component + Send + 'static) -> ComponentId {
        self.components.push(Box::new(component));
        self.tables_ready = false;
        self.lowered_ready = false;
        self.domains_ready = false;
        self.wake_all = true;
        ComponentId(self.components.len() - 1)
    }

    /// Declares a clock domain at the simulator level, e.g. for a
    /// testbench that drives [`Component::tick_domains`] semantics
    /// without a netlist. Component-declared domains (see
    /// [`Component::clock_domains`]) are merged in automatically; a
    /// name declared twice must carry the same period everywhere.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Protocol`] for a zero period or a period
    /// conflict with an earlier declaration.
    pub fn add_clock_domain(
        &mut self,
        name: impl Into<String>,
        period: u64,
    ) -> Result<(), SimError> {
        let name = name.into();
        if period == 0 {
            return Err(SimError::Protocol {
                component: "simulator".into(),
                message: format!("clock domain `{name}` has period 0"),
            });
        }
        if name == DEFAULT_CLOCK && period != 1 {
            return Err(SimError::Protocol {
                component: "simulator".into(),
                message: "the default `clk` domain is fixed at period 1".into(),
            });
        }
        if let Some(prev) = self.extra_domains.iter().find(|d| d.name == name) {
            if prev.period != period {
                return Err(SimError::Protocol {
                    component: "simulator".into(),
                    message: format!(
                        "clock domain `{name}` redeclared with period {period} (was {})",
                        prev.period
                    ),
                });
            }
            return Ok(());
        }
        self.extra_domains.push(ClockDomain::new(name, period));
        self.domains_ready = false;
        Ok(())
    }

    /// The merged clock-domain table: the default `clk` first, then
    /// every domain declared by [`Simulator::add_clock_domain`] or a
    /// component, in first-declaration order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Protocol`] if two declarations disagree on
    /// a domain's period.
    pub fn clock_domains(&mut self) -> Result<&[ClockDomain], SimError> {
        self.ensure_domains()?;
        Ok(&self.domains)
    }

    /// Rebuilds the merged domain table if stale.
    fn ensure_domains(&mut self) -> Result<(), SimError> {
        if self.domains_ready {
            return Ok(());
        }
        let mut domains = vec![ClockDomain::default_clock()];
        let merge = |domains: &mut Vec<ClockDomain>, d: ClockDomain, who: &str| match domains
            .iter()
            .find(|x| x.name == d.name)
        {
            Some(prev) if prev.period != d.period => Err(SimError::Protocol {
                component: who.to_owned(),
                message: format!(
                    "clock domain `{}` declared with period {} but already registered \
                         with period {}",
                    d.name, d.period, prev.period
                ),
            }),
            Some(_) => Ok(()),
            None => {
                if d.period == 0 {
                    return Err(SimError::Protocol {
                        component: who.to_owned(),
                        message: format!("clock domain `{}` has period 0", d.name),
                    });
                }
                domains.push(d);
                Ok(())
            }
        };
        for d in self.extra_domains.clone() {
            merge(&mut domains, d, "simulator")?;
        }
        for c in &self.components {
            for d in c.clock_domains() {
                merge(&mut domains, d, c.name())?;
            }
        }
        self.single_rate = domains.iter().all(|d| d.period == 1);
        self.domains = domains;
        self.domains_ready = true;
        Ok(())
    }

    /// Downcasts a component back to its concrete type, e.g. to read
    /// the frames a [`crate::devices::VideoOut`] collected.
    ///
    /// Returns `None` if the handle is stale or `T` is not the type
    /// that was added.
    #[must_use]
    pub fn component<T: Component + 'static>(&self, id: ComponentId) -> Option<&T> {
        // Explicit deref: `.as_any()` on the Box would resolve the
        // blanket impl for `Box<dyn AnyComponent>` itself.
        (**self.components.get(id.0)?).as_any().downcast_ref::<T>()
    }

    /// Mutable variant of [`Simulator::component`], e.g. to preload a
    /// [`crate::devices::Sram`] between runs.
    ///
    /// Mutating device state behind the scheduler's back is treated
    /// like a reset for wake-up purposes: every component is
    /// re-evaluated at the next settle.
    #[must_use]
    pub fn component_mut<T: Component + 'static>(&mut self, id: ComponentId) -> Option<&mut T> {
        self.wake_all = true;
        (**self.components.get_mut(id.0)?)
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// The number of clock cycles executed since the last reset.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Switches the telemetry level. Safe at any point; counters
    /// accumulated so far are retained. See [`TelemetryLevel`] for
    /// the overhead of each level.
    pub fn set_telemetry(&mut self, level: TelemetryLevel) {
        self.telemetry.set_level(level);
        self.telemetry.ensure_components(self.components.len());
        self.bus.set_telemetry(level.enabled());
    }

    /// The active telemetry level.
    #[must_use]
    pub fn telemetry_level(&self) -> TelemetryLevel {
        self.telemetry.level
    }

    /// Snapshots the telemetry counters into a [`SimStats`].
    ///
    /// Empty when telemetry is [`TelemetryLevel::Off`]. Cheap enough
    /// to call between runs; the counters keep accumulating.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        if !self.telemetry.on() {
            return SimStats::default();
        }
        let t = &self.telemetry;
        let components: Vec<ComponentStats> = self
            .components
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let evals = t.comp_evals.get(i).copied().unwrap_or(0);
                ComponentStats {
                    name: c.name().to_owned(),
                    evals,
                    skips: t.passes.saturating_sub(evals),
                    eval_ns: t.comp_ns.get(i).copied().unwrap_or(0),
                }
            })
            .collect();
        let signals: Vec<SignalStats> = (0..self.bus.len())
            .map(|slot| {
                let (name, toggles, drives) = self.bus.slot_telemetry(slot);
                SignalStats {
                    name: name.to_owned(),
                    toggles,
                    drives,
                }
            })
            .collect();
        // Island sizes from the current partition, numbered by first
        // appearance in registration order (deterministic).
        let mut island_sizes: Vec<u64> = Vec::new();
        let mut roots: Vec<usize> = Vec::new();
        for &root in &self.islands {
            match roots.iter().position(|&r| r == root) {
                Some(k) => island_sizes[k] += 1,
                None => {
                    roots.push(root);
                    island_sizes.push(1);
                }
            }
        }
        let last_wake_sets: Vec<Vec<String>> = t
            .wake_ring
            .iter()
            .map(|set| {
                set.iter()
                    .map(|&i| {
                        self.components
                            .get(i)
                            .map_or_else(|| format!("component #{i}"), |c| c.name().to_owned())
                    })
                    .collect()
            })
            .collect();
        let compiled_ranks = self
            .compiled
            .as_ref()
            .and_then(|p| p.sched.as_ref().ok())
            .map(|s| s.rank_counts.clone())
            .unwrap_or_default();
        let mut notes = t.notes.clone();
        if let Some(reason) = self.compile_fallback_reason() {
            notes.push(format!(
                "compiled: permanently falling back to event-driven — {reason}"
            ));
        }
        SimStats {
            level: t.level,
            steps: t.steps,
            settles: t.settles,
            passes: t.passes,
            max_passes: t.max_passes,
            total_wake: t.total_wake,
            max_wake: t.max_wake,
            components,
            signals,
            parallel_waves: t.parallel_waves,
            inline_waves: t.inline_waves,
            fallback_settles: t.fallback_settles,
            fallback_causes: t.fallback_causes,
            compiled_settles: t.compiled_settles,
            lowered_settles: t.lowered_settles,
            ops_executed: t.ops_executed,
            plan_installs: t.plan_installs,
            compiled_ranks,
            notes,
            island_sizes,
            worker_evals: t.worker_evals.clone(),
            last_wake_sets,
            trace: t.trace.clone(),
            trace_dropped: t.trace_dropped,
        }
    }

    /// Immutable access to the signal bus (for monitors).
    #[must_use]
    pub fn bus(&self) -> &SignalBus {
        &self.bus
    }

    /// Reads a signal's current value.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] for a stale id.
    pub fn peek(&self, id: SignalId) -> Result<LogicVector, SimError> {
        self.bus.read(id)
    }

    /// Drives a signal from the testbench with a defined integer value.
    ///
    /// The value persists (it is re-driven each settle pass) until the
    /// next `poke` of the same signal or [`Simulator::unpoke`].
    ///
    /// # Errors
    ///
    /// Returns width or unknown-signal errors.
    pub fn poke(&mut self, id: SignalId, value: u64) -> Result<(), SimError> {
        let width = self.bus.width(id)?;
        let v = LogicVector::from_u64(value, width).map_err(SimError::from)?;
        self.poke_vector(id, v)
    }

    /// Drives a signal from the testbench with an arbitrary logic value.
    ///
    /// # Errors
    ///
    /// Returns width or unknown-signal errors.
    pub fn poke_vector(&mut self, id: SignalId, value: LogicVector) -> Result<(), SimError> {
        if self.bus.width(id)? != value.width() {
            return Err(SimError::SignalWidth {
                signal: self.bus.name(id)?.to_owned(),
                expected: self.bus.width(id)?,
                found: value.width(),
            });
        }
        match self.pokes.iter_mut().find(|(s, _)| *s == id) {
            Some((_, v)) => *v = value,
            None => self.pokes.push((id, value)),
        }
        self.poked_signals.push(id);
        Ok(())
    }

    /// Stops driving a previously poked signal.
    ///
    /// The signal holds its last value until something else drives it.
    pub fn unpoke(&mut self, id: SignalId) {
        self.pokes.retain(|(s, _)| *s != id);
    }

    /// Applies synchronous reset to every component and settles.
    ///
    /// # Errors
    ///
    /// Propagates component errors and non-convergence.
    pub fn reset(&mut self) -> Result<(), SimError> {
        self.cycle = 0;
        for (i, c) in self.components.iter_mut().enumerate() {
            self.bus.set_driver(i);
            c.reset(&mut self.bus)?;
        }
        self.bus.set_driver(DRIVER_POKE);
        self.wake_all = true;
        self.settle()
    }

    /// Settles combinational logic to a fixpoint without advancing the
    /// clock. Useful after poking inputs mid-cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoConvergence`] on a zero-delay loop, or the
    /// first component error.
    pub fn settle(&mut self) -> Result<(), SimError> {
        match self.mode {
            SchedMode::FullSweep => self.settle_sweep(),
            SchedMode::EventDriven => self.settle_event(),
            SchedMode::Parallel { threads } => self.settle_parallel(threads),
            SchedMode::Compiled | SchedMode::Lowered => self.settle_compiled(),
        }
    }

    /// Reference settle: every component, every pass.
    fn settle_sweep(&mut self) -> Result<(), SimError> {
        // A full sweep subsumes any pending targeted wake-ups.
        self.seeds.clear();
        self.poked_signals.clear();
        self.wake_all = false;
        let telemetry_on = self.telemetry.on();
        if telemetry_on {
            self.telemetry.settles += 1;
            self.telemetry.ensure_components(self.components.len());
        }
        let mut pass_count: u64 = 0;
        for _ in 0..DELTA_LIMIT {
            self.bus.begin_pass();
            self.bus.set_driver(DRIVER_POKE);
            for (id, value) in &self.pokes {
                self.bus.drive(*id, *value)?;
            }
            for (i, c) in self.components.iter_mut().enumerate() {
                self.bus.set_driver(i);
                let started = self.telemetry.timed().then(Instant::now);
                c.eval(&mut self.bus)?;
                if telemetry_on {
                    let dur = started.map_or(0, |t| {
                        u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
                    });
                    self.telemetry.record_eval(i, dur);
                }
            }
            if telemetry_on {
                pass_count += 1;
                self.telemetry.passes += 1;
                let n = self.components.len() as u64;
                self.telemetry.total_wake += n;
                self.telemetry.max_wake = self.telemetry.max_wake.max(n);
                self.bus.count_pass_toggles();
            }
            if !self.bus.any_changed() {
                if telemetry_on {
                    self.telemetry.max_passes = self.telemetry.max_passes.max(pass_count);
                }
                return Ok(());
            }
        }
        if telemetry_on {
            self.telemetry.max_passes = self.telemetry.max_passes.max(pass_count);
        }
        Err(self.no_convergence())
    }

    /// Collects the pending wake set (wake-all, seeds and poked-signal
    /// watchers) into `wake` and clears the pending state.
    fn collect_wake(&mut self, wake: &mut Vec<usize>) {
        wake.clear();
        if self.wake_all {
            wake.extend(0..self.components.len());
            self.seeds.clear();
        } else {
            wake.append(&mut self.seeds);
            for id in self.poked_signals.drain(..) {
                wake.extend_from_slice(&self.watchers[id.index()]);
            }
        }
        self.wake_all = false;
        self.poked_signals.clear();
    }

    /// Post-pass bookkeeping shared by the event-driven and parallel
    /// settle loops: promote co-drivers of newly shared signals and
    /// collect the next pass's wake set from the dirty slots.
    ///
    /// A signal that just gained a second driver needs all its drivers
    /// co-evaluated from now on, or per-pass resolution would see
    /// partial contributions.
    fn pass_followup(&mut self, next: &mut Vec<usize>) {
        next.clear();
        for slot in self.bus.take_new_shared() {
            for &d in self.bus.slot_drivers(slot) {
                if d != DRIVER_POKE && !self.promoted[d] {
                    self.promoted[d] = true;
                    self.always.push(d);
                    next.push(d);
                }
            }
        }
        for slot in self.bus.dirty_slots() {
            next.extend_from_slice(&self.watchers[slot]);
        }
    }

    /// Event-driven settle: evaluate only woken components.
    fn settle_event(&mut self) -> Result<(), SimError> {
        self.ensure_tables()?;
        // Reuse the wake/next buffers across settles: the settle loop
        // runs twice per clock cycle, and reallocating both vectors in
        // every pass showed up as allocator churn on long runs.
        let mut wake = std::mem::take(&mut self.scratch_wake);
        let mut next = std::mem::take(&mut self.scratch_next);
        self.collect_wake(&mut wake);
        let res = self.settle_event_loop(&mut wake, &mut next);
        wake.clear();
        next.clear();
        self.scratch_wake = wake;
        self.scratch_next = next;
        res
    }

    fn settle_event_loop(
        &mut self,
        wake: &mut Vec<usize>,
        next: &mut Vec<usize>,
    ) -> Result<(), SimError> {
        let telemetry_on = self.telemetry.on();
        if telemetry_on {
            self.telemetry.settles += 1;
            self.telemetry.ensure_components(self.components.len());
        }
        let mut pass_count: u64 = 0;
        for _ in 0..DELTA_LIMIT {
            self.bus.begin_pass();
            self.bus.set_driver(DRIVER_POKE);
            for (id, value) in &self.pokes {
                self.bus.drive(*id, *value)?;
            }
            // Components evaluate in registration order, exactly as the
            // full sweep would order them.
            wake.extend_from_slice(&self.always);
            wake.sort_unstable();
            wake.dedup();
            if telemetry_on {
                pass_count += 1;
                self.telemetry.record_pass(wake);
            }
            let pass_t0 = self.telemetry.timed().then(|| self.telemetry.now_ns());
            for &i in wake.iter() {
                self.bus.set_driver(i);
                let started = self.telemetry.timed().then(Instant::now);
                self.components[i].eval(&mut self.bus)?;
                if telemetry_on {
                    let dur = started.map_or(0, |t| {
                        u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
                    });
                    self.telemetry.record_eval(i, dur);
                    if started.is_some() {
                        self.telemetry.push_span(TraceEvent {
                            name: self.components[i].name().to_owned(),
                            cat: "eval",
                            ts_ns: self.telemetry.now_ns().saturating_sub(dur),
                            dur_ns: dur,
                            tid: 0,
                        });
                    }
                }
            }
            if let Some(t0) = pass_t0 {
                self.telemetry.push_span(TraceEvent {
                    name: format!("pass ({} woken)", wake.len()),
                    cat: "pass",
                    ts_ns: t0,
                    dur_ns: self.telemetry.now_ns().saturating_sub(t0),
                    tid: 0,
                });
            }
            if telemetry_on {
                self.bus.count_pass_toggles();
            }
            self.pass_followup(next);
            if next.is_empty() {
                if telemetry_on {
                    self.telemetry.max_passes = self.telemetry.max_passes.max(pass_count);
                }
                return Ok(());
            }
            std::mem::swap(wake, next);
        }
        if telemetry_on {
            self.telemetry.max_passes = self.telemetry.max_passes.max(pass_count);
        }
        Err(self.no_convergence())
    }

    /// Parallel settle: event-driven waves with woken components
    /// distributed over worker threads by connectivity island.
    ///
    /// Falls back to the sequential event scheduler when it would not
    /// be bit-safe or useful: one worker, a component with undeclared
    /// reads ([`Sensitivity::Always`]), or an island partition not yet
    /// validated by a full sequential settle (driver links — which
    /// component writes which signal — are discovered at runtime, and
    /// the partition is only complete after every component has
    /// evaluated once).
    fn settle_parallel(&mut self, threads: usize) -> Result<(), SimError> {
        self.ensure_tables()?;
        if threads <= 1 || self.has_always || !self.islands_validated {
            if self.telemetry.on() {
                self.telemetry
                    .record_fallback_settle(FallbackCause::ParallelSequential);
            }
            let was_wake_all = self.wake_all;
            let res = self.settle_event();
            if res.is_ok() && was_wake_all && !self.has_always {
                self.islands_validated = true;
            }
            return res;
        }
        let mut wake = std::mem::take(&mut self.scratch_wake);
        let mut next = std::mem::take(&mut self.scratch_next);
        self.collect_wake(&mut wake);
        let res = self.settle_parallel_loop(&mut wake, &mut next, threads);
        wake.clear();
        next.clear();
        self.scratch_wake = wake;
        self.scratch_next = next;
        res
    }

    fn settle_parallel_loop(
        &mut self,
        wake: &mut Vec<usize>,
        next: &mut Vec<usize>,
        threads: usize,
    ) -> Result<(), SimError> {
        let telemetry_on = self.telemetry.on();
        if telemetry_on {
            self.telemetry.settles += 1;
            self.telemetry.ensure_components(self.components.len());
        }
        let mut pass_count: u64 = 0;
        for _ in 0..DELTA_LIMIT {
            // Promotion or late driver discovery in a previous pass may
            // have invalidated the partition.
            self.maybe_rebuild_islands();
            self.bus.begin_pass();
            self.bus.set_driver(DRIVER_POKE);
            for (id, value) in &self.pokes {
                self.bus.drive(*id, *value)?;
            }
            wake.extend_from_slice(&self.always);
            wake.sort_unstable();
            wake.dedup();
            if telemetry_on {
                pass_count += 1;
                self.telemetry.record_pass(wake);
            }
            // A wave spanning a single island has no parallelism to
            // exploit, and a small wave cannot amortize the spawn cost
            // of scoped workers (~tens of µs vs. ~µs of evaluation);
            // either way, evaluate inline on the real bus.
            let mut multi = false;
            if wake.len() >= PARALLEL_WAKE_MIN {
                let mut first = None;
                for &i in wake.iter() {
                    let isl = self.islands[i];
                    match first {
                        None => first = Some(isl),
                        Some(f) if f != isl => {
                            multi = true;
                            break;
                        }
                        Some(_) => {}
                    }
                }
            }
            if multi {
                if telemetry_on {
                    self.telemetry.parallel_waves += 1;
                }
                self.eval_wave_parallel(wake, threads)?;
            } else {
                if telemetry_on {
                    self.telemetry.inline_waves += 1;
                }
                for &i in wake.iter() {
                    self.bus.set_driver(i);
                    let started = self.telemetry.timed().then(Instant::now);
                    self.components[i].eval(&mut self.bus)?;
                    if telemetry_on {
                        let dur = started.map_or(0, |t| {
                            u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
                        });
                        self.telemetry.record_eval(i, dur);
                        if started.is_some() {
                            self.telemetry.push_span(TraceEvent {
                                name: self.components[i].name().to_owned(),
                                cat: "eval",
                                ts_ns: self.telemetry.now_ns().saturating_sub(dur),
                                dur_ns: dur,
                                tid: 0,
                            });
                        }
                    }
                }
            }
            if telemetry_on {
                self.bus.count_pass_toggles();
            }
            self.pass_followup(next);
            if next.is_empty() {
                if telemetry_on {
                    self.telemetry.max_passes = self.telemetry.max_passes.max(pass_count);
                }
                return Ok(());
            }
            std::mem::swap(wake, next);
        }
        if telemetry_on {
            self.telemetry.max_passes = self.telemetry.max_passes.max(pass_count);
        }
        Err(self.no_convergence())
    }

    /// Evaluates one wave on up to `threads` scoped workers and
    /// commits the logged drives in registration order.
    fn eval_wave_parallel(&mut self, wake: &[usize], threads: usize) -> Result<(), SimError> {
        self.pass_serial += 1;
        let wave = self.pass_serial;
        let workers = threads.min(wake.len()).max(1);
        if self.worker_scratch.len() < workers {
            self.worker_scratch
                .resize_with(workers, WorkerScratch::default);
        }
        let telem = WorkerTelemetry {
            level: self.telemetry.level,
            epoch: self.telemetry.epoch(),
        };
        let wave_t0 = telem.level.timed().then(|| self.telemetry.now_ns());
        let bus = &self.bus;
        let islands = &self.islands;
        let scratches = &mut self.worker_scratch[..workers];
        // Split the component vector into disjoint mutable borrows so
        // each worker owns exactly its bucket (safe split: every woken
        // index is taken at most once).
        let mut refs: Vec<Option<&mut Box<dyn AnyComponent>>> =
            self.components.iter_mut().map(Some).collect();
        let mut buckets: Vec<Vec<(usize, &mut Box<dyn AnyComponent>)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for &i in wake {
            let w = islands[i] % workers;
            buckets[w].push((
                i,
                refs[i].take().expect("component woken twice in one pass"),
            ));
        }
        std::thread::scope(|s| {
            for (w, (bucket, scratch)) in buckets.into_iter().zip(scratches.iter_mut()).enumerate()
            {
                if bucket.is_empty() {
                    continue;
                }
                let w = u32::try_from(w).unwrap_or(u32::MAX);
                s.spawn(move || worker_eval(bucket, scratch, bus, wave, telem, w));
            }
        });
        // Merge the per-worker logs into registration order. The sort
        // is stable, so each component's own drive order is preserved.
        // Telemetry merges here too: workers only ever wrote their own
        // scratch, so the counters stay atomic-free.
        let mut all = std::mem::take(&mut self.commit_scratch);
        let mut first_err: Option<(usize, SimError)> = None;
        let telemetry_on = self.telemetry.on();
        for (w, scratch) in self.worker_scratch[..workers].iter_mut().enumerate() {
            all.append(&mut scratch.commits);
            if telemetry_on && !scratch.evals.is_empty() {
                self.telemetry
                    .record_worker_evals(w, scratch.evals.len() as u64);
                for (idx, dur_ns) in scratch.evals.drain(..) {
                    self.telemetry.record_eval(idx, dur_ns);
                }
            }
            if !scratch.spans.is_empty() {
                self.telemetry.extend_spans(&mut scratch.spans);
            }
            if let Some((idx, e)) = scratch.error.take() {
                if first_err.as_ref().is_none_or(|(k, _)| idx < *k) {
                    first_err = Some((idx, e));
                }
            }
        }
        if let Some(t0) = wave_t0 {
            self.telemetry.push_span(TraceEvent {
                name: format!("wave ({} woken, {workers} workers)", wake.len()),
                cat: "wave",
                ts_ns: t0,
                dur_ns: self.telemetry.now_ns().saturating_sub(t0),
                tid: 0,
            });
        }
        all.sort_by_key(|&(comp, _, _)| comp);
        // Replay. On a component error, the sequential scheduler would
        // have stopped mid-pass: commit only drives from components
        // registered before the erroring one, plus the erroring
        // component's drives logged before its error.
        let mut replay_err = None;
        let mut cur = DRIVER_POKE;
        for &(comp, id, v) in &all {
            if let Some((k, _)) = &first_err {
                if comp > *k {
                    break;
                }
            }
            if comp != cur {
                self.bus.set_driver(comp);
                cur = comp;
            }
            if let Err(e) = self.bus.drive(id, v) {
                replay_err = Some(e);
                break;
            }
        }
        all.clear();
        self.commit_scratch = all;
        match (first_err, replay_err) {
            (Some((_, e)), _) => Err(e),
            (None, Some(e)) => Err(e),
            (None, None) => Ok(()),
        }
    }

    /// Compiled settle: one walk of the frozen rank schedule, with
    /// transparent event-driven fallback whenever the plan is missing,
    /// stale, unbuildable, or a full re-evaluation is pending.
    fn settle_compiled(&mut self) -> Result<(), SimError> {
        self.ensure_tables()?;
        if self.mode == SchedMode::Lowered {
            self.ensure_lowered();
        }
        let fresh = self.compiled.as_ref().is_some_and(|p| {
            p.n_sigs == self.bus.len()
                && p.n_comps == self.components.len()
                && p.links == self.bus.driver_link_count()
        });
        if !fresh {
            // (Re)build: run one full event-driven settle so the bus's
            // driver links record every writer the current state
            // exercises, then freeze the schedule from the settled
            // design.
            self.compiled = None;
            self.wake_all = true;
            if self.telemetry.on() {
                self.telemetry
                    .record_fallback_settle(FallbackCause::Rebuild);
            }
            self.settle_event()?;
            self.build_compiled();
            return Ok(());
        }
        if self.wake_all {
            // A full re-evaluation was requested (reset, mode switch,
            // device mutation): the event scheduler handles it with
            // identical semantics; the arena just needs a reload
            // before the next compiled walk.
            if let Some(Ok(sched)) = self.compiled.as_mut().map(|p| p.sched.as_mut()) {
                sched.arena_stale = true;
            }
            if self.telemetry.on() {
                self.telemetry
                    .record_fallback_settle(FallbackCause::WakeAll);
            }
            return self.settle_event();
        }
        let mut plan = self.compiled.take().expect("freshness implies a plan");
        let res = match &mut plan.sched {
            Err(_) => {
                // Permanent fallback (cycle / Always): event-driven
                // with the same observable semantics.
                if self.telemetry.on() {
                    self.telemetry
                        .record_fallback_settle(FallbackCause::NonLevelizable);
                }
                self.settle_event()
            }
            Ok(sched) => match self.run_compiled(sched) {
                Ok(true) => Ok(()),
                Ok(false) => {
                    // The walk observed a drive the schedule was not
                    // built with. Nothing was committed; record the
                    // links (bumping the link count so the stale plan
                    // is rebuilt next settle) and re-run this settle
                    // event-driven from the still-pending wake state.
                    sched.arena_stale = true;
                    for &(slot, driver) in &sched.new_links {
                        self.bus.note_driver(slot, driver);
                    }
                    if self.telemetry.on() {
                        self.telemetry
                            .record_fallback_settle(FallbackCause::StaleDriver);
                        self.telemetry.note_once(
                            "compiled: schedule invalidated by a newly discovered driver; \
                             settle re-ran event-driven and the schedule will be rebuilt",
                        );
                    }
                    self.settle_event()
                }
                Err(e) => {
                    sched.arena_stale = true;
                    for &(slot, driver) in &sched.new_links {
                        self.bus.note_driver(slot, driver);
                    }
                    Err(e)
                }
            },
        };
        self.compiled = Some(plan);
        res
    }

    /// Executes one settle as a single walk of the levelized schedule.
    ///
    /// Returns `Ok(true)` on success (changes committed to the bus),
    /// `Ok(false)` if the walk discovered a driver the schedule was
    /// not built with (nothing committed; caller falls back), or the
    /// first component error (nothing committed).
    ///
    /// Correctness of the single pass: every reader of a signal is
    /// ranked strictly above all of the signal's writers, and `eval`
    /// is required to be a pure function of signal values and
    /// registered state — so by the time a component evaluates, every
    /// input it can observe already has its fixpoint value, and one
    /// rank-ordered walk reaches the same fixpoint the delta loop
    /// would. Multi-driver resolution folds with the same
    /// first-drive-replaces / later-drives-resolve rule as the bus,
    /// and [`hdp_hdl::LogicVector::resolve`] is commutative and
    /// associative, so fold order cannot change settled values.
    fn run_compiled(&mut self, sched: &mut CompiledSchedule) -> Result<bool, SimError> {
        if sched.arena_stale {
            sched.arena.load_from(&self.bus);
            sched.arena_stale = false;
            // An event-driven settle (or reset / device mutation) ran
            // since the last walk: the lowered input memos may be
            // describing stale sequential state.
            for unit in self.lowered.iter_mut().flatten() {
                unit.scratch.dirty = true;
            }
        }
        sched.begin_settle();
        let telemetry_on = self.telemetry.on();
        if telemetry_on {
            self.telemetry.ensure_components(self.components.len());
        }
        let use_lowered = self.mode == SchedMode::Lowered;
        let mut evaluated: Vec<usize> = Vec::new();
        {
            let Simulator {
                components,
                bus,
                pokes,
                watchers,
                always,
                seeds,
                poked_signals,
                telemetry,
                lowered,
                ..
            } = self;
            // Wake set: pending seeds (tick aftermath), watchers of
            // poked signals, and the always/promoted list. Peeked, not
            // drained — on fallback the event settle must still see
            // them.
            for &i in seeds.iter() {
                sched.wake(i);
            }
            for id in poked_signals.iter() {
                for &w in &watchers[id.index()] {
                    sched.wake(w);
                }
            }
            for &i in always.iter() {
                sched.wake(i);
            }
            // Testbench pokes land first, with replace semantics, just
            // as they open every event-driven pass.
            {
                let mut cb = CompiledBus {
                    sched: &mut *sched,
                    bus,
                    driver: DRIVER_POKE,
                    telemetry: telemetry_on,
                };
                for (id, value) in pokes.iter() {
                    cb.drive(*id, *value)?;
                }
            }
            let mut cursor = 0usize;
            while cursor < sched.changed.len() {
                let slot = sched.changed[cursor];
                cursor += 1;
                for &w in &watchers[slot] {
                    sched.wake(w);
                }
            }
            // The rank walk. Readers rank above writers, so waking a
            // watcher always targets a component later in the order.
            for k in 0..sched.order.len() {
                let i = sched.order[k] as usize;
                if !sched.is_woken(i) {
                    continue;
                }
                if telemetry_on {
                    evaluated.push(i);
                }
                let started = telemetry.timed().then(Instant::now);
                let mut lowered_ops = 0u64;
                let res = {
                    let mut cb = CompiledBus {
                        sched: &mut *sched,
                        bus,
                        driver: i,
                        telemetry: telemetry_on,
                    };
                    let unit = if use_lowered {
                        lowered.get_mut(i).and_then(Option::as_mut)
                    } else {
                        None
                    };
                    match unit {
                        Some(unit) => {
                            let comp = (*components[i])
                                .as_any_mut()
                                .downcast_mut::<NetlistComponent>()
                                .expect("a lowered unit is built from a NetlistComponent");
                            exec_settle(&unit.prog, &mut unit.scratch, comp, &mut cb)
                                .map(|ops| lowered_ops = ops)
                        }
                        None => components[i].eval(&mut cb),
                    }
                };
                if telemetry_on {
                    let dur = started.map_or(0, |t| {
                        u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
                    });
                    telemetry.record_eval(i, dur);
                    telemetry.ops_executed += lowered_ops;
                    if started.is_some() {
                        telemetry.push_span(TraceEvent {
                            name: components[i].name().to_owned(),
                            cat: "eval",
                            ts_ns: telemetry.now_ns().saturating_sub(dur),
                            dur_ns: dur,
                            tid: 0,
                        });
                    }
                }
                res?;
                if sched.stale {
                    return Ok(false);
                }
                while cursor < sched.changed.len() {
                    let slot = sched.changed[cursor];
                    cursor += 1;
                    for &w in &watchers[slot] {
                        sched.wake(w);
                    }
                }
            }
        }
        // Commit: import the net per-settle changes onto the live bus
        // so peeks, VCD monitors and the tick phase observe them with
        // the usual dirty bookkeeping.
        self.bus.begin_pass();
        for idx in 0..sched.changed.len() {
            let slot = sched.changed[idx];
            let v = sched.arena.get(slot);
            if self.bus.read(SignalId(slot))? != v {
                self.bus.sync_compiled(slot, v, sched.changer[slot]);
            }
        }
        for (slot, n) in sched.take_drive_counts() {
            self.bus.add_drives(slot, n);
        }
        if telemetry_on {
            self.telemetry.settles += 1;
            if use_lowered {
                self.telemetry.lowered_settles += 1;
            } else {
                self.telemetry.compiled_settles += 1;
            }
            self.telemetry.record_pass(&evaluated);
            self.telemetry.max_passes = self.telemetry.max_passes.max(1);
            self.bus.count_pass_toggles();
        }
        self.seeds.clear();
        self.poked_signals.clear();
        Ok(true)
    }

    /// Freezes the current (settled) design into an active plan:
    /// levelizes the components if possible, records the reason if
    /// not, and snapshots the design shape for staleness detection.
    fn build_compiled(&mut self) {
        let plan = ActivePlan {
            n_sigs: self.bus.len(),
            n_comps: self.components.len(),
            links: self.bus.driver_link_count(),
            sched: self.try_levelize(),
        };
        self.compiled = Some(plan);
    }

    /// (Re)derives the per-component lowered op streams for
    /// [`SchedMode::Lowered`]. Every [`NetlistComponent`] is
    /// translated once into a flat word-level program; anything else —
    /// or a netlist shape that cannot lower — keeps its virtual `eval`
    /// on the rank walk, with the reason recorded as a telemetry note.
    fn ensure_lowered(&mut self) {
        if self.lowered_ready && self.lowered.len() == self.components.len() {
            return;
        }
        let mut units = Vec::with_capacity(self.components.len());
        let mut fallbacks: Vec<String> = Vec::new();
        for c in &self.components {
            let unit = (**c)
                .as_any()
                .downcast_ref::<NetlistComponent>()
                .and_then(|nc| {
                    match LoweredProgram::try_lower(nc.netlist(), nc.lowered_wiring()) {
                        Ok(prog) => {
                            let scratch = LoweredScratch::new(&prog);
                            Some(LoweredUnit {
                                prog: Arc::new(prog),
                                scratch,
                            })
                        }
                        Err(reason) => {
                            fallbacks.push(format!(
                                "lowered: component `{}` keeps interpreted eval — {reason}",
                                c.name()
                            ));
                            None
                        }
                    }
                });
            units.push(unit);
        }
        self.lowered = units;
        self.lowered_ready = true;
        if self.telemetry.on() {
            for note in &fallbacks {
                self.telemetry.record_cause(FallbackCause::LoweredComponent);
                self.telemetry.note_once(note);
            }
        }
    }

    /// Attempts to levelize the design: writers per signal are the
    /// drivers the bus observed (the build settle evaluated every
    /// component once) unioned with each component's declared
    /// [`Component::drives`] — the declaration covers conditional
    /// drives that have not fired yet. Readers come from the
    /// sensitivity tables. Kahn's algorithm with longest-path ranks
    /// then orders components by combinational depth; any cycle (or an
    /// [`Sensitivity::Always`] component, whose reads are unknown)
    /// makes the design non-levelizable.
    fn try_levelize(&self) -> Result<CompiledSchedule, String> {
        let n = self.components.len();
        if self.has_always {
            let name = self
                .components
                .iter()
                .find(|c| matches!(c.sensitivity(), Sensitivity::Always))
                .map_or_else(|| "?".to_owned(), |c| c.name().to_owned());
            return Err(format!(
                "component `{name}` declares Sensitivity::Always (undeclared reads), \
                 so no static evaluation order is safe"
            ));
        }
        let mut writers: Vec<Vec<usize>> = vec![Vec::new(); self.bus.len()];
        for (s, ws) in writers.iter_mut().enumerate() {
            for &d in self.bus.slot_drivers(s) {
                if d != DRIVER_POKE && d < n {
                    ws.push(d);
                }
            }
        }
        for (i, c) in self.components.iter().enumerate() {
            if let Some(declared) = c.drives() {
                for id in declared {
                    if let Some(ws) = writers.get_mut(id.index()) {
                        if !ws.contains(&i) {
                            ws.push(i);
                        }
                    }
                }
            }
        }
        let mut indeg = vec![0usize; n];
        let mut edges: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (s, ws) in writers.iter().enumerate() {
            for &w in ws {
                for &r in &self.watchers[s] {
                    if r == w {
                        return Err(format!(
                            "combinational cycle: `{}` reads a signal it drives (`{}`)",
                            self.components[w].name(),
                            self.bus.name(SignalId(s)).unwrap_or("?")
                        ));
                    }
                    edges[w].push(u32::try_from(r).unwrap_or(u32::MAX));
                    indeg[r] += 1;
                }
            }
        }
        let mut rank = vec![0usize; n];
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut head = 0;
        while head < queue.len() {
            let w = queue[head];
            head += 1;
            for &r in &edges[w] {
                let r = r as usize;
                rank[r] = rank[r].max(rank[w] + 1);
                indeg[r] -= 1;
                if indeg[r] == 0 {
                    queue.push(r);
                }
            }
        }
        if queue.len() < n {
            let stuck: Vec<String> = (0..n)
                .filter(|&i| indeg[i] > 0)
                .take(4)
                .map(|i| format!("`{}`", self.components[i].name()))
                .collect();
            let extra = n - queue.len() - stuck.len().min(n - queue.len());
            let more = if extra > 0 {
                format!(" (+{extra} more)")
            } else {
                String::new()
            };
            return Err(format!(
                "combinational cycle through {}{more}",
                stuck.join(", ")
            ));
        }
        let mut order: Vec<u32> = (0..u32::try_from(n).unwrap_or(u32::MAX)).collect();
        order.sort_by_key(|&i| (rank[i as usize], i));
        let mut rank_counts = vec![0u64; rank.iter().copied().max().map_or(0, |m| m + 1)];
        for &r in &rank {
            rank_counts[r] += 1;
        }
        let arena = SignalArena::build(&self.bus);
        Ok(CompiledSchedule::new(arena, order, rank_counts))
    }

    /// Switches to [`SchedMode::Compiled`] and builds the schedule
    /// immediately (the build settle runs now rather than lazily at
    /// the next settle). Returns whether a compiled schedule is
    /// active; `false` means the design cannot be levelized and every
    /// settle will transparently use the event-driven scheduler — see
    /// [`Simulator::compile_fallback_reason`] for why. Results are
    /// bit-identical either way.
    ///
    /// # Errors
    ///
    /// Propagates errors from the validation settle.
    pub fn compile(&mut self) -> Result<bool, SimError> {
        self.set_mode(SchedMode::Compiled);
        self.settle()?;
        // The wake-all fallback path defers the build to the next
        // settle; force it now so callers get a definitive answer.
        if self.compiled.is_none() {
            self.build_compiled();
        }
        Ok(self.compiled.as_ref().is_some_and(|p| p.sched.is_ok()))
    }

    /// Why [`SchedMode::Compiled`] permanently fell back to
    /// event-driven evaluation, if it did. `None` while a compiled
    /// schedule is active, or before one was ever built.
    #[must_use]
    pub fn compile_fallback_reason(&self) -> Option<&str> {
        self.compiled
            .as_ref()
            .and_then(|p| p.sched.as_ref().err().map(String::as_str))
    }

    /// A structural signature of the current design: an FNV-1a hash
    /// over every signal's name and width and every component's name,
    /// sensitivity, clocking and declared drives, all in declaration
    /// order. Two simulators built through the same construction
    /// sequence produce the same signature; signal *values* and
    /// simulation progress do not participate, so the signature is
    /// stable for a design's whole lifetime.
    ///
    /// This is the compatibility key for [`CompiledPlan`] reuse:
    /// [`Simulator::install_plan`] rejects a plan whose signature does
    /// not match the target simulator.
    #[must_use]
    pub fn design_signature(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.u64(self.bus.len() as u64);
        for slot in 0..self.bus.len() {
            let id = SignalId(slot);
            h.str(self.bus.name(id).unwrap_or(""));
            h.u64(self.bus.width(id).unwrap_or(0) as u64);
        }
        h.u64(self.components.len() as u64);
        for c in &self.components {
            h.str(c.name());
            match c.sensitivity() {
                Sensitivity::Always => h.u64(u64::MAX),
                Sensitivity::Signals(mut sigs) => {
                    sigs.sort_unstable();
                    sigs.dedup();
                    h.u64(sigs.len() as u64);
                    for s in sigs {
                        h.u64(s.index() as u64);
                    }
                }
            }
            h.u64(u64::from(c.is_clocked()));
            match c.drives() {
                None => h.u64(u64::MAX),
                Some(mut drives) => {
                    drives.sort_unstable();
                    drives.dedup();
                    h.u64(drives.len() as u64);
                    for d in drives {
                        h.u64(d.index() as u64);
                    }
                }
            }
        }
        // Clock domains participate only when the design actually has
        // more than the implicit `clk`/1, so every pre-existing
        // signature (including pinned plan-cache keys) is unchanged.
        // The table is recomputed here rather than read from the cache
        // because the signature must not depend on whether
        // `ensure_domains` has run yet.
        let mut domains = vec![ClockDomain::default_clock()];
        let merge = |domains: &mut Vec<ClockDomain>, d: ClockDomain| {
            if !domains.iter().any(|x| x.name == d.name) {
                domains.push(d);
            }
        };
        for d in &self.extra_domains {
            merge(&mut domains, d.clone());
        }
        for c in &self.components {
            for d in c.clock_domains() {
                merge(&mut domains, d);
            }
        }
        if domains.len() > 1 {
            h.u64(domains.len() as u64);
            for d in &domains {
                h.str(&d.name);
                h.u64(d.period);
            }
        }
        h.finish()
    }

    /// Snapshots the active compiled schedule as a reusable
    /// [`CompiledPlan`]: the levelized order, the rank shape, and
    /// every `(signal, driver)` link the bus has observed. `None`
    /// while no compiled schedule is active (mode is not
    /// [`SchedMode::Compiled`], [`Simulator::compile`] has not run, or
    /// the design permanently fell back to event-driven evaluation).
    ///
    /// The plan is plain data — hash it, cache it, ship it to another
    /// simulator of the same design via [`Simulator::install_plan`].
    #[must_use]
    pub fn export_plan(&self) -> Option<CompiledPlan> {
        let plan = self.compiled.as_ref()?;
        let sched = plan.sched.as_ref().ok()?;
        let mut links = Vec::new();
        for slot in 0..self.bus.len() {
            for &d in self.bus.slot_drivers(slot) {
                let driver = if d == DRIVER_POKE {
                    u32::MAX
                } else {
                    u32::try_from(d).unwrap_or(u32::MAX)
                };
                links.push((u32::try_from(slot).unwrap_or(u32::MAX), driver));
            }
        }
        // A simulator that ran [`SchedMode::Lowered`] also ships its
        // per-component op streams (cheap: `Arc` bumps), so a warm
        // install skips the lowering pass as well as levelization.
        let lowered: Vec<Option<Arc<LoweredProgram>>> = if self.lowered.len() == plan.n_comps {
            self.lowered
                .iter()
                .map(|u| u.as_ref().map(|u| Arc::clone(&u.prog)))
                .collect()
        } else {
            Vec::new()
        };
        Some(CompiledPlan {
            signature: self.design_signature(),
            n_sigs: plan.n_sigs,
            n_comps: plan.n_comps,
            links,
            order: sched.order.clone(),
            rank_counts: sched.rank_counts.clone(),
            lowered,
        })
    }

    /// Installs a [`CompiledPlan`] exported from another simulator of
    /// the same design, switching this simulator to
    /// [`SchedMode::Compiled`] with the schedule already built — the
    /// validation levelization is skipped entirely. Call after all
    /// signals and components are registered (and before running);
    /// the recorded driver links are replayed onto the bus so the
    /// installed schedule ages exactly like a locally compiled one.
    ///
    /// Settled values, traces and telemetry toggle counts are
    /// bit-identical to a cold [`Simulator::compile`]: the installed
    /// schedule is the one a local compile would have produced.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PlanMismatch`] when the plan's structural
    /// signature or shape does not match this simulator's design.
    pub fn install_plan(&mut self, plan: &CompiledPlan) -> Result<(), SimError> {
        self.ensure_tables()?;
        if plan.n_sigs != self.bus.len() || plan.n_comps != self.components.len() {
            return Err(SimError::PlanMismatch {
                reason: format!(
                    "plan shape is {} signals / {} components, design has {} / {}",
                    plan.n_sigs,
                    plan.n_comps,
                    self.bus.len(),
                    self.components.len()
                ),
            });
        }
        let expected = self.design_signature();
        if plan.signature != expected {
            return Err(SimError::PlanMismatch {
                reason: format!(
                    "plan signature {:#018x} != design signature {expected:#018x}",
                    plan.signature
                ),
            });
        }
        if plan.order.len() != plan.n_comps {
            return Err(SimError::PlanMismatch {
                reason: format!(
                    "plan orders {} components, expected {}",
                    plan.order.len(),
                    plan.n_comps
                ),
            });
        }
        for &(slot, driver) in &plan.links {
            if slot as usize >= self.bus.len()
                || (driver != u32::MAX && driver as usize >= self.components.len())
            {
                return Err(SimError::PlanMismatch {
                    reason: format!("plan link ({slot}, {driver}) is out of range"),
                });
            }
        }
        // Replay the recorded driver links (deduplicated by the bus)
        // so shared-signal promotion and plan-staleness accounting
        // behave exactly as they would after a local validation
        // settle.
        for &(slot, driver) in &plan.links {
            let d = if driver == u32::MAX {
                DRIVER_POKE
            } else {
                driver as usize
            };
            self.bus.note_driver(slot as usize, d);
        }
        let arena = SignalArena::build(&self.bus);
        let sched = CompiledSchedule::new(arena, plan.order.clone(), plan.rank_counts.clone());
        self.compiled = Some(ActivePlan {
            n_sigs: plan.n_sigs,
            n_comps: plan.n_comps,
            links: self.bus.driver_link_count(),
            sched: Ok(sched),
        });
        // Adopt the plan's lowered op streams when it carries a
        // complete, still-matching set — the warm simulator then skips
        // its own lowering pass entirely.
        if plan.lowered.len() == self.components.len() {
            let mut units = Vec::with_capacity(plan.lowered.len());
            let mut compatible = true;
            for (i, prog) in plan.lowered.iter().enumerate() {
                match prog {
                    Some(prog) => {
                        let ok = (*self.components[i])
                            .as_any()
                            .downcast_ref::<NetlistComponent>()
                            .is_some_and(|nc| prog.matches(nc));
                        if !ok {
                            compatible = false;
                            break;
                        }
                        units.push(Some(LoweredUnit {
                            prog: Arc::clone(prog),
                            scratch: LoweredScratch::new(prog),
                        }));
                    }
                    None => units.push(None),
                }
            }
            if compatible {
                self.lowered = units;
                self.lowered_ready = true;
            }
        }
        // A simulator already running lowered keeps that mode; anything
        // else lands on the classic compiled walk (the historical
        // contract of `install_plan`).
        if self.mode != SchedMode::Lowered {
            self.set_mode(SchedMode::Compiled);
        }
        if self.telemetry.on() {
            self.telemetry.plan_installs += 1;
            self.telemetry
                .note_once("compiled: schedule installed from a cached plan");
        }
        Ok(())
    }

    /// Rebuilds the component islands if the component set, signal set
    /// or discovered driver links changed since the last build.
    ///
    /// Islands are the connected components of the bipartite
    /// signal/component graph with an edge for every declared read
    /// (sensitivity) and every observed drive (driver links recorded
    /// by the bus). Two components in different islands can never
    /// touch the same signal in a pass, so their evaluation order is
    /// immaterial and they may run on different workers.
    fn maybe_rebuild_islands(&mut self) {
        let links = self.bus.driver_link_count();
        if self.islands.len() == self.components.len()
            && self.islands_links == links
            && self.islands_sigs == self.bus.len()
        {
            return;
        }
        let n_sig = self.bus.len();
        let n = self.components.len();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        fn union(parent: &mut [usize], a: usize, b: usize) {
            let ra = find(parent, a);
            let rb = find(parent, b);
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut parent: Vec<usize> = (0..n_sig + n).collect();
        for (s, ws) in self.watchers.iter().enumerate() {
            for &c in ws {
                union(&mut parent, s, n_sig + c);
            }
        }
        for s in 0..n_sig {
            for &d in self.bus.slot_drivers(s) {
                if d != DRIVER_POKE && d < n {
                    union(&mut parent, s, n_sig + d);
                }
            }
        }
        self.islands = (0..n).map(|i| find(&mut parent, n_sig + i)).collect();
        self.islands_links = links;
        self.islands_sigs = n_sig;
    }

    /// Builds the non-convergence report from the last pass's dirty set.
    fn no_convergence(&self) -> SimError {
        let oscillating = self
            .bus
            .dirty_slots()
            .iter()
            .take(OSCILLATION_REPORT_CAP)
            .map(|&slot| {
                let name = self
                    .bus
                    .name(SignalId(slot))
                    .unwrap_or("<unknown>")
                    .to_owned();
                let driver = match self.bus.last_changer(slot) {
                    DRIVER_POKE => "testbench".to_owned(),
                    i => self
                        .components
                        .get(i)
                        .map_or_else(|| format!("component #{i}"), |c| c.name().to_owned()),
                };
                format!("`{name}` (last driven by `{driver}`)")
            })
            .collect();
        SimError::NoConvergence {
            limit: DELTA_LIMIT,
            oscillating,
        }
    }

    /// Rebuilds the sensitivity tables if stale, validating every
    /// declared signal id.
    fn ensure_tables(&mut self) -> Result<(), SimError> {
        if self.tables_ready {
            return Ok(());
        }
        self.watchers = vec![Vec::new(); self.bus.len()];
        self.always.clear();
        self.clocked.clear();
        self.has_always = false;
        self.promoted.resize(self.components.len(), false);
        for (i, c) in self.components.iter().enumerate() {
            match c.sensitivity() {
                Sensitivity::Always => {
                    self.always.push(i);
                    self.has_always = true;
                }
                Sensitivity::Signals(mut signals) => {
                    if self.promoted[i] {
                        self.always.push(i);
                    }
                    // Dedup the declared list up front; the watcher
                    // vectors then never need a linear containment
                    // scan, which was quadratic on high-fan-in
                    // components.
                    signals.sort_unstable();
                    signals.dedup();
                    for s in signals {
                        self.watchers
                            .get_mut(s.index())
                            .ok_or(SimError::UnknownSignal { index: s.index() })?
                            .push(i);
                    }
                }
            }
            if c.is_clocked() {
                self.clocked.push(i);
            }
        }
        self.tables_ready = true;
        // The table rebuild means components (and thus driver links)
        // may have changed: force a fresh island partition and require
        // a sequential validation settle before going parallel.
        self.islands.clear();
        self.islands_validated = false;
        Ok(())
    }

    /// Executes one full clock cycle: settle, then clock edge.
    ///
    /// # Errors
    ///
    /// Propagates settle and component errors.
    pub fn step(&mut self) -> Result<(), SimError> {
        let telemetry_on = self.telemetry.on();
        let step_t0 = self.telemetry.timed().then(|| self.telemetry.now_ns());
        if telemetry_on {
            self.telemetry.steps += 1;
        }
        self.ensure_domains()?;
        // A step where every domain presents an edge takes the exact
        // historical tick path; a single-rate design (all periods 1)
        // always does, so the multi-domain machinery costs it nothing.
        let all_fire = self.single_rate || self.domains.iter().all(|d| d.fires_at(self.cycle));
        let firing_names: Vec<String> = if all_fire {
            Vec::new()
        } else {
            self.domains
                .iter()
                .filter(|d| d.fires_at(self.cycle))
                .map(|d| d.name.clone())
                .collect()
        };
        let firing: Vec<&str> = firing_names.iter().map(String::as_str).collect();
        self.settle()?;
        // Track tick-phase drives on a clean pass so their watchers can
        // be woken (no in-repo tick drives signals, but the contract
        // allows it).
        self.bus.begin_pass();
        match self.mode {
            SchedMode::FullSweep => {
                for (i, c) in self.components.iter_mut().enumerate() {
                    self.bus.set_driver(i);
                    if all_fire {
                        c.tick(&mut self.bus)?;
                    } else {
                        c.tick_domains(&mut self.bus, &firing)?;
                    }
                }
            }
            SchedMode::EventDriven
            | SchedMode::Parallel { .. }
            | SchedMode::Compiled
            | SchedMode::Lowered => {
                for idx in 0..self.clocked.len() {
                    let i = self.clocked[idx];
                    self.bus.set_driver(i);
                    if all_fire {
                        self.components[i].tick(&mut self.bus)?;
                    } else {
                        self.components[i].tick_domains(&mut self.bus, &firing)?;
                    }
                }
                // The edge changed registered state: wake every clocked
                // component, plus watchers of anything tick drove.
                self.seeds.extend_from_slice(&self.clocked);
                for slot in self.bus.dirty_slots() {
                    self.seeds.extend_from_slice(&self.watchers[slot]);
                }
                // Keep the compiled arena coherent incrementally: a
                // tick is allowed to drive signals directly on the
                // bus, and reloading the whole arena every cycle would
                // cost more than the compiled walk saves.
                if matches!(self.mode, SchedMode::Compiled | SchedMode::Lowered) {
                    if let Some(Ok(sched)) = self.compiled.as_mut().map(|p| p.sched.as_mut()) {
                        if !sched.arena_stale {
                            for slot in self.bus.dirty_slots() {
                                let v = self.bus.read(SignalId(slot))?;
                                sched.arena.set(slot, v);
                            }
                        }
                    }
                }
                // A clock edge advanced every clocked interpreter's
                // sequential state, which a lowered program's input
                // memo cannot see: force those op streams to re-run.
                // On a partial-firing multi-rate step the memos are
                // surrendered even for components whose domains sat
                // out — the honest cost of domain filtering, surfaced
                // as a fallback cause rather than hidden.
                if self.mode == SchedMode::Lowered {
                    if !all_fire && telemetry_on {
                        self.telemetry.record_cause(FallbackCause::MultiDomain);
                    }
                    for idx in 0..self.clocked.len() {
                        let i = self.clocked[idx];
                        if let Some(unit) = self.lowered.get_mut(i).and_then(Option::as_mut) {
                            unit.scratch.dirty = true;
                        }
                    }
                }
            }
        }
        self.bus.set_driver(DRIVER_POKE);
        if telemetry_on {
            // The clock edge's drives land on their own pass; count the
            // settled changes before the post-edge settle resets the
            // dirty tracking. Tick order is identical in every mode, so
            // these toggles stay mode-identical too.
            self.bus.count_pass_toggles();
        }
        self.cycle += 1;
        // Settle again so post-edge outputs are observable immediately.
        let res = self.settle();
        if let Some(t0) = step_t0 {
            self.telemetry.push_span(TraceEvent {
                name: format!("cycle {}", self.cycle),
                cat: "step",
                ts_ns: t0,
                dur_ns: self.telemetry.now_ns().saturating_sub(t0),
                tid: 0,
            });
        }
        res
    }

    /// Executes `n` clock cycles.
    ///
    /// # Errors
    ///
    /// Propagates the first error; earlier cycles remain applied.
    pub fn run(&mut self, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Runs until `predicate` returns `true` (checked after each cycle)
    /// or `max_cycles` elapse. Returns `true` if the predicate fired.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut predicate: impl FnMut(&SignalBus) -> bool,
    ) -> Result<bool, SimError> {
        for _ in 0..max_cycles {
            self.step()?;
            if predicate(&self.bus) {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// Builder-style construction of a [`Simulator`].
///
/// Registers signals, components and initial pokes up front, then
/// [`SimBuilder::build`] freezes the event scheduler's sensitivity
/// tables once, validates every declared sensitivity against the
/// signal set, and applies power-on reset — so the returned simulator
/// never rebuilds tables mid-run.
///
/// ```
/// use hdp_sim::{SimBuilder, devices::FifoCore};
///
/// # fn main() -> Result<(), hdp_sim::SimError> {
/// let mut b = SimBuilder::new();
/// let push = b.signal("push", 1)?;
/// let pop = b.signal("pop", 1)?;
/// let wdata = b.signal("wdata", 8)?;
/// let rdata = b.signal("rdata", 8)?;
/// let empty = b.signal("empty", 1)?;
/// let full = b.signal("full", 1)?;
/// b.component(FifoCore::new("u_fifo", 4, 8, push, pop, wdata, rdata, empty, full));
/// b.poke(push, 0)?;
/// b.poke(pop, 0)?;
/// b.poke(wdata, 0)?;
/// let mut sim = b.build()?; // tables frozen, reset applied
/// assert_eq!(sim.peek(empty)?.to_u64(), Some(1));
/// sim.step()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SimBuilder {
    sim: Simulator,
}

impl SimBuilder {
    /// Starts an empty builder (event-driven mode).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts an empty builder with an explicit scheduling mode.
    #[must_use]
    pub fn with_mode(mode: SchedMode) -> Self {
        SimBuilder {
            sim: Simulator::with_mode(mode),
        }
    }

    /// Declares a signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateSignal`] or a width error.
    pub fn signal(&mut self, name: impl Into<String>, width: usize) -> Result<SignalId, SimError> {
        self.sim.add_signal(name, width)
    }

    /// Registers a component.
    pub fn component(&mut self, component: impl Component + Send + 'static) -> ComponentId {
        self.sim.add_component(component)
    }

    /// Switches to [`SchedMode::Parallel`] with `n` worker threads
    /// (`n <= 1` keeps parallel mode but degenerates to sequential
    /// wave evaluation).
    pub fn threads(&mut self, n: usize) -> &mut Self {
        self.sim.mode = SchedMode::Parallel { threads: n.max(1) };
        self
    }

    /// Switches to [`SchedMode::Compiled`]: after the power-on settle
    /// in [`SimBuilder::build`], the design is frozen into a levelized
    /// rank schedule over a bit-packed signal arena, falling back to
    /// event-driven evaluation wherever that is unsafe.
    pub fn compiled(&mut self) -> &mut Self {
        self.sim.mode = SchedMode::Compiled;
        self
    }

    /// Enables telemetry at `level` from the very first settle (the
    /// power-on reset in [`SimBuilder::build`] is already counted).
    pub fn telemetry(&mut self, level: TelemetryLevel) -> &mut Self {
        self.sim.set_telemetry(level);
        self
    }

    /// Sets an initial testbench drive, applied from the first settle.
    ///
    /// # Errors
    ///
    /// Returns width or unknown-signal errors.
    pub fn poke(&mut self, id: SignalId, value: u64) -> Result<(), SimError> {
        self.sim.poke(id, value)
    }

    /// Sets an initial testbench drive with an arbitrary logic value.
    ///
    /// # Errors
    ///
    /// Returns width or unknown-signal errors.
    pub fn poke_vector(&mut self, id: SignalId, value: LogicVector) -> Result<(), SimError> {
        self.sim.poke_vector(id, value)
    }

    /// Freezes the sensitivity tables, validates them, applies
    /// power-on reset and returns the ready simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] if a component declared
    /// sensitivity to a signal that does not exist, plus any reset or
    /// settle error.
    pub fn build(mut self) -> Result<Simulator, SimError> {
        self.sim.ensure_tables()?;
        self.sim.reset()?;
        Ok(self.sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BusAccess;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// The scheduling modes every semantics test must agree across.
    const ALL_MODES: [SchedMode; 6] = [
        SchedMode::EventDriven,
        SchedMode::FullSweep,
        SchedMode::Parallel { threads: 1 },
        SchedMode::Parallel { threads: 4 },
        SchedMode::Compiled,
        SchedMode::Lowered,
    ];

    /// A register: q <= d on every edge.
    struct Reg {
        name: String,
        d: SignalId,
        q: SignalId,
        state: u64,
    }

    impl Component for Reg {
        fn name(&self) -> &str {
            &self.name
        }
        fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
            bus.drive_u64(self.q, self.state)
        }
        fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
            self.state = bus.read_u64(self.d, &self.name)?;
            Ok(())
        }
        fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
            self.state = 0;
            Ok(())
        }
        fn sensitivity(&self) -> Sensitivity {
            Sensitivity::Signals(vec![])
        }
    }

    /// Combinational +1.
    struct Inc {
        name: String,
        a: SignalId,
        y: SignalId,
        evals: Option<Arc<AtomicUsize>>,
    }

    impl Component for Inc {
        fn name(&self) -> &str {
            &self.name
        }
        fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
            if let Some(evals) = &self.evals {
                evals.fetch_add(1, Ordering::Relaxed);
            }
            let a = bus.read(self.a)?;
            if let Some(v) = a.to_u64() {
                bus.drive_u64(self.y, (v + 1) & 0xFF)?;
            }
            Ok(())
        }
        fn tick(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
            Ok(())
        }
        fn sensitivity(&self) -> Sensitivity {
            Sensitivity::Signals(vec![self.a])
        }
        fn is_clocked(&self) -> bool {
            false
        }
    }

    fn counter_sim(mode: SchedMode) -> (Simulator, SignalId) {
        let mut sim = Simulator::with_mode(mode);
        let q = sim.add_signal("q", 8).unwrap();
        let d = sim.add_signal("d", 8).unwrap();
        sim.add_component(Reg {
            name: "r".into(),
            d,
            q,
            state: 0,
        });
        sim.add_component(Inc {
            name: "i".into(),
            a: q,
            y: d,
            evals: None,
        });
        sim.reset().unwrap();
        (sim, q)
    }

    #[test]
    fn counter_from_reg_and_inc() {
        // q -> inc -> d -> reg -> q : a classic counter loop broken by
        // the register.
        for mode in ALL_MODES {
            let (mut sim, q) = counter_sim(mode);
            assert_eq!(sim.peek(q).unwrap().to_u64(), Some(0));
            sim.run(5).unwrap();
            assert_eq!(sim.peek(q).unwrap().to_u64(), Some(5));
            assert_eq!(sim.cycle(), 5);
        }
    }

    #[test]
    fn poke_persists_across_cycles() {
        for mode in ALL_MODES {
            let mut sim = Simulator::with_mode(mode);
            let d = sim.add_signal("d", 8).unwrap();
            let q = sim.add_signal("q", 8).unwrap();
            sim.add_component(Reg {
                name: "r".into(),
                d,
                q,
                state: 0,
            });
            sim.reset().unwrap();
            sim.poke(d, 42).unwrap();
            sim.run(3).unwrap();
            assert_eq!(sim.peek(q).unwrap().to_u64(), Some(42));
        }
    }

    #[test]
    fn zero_delay_loop_is_detected() {
        // Two combinational inverters in a loop: y = x+1, x = y+1 never
        // converges.
        for mode in ALL_MODES {
            let mut sim2 = Simulator::with_mode(mode);
            let x2 = sim2.add_signal("x", 8).unwrap();
            let y2 = sim2.add_signal("y", 8).unwrap();
            sim2.add_component(Inc {
                name: "a".into(),
                a: x2,
                y: y2,
                evals: None,
            });
            sim2.add_component(Inc {
                name: "b".into(),
                a: y2,
                y: x2,
                evals: None,
            });
            // Seed the loop with a defined value so it oscillates.
            sim2.poke(x2, 0).unwrap();
            sim2.settle().ok(); // poked variant may resolve to X, that's fine
            sim2.unpoke(x2);
            let err = sim2.settle();
            // Either the loop oscillates (NoConvergence) or collapses to X
            // (converged); both are acceptable outcomes for an illegal
            // netlist, but an infinite hang is not. The poked case must not
            // hang either.
            match err {
                Ok(()) | Err(SimError::NoConvergence { .. }) => {}
                Err(other) => panic!("unexpected error {other}"),
            }
        }
    }

    #[test]
    fn no_convergence_report_names_loop_signals() {
        // An unambiguous oscillator: y = x+1 and x = y+1 with defined
        // seed values and no poke interference after the first settle.
        let mut sim = Simulator::new();
        let x = sim.add_signal("x", 8).unwrap();
        let y = sim.add_signal("y", 8).unwrap();
        sim.add_component(Inc {
            name: "a".into(),
            a: x,
            y,
            evals: None,
        });
        sim.add_component(Inc {
            name: "b".into(),
            a: y,
            y: x,
            evals: None,
        });
        sim.poke(x, 0).unwrap();
        sim.settle().ok();
        sim.unpoke(x);
        if let Err(SimError::NoConvergence { oscillating, .. }) = sim.settle() {
            assert!(!oscillating.is_empty(), "report must name signals");
            let text = oscillating.join(", ");
            assert!(
                text.contains("`x`") || text.contains("`y`"),
                "report names the loop wires: {text}"
            );
            assert!(
                text.contains("`a`") || text.contains("`b`"),
                "report names the drivers: {text}"
            );
        }
    }

    #[test]
    fn run_until_fires_predicate() {
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 8).unwrap();
        let d = sim.add_signal("d", 8).unwrap();
        sim.add_component(Reg {
            name: "r".into(),
            d,
            q,
            state: 0,
        });
        sim.add_component(Inc {
            name: "i".into(),
            a: q,
            y: d,
            evals: None,
        });
        sim.reset().unwrap();
        let hit = sim
            .run_until(100, |bus| bus.read(q).unwrap().to_u64() == Some(10))
            .unwrap();
        assert!(hit);
        assert_eq!(sim.cycle(), 10);
    }

    #[test]
    fn run_until_gives_up() {
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 8).unwrap();
        sim.poke(q, 0).unwrap();
        let hit = sim
            .run_until(5, |bus| bus.read(q).unwrap().to_u64() == Some(1))
            .unwrap();
        assert!(!hit);
    }

    #[test]
    fn event_mode_skips_unaffected_components() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 8).unwrap();
        let y = sim.add_signal("y", 8).unwrap();
        let evals = Arc::new(AtomicUsize::new(0));
        sim.add_component(Inc {
            name: "i".into(),
            a,
            y,
            evals: Some(Arc::clone(&evals)),
        });
        sim.poke(a, 1).unwrap();
        sim.reset().unwrap();
        let after_reset = evals.load(Ordering::Relaxed);
        assert!(after_reset >= 1, "reset evaluates everything once");
        // Nothing the component is sensitive to changes across idle
        // cycles, and it is not clocked: zero further evaluations.
        sim.run(10).unwrap();
        assert_eq!(
            evals.load(Ordering::Relaxed),
            after_reset,
            "idle cycles must not re-eval"
        );
        // A poke on the watched signal wakes it again.
        sim.poke(a, 7).unwrap();
        sim.settle().unwrap();
        assert!(evals.load(Ordering::Relaxed) > after_reset);
        assert_eq!(sim.peek(y).unwrap().to_u64(), Some(8));
    }

    #[test]
    fn shared_signal_promotes_both_drivers() {
        /// Drives `bus_sig` with `value` while `sel == me`, else `Z`.
        struct TriState {
            name: String,
            sel: SignalId,
            bus_sig: SignalId,
            me: u64,
            value: u64,
        }
        impl Component for TriState {
            fn name(&self) -> &str {
                &self.name
            }
            fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
                if bus.read(self.sel)?.to_u64() == Some(self.me) {
                    bus.drive_u64(self.bus_sig, self.value)
                } else {
                    bus.drive(
                        self.bus_sig,
                        LogicVector::high_z(8).map_err(SimError::from)?,
                    )
                }
            }
            fn tick(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
                Ok(())
            }
            fn sensitivity(&self) -> Sensitivity {
                Sensitivity::Signals(vec![self.sel])
            }
            fn is_clocked(&self) -> bool {
                false
            }
        }
        for mode in ALL_MODES {
            let mut sim = Simulator::with_mode(mode);
            let sel = sim.add_signal("sel", 1).unwrap();
            let shared = sim.add_signal("shared", 8).unwrap();
            sim.add_component(TriState {
                name: "t0".into(),
                sel,
                bus_sig: shared,
                me: 0,
                value: 0x11,
            });
            sim.add_component(TriState {
                name: "t1".into(),
                sel,
                bus_sig: shared,
                me: 1,
                value: 0x22,
            });
            sim.poke(sel, 0).unwrap();
            sim.reset().unwrap();
            assert_eq!(sim.peek(shared).unwrap().to_u64(), Some(0x11));
            sim.poke(sel, 1).unwrap();
            sim.settle().unwrap();
            assert_eq!(sim.peek(shared).unwrap().to_u64(), Some(0x22));
            sim.poke(sel, 0).unwrap();
            sim.settle().unwrap();
            assert_eq!(sim.peek(shared).unwrap().to_u64(), Some(0x11));
        }
    }

    #[test]
    fn builder_freezes_tables_and_resets() {
        let mut b = SimBuilder::new();
        let q = b.signal("q", 8).unwrap();
        let d = b.signal("d", 8).unwrap();
        b.component(Reg {
            name: "r".into(),
            d,
            q,
            state: 3,
        });
        b.component(Inc {
            name: "i".into(),
            a: q,
            y: d,
            evals: None,
        });
        let mut sim = b.build().unwrap();
        // Reset applied by build: register state cleared and settled.
        assert_eq!(sim.peek(q).unwrap().to_u64(), Some(0));
        sim.run(4).unwrap();
        assert_eq!(sim.peek(q).unwrap().to_u64(), Some(4));
    }

    #[test]
    fn builder_rejects_unknown_sensitivity_signal() {
        struct Liar {
            bogus: SignalId,
        }
        impl Component for Liar {
            fn name(&self) -> &str {
                "liar"
            }
            fn eval(&mut self, _bus: &mut dyn BusAccess) -> Result<(), SimError> {
                Ok(())
            }
            fn tick(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
                Ok(())
            }
            fn sensitivity(&self) -> Sensitivity {
                Sensitivity::Signals(vec![self.bogus])
            }
        }
        let mut b = SimBuilder::new();
        b.component(Liar {
            bogus: SignalId(99),
        });
        assert!(matches!(
            b.build(),
            Err(SimError::UnknownSignal { index: 99 })
        ));
    }

    #[test]
    fn mode_switch_mid_run_stays_consistent() {
        let (mut sim, q) = counter_sim(SchedMode::EventDriven);
        sim.run(3).unwrap();
        sim.set_mode(SchedMode::FullSweep);
        sim.run(3).unwrap();
        sim.set_mode(SchedMode::parallel());
        sim.run(3).unwrap();
        sim.set_mode(SchedMode::Compiled);
        sim.run(3).unwrap();
        sim.set_mode(SchedMode::Lowered);
        sim.run(3).unwrap();
        sim.set_mode(SchedMode::EventDriven);
        sim.run(3).unwrap();
        assert_eq!(sim.peek(q).unwrap().to_u64(), Some(18));
    }

    /// Builds `n` independent counters (islands) in one simulator.
    fn multi_counter_sim(mode: SchedMode, n: usize) -> (Simulator, Vec<SignalId>) {
        let mut sim = Simulator::with_mode(mode);
        let mut qs = Vec::new();
        for k in 0..n {
            let q = sim.add_signal(format!("q{k}"), 8).unwrap();
            let d = sim.add_signal(format!("d{k}"), 8).unwrap();
            sim.add_component(Reg {
                name: format!("r{k}"),
                d,
                q,
                state: 0,
            });
            sim.add_component(Inc {
                name: format!("i{k}"),
                a: q,
                y: d,
                evals: None,
            });
            qs.push(q);
        }
        sim.reset().unwrap();
        (sim, qs)
    }

    #[test]
    fn parallel_multi_island_matches_event_driven() {
        let (mut reference, ref_qs) = multi_counter_sim(SchedMode::EventDriven, 6);
        reference.run(10).unwrap();
        for threads in [1, 2, 3, 8] {
            let (mut sim, qs) = multi_counter_sim(SchedMode::Parallel { threads }, 6);
            sim.run(10).unwrap();
            for (q, rq) in qs.iter().zip(&ref_qs) {
                assert_eq!(
                    sim.peek(*q).unwrap(),
                    reference.peek(*rq).unwrap(),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_partitions_independent_counters_into_islands() {
        let (mut sim, qs) = multi_counter_sim(SchedMode::Parallel { threads: 4 }, 5);
        // Force the partition to exist (it is built lazily at the first
        // parallel wave, after the sequential validation settle).
        sim.run(2).unwrap();
        sim.maybe_rebuild_islands();
        let distinct: std::collections::HashSet<usize> = sim.islands.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            5,
            "five independent counters -> five islands"
        );
        assert_eq!(sim.peek(qs[0]).unwrap().to_u64(), Some(2));
    }

    #[test]
    fn parallel_falls_back_with_always_components() {
        struct Sweeper {
            y: SignalId,
        }
        impl Component for Sweeper {
            fn name(&self) -> &str {
                "sweeper"
            }
            fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
                bus.drive_u64(self.y, 1)
            }
            fn tick(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
                Ok(())
            }
        }
        let mut sim = Simulator::with_mode(SchedMode::Parallel { threads: 4 });
        let y = sim.add_signal("y", 1).unwrap();
        sim.add_component(Sweeper { y });
        sim.reset().unwrap();
        sim.run(3).unwrap();
        assert_eq!(sim.peek(y).unwrap().to_u64(), Some(1));
        assert!(sim.has_always, "Always component must disable partitioning");
        assert!(!sim.islands_validated);
    }

    #[test]
    fn parallel_component_error_is_reported() {
        struct Faulty {
            in_sig: SignalId,
        }
        impl Component for Faulty {
            fn name(&self) -> &str {
                "faulty"
            }
            fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
                // Reads an X signal as an integer: protocol error.
                bus.read_u64(self.in_sig, "faulty")?;
                Ok(())
            }
            fn tick(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
                Ok(())
            }
            fn sensitivity(&self) -> Sensitivity {
                Sensitivity::Signals(vec![self.in_sig])
            }
            fn is_clocked(&self) -> bool {
                false
            }
        }
        let mut sim = Simulator::with_mode(SchedMode::Parallel { threads: 2 });
        let x = sim.add_signal("x", 4).unwrap();
        sim.add_component(Faulty { in_sig: x });
        assert!(matches!(sim.reset(), Err(SimError::Protocol { .. })));
    }

    #[test]
    fn default_threads_respects_env_floor() {
        // Cannot set the env var here without racing other tests; just
        // pin the invariants of the fallback path.
        let n = default_threads();
        assert!((1..=64).contains(&n));
    }

    #[test]
    fn builder_threads_sets_parallel_mode() {
        let mut b = SimBuilder::new();
        let q = b.signal("q", 8).unwrap();
        let d = b.signal("d", 8).unwrap();
        b.component(Reg {
            name: "r".into(),
            d,
            q,
            state: 0,
        });
        b.component(Inc {
            name: "i".into(),
            a: q,
            y: d,
            evals: None,
        });
        b.threads(3);
        let mut sim = b.build().unwrap();
        assert_eq!(sim.mode(), SchedMode::Parallel { threads: 3 });
        sim.run(7).unwrap();
        assert_eq!(sim.peek(q).unwrap().to_u64(), Some(7));
    }

    #[test]
    fn debug_format_mentions_counts() {
        let sim = Simulator::new();
        assert!(format!("{sim:?}").contains("components"));
    }

    /// `y = a + 1` while `sel` is 1, else `y = 0`: a quiescent
    /// component that becomes half of a zero-delay oscillator when
    /// enabled. Two of these back to back oscillate forever.
    struct GatedInc {
        name: String,
        sel: SignalId,
        a: SignalId,
        y: SignalId,
    }

    impl Component for GatedInc {
        fn name(&self) -> &str {
            &self.name
        }
        fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
            if bus.read(self.sel)?.to_u64() == Some(1) {
                let a = bus.read(self.a)?.to_u64().unwrap_or(0);
                bus.drive_u64(self.y, (a + 1) & 0xFF)
            } else {
                bus.drive_u64(self.y, 0)
            }
        }
        fn tick(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
            Ok(())
        }
        fn sensitivity(&self) -> Sensitivity {
            Sensitivity::Signals(vec![self.sel, self.a])
        }
        fn is_clocked(&self) -> bool {
            false
        }
    }

    /// `n` independent gated oscillator islands, quiescent (all `sel`
    /// poked to 0) and settled after reset.
    fn oscillator_farm(mode: SchedMode, n: usize) -> (Simulator, Vec<SignalId>) {
        let mut sim = Simulator::with_mode(mode);
        let mut sels = Vec::new();
        for k in 0..n {
            let sel = sim.add_signal(format!("sel{k}"), 1).unwrap();
            let x = sim.add_signal(format!("x{k}"), 8).unwrap();
            let y = sim.add_signal(format!("y{k}"), 8).unwrap();
            sim.add_component(GatedInc {
                name: format!("a{k}"),
                sel,
                a: x,
                y,
            });
            sim.add_component(GatedInc {
                name: format!("b{k}"),
                sel,
                a: y,
                y: x,
            });
            sim.poke(sel, 0).unwrap();
            sels.push(sel);
        }
        sim.reset().unwrap();
        (sim, sels)
    }

    #[test]
    fn no_convergence_report_identical_across_modes() {
        // Enough islands that parallel mode really fans out
        // (>= PARALLEL_WAKE_MIN woken components, > 1 island), then
        // enable every oscillator at once. The resulting
        // NoConvergence must name the same signals and drivers in
        // every mode: the report is built from the bus's dirty set,
        // and the commit replay keeps that bit-identical.
        let n = PARALLEL_WAKE_MIN;
        let mut reports = Vec::new();
        for mode in [
            SchedMode::EventDriven,
            SchedMode::FullSweep,
            SchedMode::Parallel { threads: 2 },
            SchedMode::Parallel { threads: 4 },
            SchedMode::Compiled,
            SchedMode::Lowered,
        ] {
            let (mut sim, sels) = oscillator_farm(mode, n);
            for sel in &sels {
                sim.poke(*sel, 1).unwrap();
            }
            let err = sim.settle().unwrap_err();
            assert!(
                matches!(err, SimError::NoConvergence { .. }),
                "{mode:?}: expected NoConvergence, got {err}"
            );
            reports.push((mode, err));
        }
        let (ref_mode, reference) = &reports[0];
        for (mode, err) in &reports[1..] {
            assert_eq!(
                err, reference,
                "{mode:?} must report the same oscillation as {ref_mode:?}"
            );
        }
    }

    #[test]
    fn no_convergence_forensics_capture_wake_sets() {
        let (mut sim, sels) = oscillator_farm(SchedMode::EventDriven, 2);
        sim.set_telemetry(TelemetryLevel::Counters);
        for sel in &sels {
            sim.poke(*sel, 1).unwrap();
        }
        sim.settle().unwrap_err();
        let stats = sim.stats();
        assert_eq!(
            stats.last_wake_sets.len(),
            crate::telemetry::WAKE_FORENSICS_DEPTH
        );
        let last = stats.last_wake_sets.last().unwrap();
        assert!(
            last.iter()
                .any(|name| name.starts_with('a') || name.starts_with('b')),
            "forensics name the chasing components: {last:?}"
        );
    }

    #[test]
    fn telemetry_off_leaves_stats_empty() {
        let (mut sim, _) = counter_sim(SchedMode::EventDriven);
        sim.run(20).unwrap();
        assert_eq!(sim.telemetry_level(), TelemetryLevel::Off);
        let stats = sim.stats();
        assert!(stats.is_empty());
        assert_eq!(stats, SimStats::default());
    }

    #[test]
    fn telemetry_counters_accumulate() {
        let (mut sim, _) = counter_sim(SchedMode::EventDriven);
        sim.set_telemetry(TelemetryLevel::Counters);
        sim.run(10).unwrap();
        let stats = sim.stats();
        assert_eq!(stats.steps, 10);
        assert!(
            stats.settles >= 20,
            "two settles per step: {}",
            stats.settles
        );
        assert!(stats.passes >= stats.settles);
        assert!(stats.total_evals() > 0);
        assert!(stats.total_toggles() > 0, "a counter toggles every cycle");
        assert!(stats.max_wake >= 1);
        let report = stats.report();
        assert!(report.contains('r') && report.contains('i'), "{report}");
        // Counters level records no spans.
        assert!(stats.trace.is_empty());
        let r = &stats.components[0];
        assert_eq!(r.name, "r");
        assert!(r.evals > 0);
        assert_eq!(r.eval_ns, 0, "no clock reads below Full");
    }

    #[test]
    fn telemetry_eval_counts_identical_event_vs_parallel() {
        let runs: Vec<SimStats> = [
            SchedMode::EventDriven,
            SchedMode::Parallel { threads: 1 },
            SchedMode::Parallel { threads: 2 },
            SchedMode::Parallel { threads: 8 },
        ]
        .into_iter()
        .map(|mode| {
            let (mut sim, _) = multi_counter_sim(mode, 8);
            sim.set_telemetry(TelemetryLevel::Counters);
            sim.run(25).unwrap();
            sim.stats()
        })
        .collect();
        let reference = &runs[0];
        for stats in &runs[1..] {
            assert_eq!(stats.total_evals(), reference.total_evals());
            for (c, rc) in stats.components.iter().zip(&reference.components) {
                assert_eq!(
                    (c.name.as_str(), c.evals),
                    (rc.name.as_str(), rc.evals),
                    "per-component eval counts must match the event scheduler"
                );
            }
        }
    }

    #[test]
    fn telemetry_toggles_identical_across_all_modes() {
        let runs: Vec<SimStats> = [
            SchedMode::EventDriven,
            SchedMode::FullSweep,
            SchedMode::Parallel { threads: 4 },
        ]
        .into_iter()
        .map(|mode| {
            let (mut sim, _) = multi_counter_sim(mode, 8);
            sim.set_telemetry(TelemetryLevel::Counters);
            sim.run(25).unwrap();
            sim.stats()
        })
        .collect();
        let reference = &runs[0];
        for stats in &runs[1..] {
            assert_eq!(stats.total_toggles(), reference.total_toggles());
            for (s, rs) in stats.signals.iter().zip(&reference.signals) {
                assert_eq!(
                    (s.name.as_str(), s.toggles),
                    (rs.name.as_str(), rs.toggles),
                    "settled toggle activity is mode-invariant"
                );
            }
        }
        // Drive counts are eval-proportional: identical between the
        // event scheduler and parallel commit replay, strictly higher
        // under the full sweep (every component re-drives every pass).
        let (event, sweep, parallel) = (&runs[0], &runs[1], &runs[2]);
        assert_eq!(event.total_drives(), parallel.total_drives());
        assert!(sweep.total_drives() > event.total_drives());
    }

    #[test]
    fn telemetry_full_records_spans() {
        let (mut sim, _) = multi_counter_sim(SchedMode::Parallel { threads: 2 }, 8);
        sim.set_telemetry(TelemetryLevel::Full);
        sim.run(5).unwrap();
        let stats = sim.stats();
        assert!(!stats.trace.is_empty());
        let cats: std::collections::HashSet<&str> = stats.trace.iter().map(|ev| ev.cat).collect();
        assert!(cats.contains("step"), "{cats:?}");
        assert!(cats.contains("eval"), "{cats:?}");
        assert!(
            stats.components.iter().any(|c| c.eval_ns > 0),
            "Full level accumulates eval time"
        );
        let json = stats.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Parallel shape counters: 8 islands of 2 components, waves
        // fanned out across workers.
        assert_eq!(stats.island_sizes, vec![2; 8]);
        assert!(stats.parallel_waves > 0);
        assert!(stats.worker_evals.iter().sum::<u64>() > 0);
    }

    #[test]
    fn builder_telemetry_covers_reset() {
        let mut b = SimBuilder::new();
        let q = b.signal("q", 8).unwrap();
        let d = b.signal("d", 8).unwrap();
        b.component(Reg {
            name: "r".into(),
            d,
            q,
            state: 0,
        });
        b.component(Inc {
            name: "i".into(),
            a: q,
            y: d,
            evals: None,
        });
        b.telemetry(TelemetryLevel::Counters);
        let sim = b.build().unwrap();
        let stats = sim.stats();
        assert!(stats.settles > 0, "power-on reset settle is counted");
        assert!(stats.total_evals() > 0);
    }

    #[test]
    fn compile_levelizes_a_counter_and_reports_ranks() {
        let (mut sim, q) = counter_sim(SchedMode::Compiled);
        sim.set_telemetry(TelemetryLevel::Counters);
        assert!(sim.compile().unwrap(), "a registered counter levelizes");
        assert!(sim.compile_fallback_reason().is_none());
        sim.run(10).unwrap();
        assert_eq!(sim.peek(q).unwrap().to_u64(), Some(10));
        let stats = sim.stats();
        assert!(stats.compiled_settles > 0, "settles use the rank walk");
        // Reg (reads nothing) at rank 0, Inc (reads q) at rank 1.
        assert_eq!(stats.compiled_ranks, vec![1, 1]);
        assert!(
            stats.notes.is_empty(),
            "no fallback notes: {:?}",
            stats.notes
        );
        assert!(stats.report().contains("rank-walk settles"));
    }

    #[test]
    fn compiled_falls_back_permanently_on_combinational_cycle() {
        // The gated oscillator pair is a static cycle (a reads x and
        // drives y; b reads y and drives x) even while quiescent.
        let (mut sim, sels) = oscillator_farm(SchedMode::Compiled, 1);
        sim.set_telemetry(TelemetryLevel::Counters);
        assert!(!sim.compile().unwrap(), "a static cycle cannot levelize");
        let reason = sim.compile_fallback_reason().unwrap();
        assert!(reason.contains("combinational cycle"), "{reason}");
        // The fallback is transparent: runs keep working and results
        // are bit-identical to a plain event-driven simulation.
        let (mut reference, ref_sels) = oscillator_farm(SchedMode::EventDriven, 1);
        sim.run(5).unwrap();
        reference.run(5).unwrap();
        assert_eq!(
            sim.peek(sels[0]).unwrap(),
            reference.peek(ref_sels[0]).unwrap()
        );
        let stats = sim.stats();
        assert_eq!(stats.compiled_settles, 0, "no rank walks ever ran");
        assert!(stats.fallback_settles > 0);
        assert!(
            stats
                .notes
                .iter()
                .any(|n| n.contains("permanently falling back")),
            "stats must surface the reason: {:?}",
            stats.notes
        );
    }

    #[test]
    fn compiled_falls_back_permanently_on_always_sensitivity() {
        struct Sweeper {
            y: SignalId,
        }
        impl Component for Sweeper {
            fn name(&self) -> &str {
                "sweeper"
            }
            fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
                bus.drive_u64(self.y, 1)
            }
            fn tick(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
                Ok(())
            }
            // Default sensitivity: Sensitivity::Always.
        }
        let mut sim = Simulator::with_mode(SchedMode::Compiled);
        let y = sim.add_signal("y", 1).unwrap();
        sim.add_component(Sweeper { y });
        sim.reset().unwrap();
        assert!(!sim.compile().unwrap());
        let reason = sim.compile_fallback_reason().unwrap();
        assert!(reason.contains("Sensitivity::Always"), "{reason}");
        assert!(reason.contains("sweeper"), "{reason}");
        sim.run(3).unwrap();
        assert_eq!(sim.peek(y).unwrap().to_u64(), Some(1));
    }

    #[test]
    fn compiled_rebuilds_after_new_driver_discovery() {
        /// Drives `y` only while `en` is high — invisible to the
        /// schedule build when constructed with `en` low, and with no
        /// `drives()` declaration to warn the levelizer.
        struct LateDriver {
            en: SignalId,
            y: SignalId,
        }
        impl Component for LateDriver {
            fn name(&self) -> &str {
                "late"
            }
            fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
                if bus.read(self.en)?.to_u64() == Some(1) {
                    bus.drive_u64(self.y, 1)?;
                }
                Ok(())
            }
            fn tick(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
                Ok(())
            }
            fn sensitivity(&self) -> Sensitivity {
                Sensitivity::Signals(vec![self.en])
            }
            fn is_clocked(&self) -> bool {
                false
            }
        }
        let mut sim = Simulator::with_mode(SchedMode::Compiled);
        let en = sim.add_signal("en", 1).unwrap();
        let y = sim.add_signal("y", 1).unwrap();
        sim.add_component(LateDriver { en, y });
        sim.poke(en, 0).unwrap();
        sim.set_telemetry(TelemetryLevel::Counters);
        sim.reset().unwrap();
        assert!(
            sim.compile().unwrap(),
            "levelizes while the drive is hidden"
        );
        // Enabling the driver mid-run invalidates the schedule: the
        // walk aborts without committing, the settle re-runs
        // event-driven, and the link is recorded for the rebuild.
        sim.poke(en, 1).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.peek(y).unwrap().to_u64(), Some(1));
        let notes = sim.stats().notes;
        assert!(
            notes.iter().any(|n| n.contains("newly discovered driver")),
            "{notes:?}"
        );
        // Next settle rebuilds the plan (event-driven), the one after
        // walks the rebuilt schedule.
        sim.settle().unwrap();
        let before = sim.stats().compiled_settles;
        sim.settle().unwrap();
        assert!(sim.stats().compiled_settles > before, "rank walks resume");
        assert!(sim.compile_fallback_reason().is_none());
    }

    #[test]
    fn compiled_vcd_trace_is_bit_identical_to_event_driven() {
        let render = |mode: SchedMode| -> String {
            let mut sim = Simulator::with_mode(mode);
            let q = sim.add_signal("q", 8).unwrap();
            let d = sim.add_signal("d", 8).unwrap();
            sim.add_component(Reg {
                name: "r".into(),
                d,
                q,
                state: 0,
            });
            sim.add_component(Inc {
                name: "i".into(),
                a: q,
                y: d,
                evals: None,
            });
            let rec = sim.add_component(crate::vcd::VcdRecorder::new("vcd", vec![q, d]));
            sim.reset().unwrap();
            if mode == SchedMode::Compiled {
                assert!(sim.compile().unwrap());
            }
            sim.run(8).unwrap();
            sim.component::<crate::vcd::VcdRecorder>(rec)
                .unwrap()
                .render(sim.bus())
        };
        assert_eq!(render(SchedMode::Compiled), render(SchedMode::EventDriven));
    }

    #[test]
    fn compiled_toggles_match_event_driven() {
        let runs: Vec<SimStats> = [SchedMode::EventDriven, SchedMode::Compiled]
            .into_iter()
            .map(|mode| {
                let (mut sim, _) = multi_counter_sim(mode, 8);
                sim.set_telemetry(TelemetryLevel::Counters);
                sim.run(25).unwrap();
                sim.stats()
            })
            .collect();
        let (reference, compiled) = (&runs[0], &runs[1]);
        assert_eq!(compiled.total_toggles(), reference.total_toggles());
        for (s, rs) in compiled.signals.iter().zip(&reference.signals) {
            assert_eq!(
                (s.name.as_str(), s.toggles),
                (rs.name.as_str(), rs.toggles),
                "settled toggle activity is mode-invariant"
            );
        }
    }

    /// The counter rig without reset, for plan-reuse tests that need
    /// two identically constructed simulators.
    fn unreset_counter_sim() -> (Simulator, SignalId) {
        let mut sim = Simulator::new();
        let q = sim.add_signal("q", 8).unwrap();
        let d = sim.add_signal("d", 8).unwrap();
        sim.add_component(Reg {
            name: "r".into(),
            d,
            q,
            state: 0,
        });
        sim.add_component(Inc {
            name: "i".into(),
            a: q,
            y: d,
            evals: None,
        });
        (sim, q)
    }

    #[test]
    fn design_signature_is_stable_and_structural() {
        let (a, _) = unreset_counter_sim();
        let (b, _) = unreset_counter_sim();
        assert_eq!(a.design_signature(), b.design_signature());
        assert_eq!(a.design_signature(), a.design_signature());
        // A structural difference (extra signal) changes the signature.
        let (mut c, _) = unreset_counter_sim();
        c.add_signal("extra", 1).unwrap();
        assert_ne!(a.design_signature(), c.design_signature());
    }

    #[test]
    fn exported_plan_installs_and_runs_bit_identically() {
        // Cold: compile locally, export the plan mid-run.
        let (mut cold, q_cold) = unreset_counter_sim();
        cold.set_telemetry(TelemetryLevel::Counters);
        cold.reset().unwrap();
        assert!(cold.compile().unwrap());
        let plan = cold.export_plan().expect("active schedule exports");
        assert_eq!(plan.components(), 2);
        assert!(!plan.rank_counts().is_empty());
        cold.run(9).unwrap();

        // Warm: same design, schedule installed instead of levelized.
        let (mut warm, q_warm) = unreset_counter_sim();
        warm.set_telemetry(TelemetryLevel::Counters);
        warm.install_plan(&plan).unwrap();
        assert_eq!(warm.mode(), SchedMode::Compiled);
        warm.reset().unwrap();
        warm.run(9).unwrap();
        assert_eq!(
            warm.peek(q_warm).unwrap(),
            cold.peek(q_cold).unwrap(),
            "installed plan settles bit-identically"
        );
        let stats = warm.stats();
        assert_eq!(stats.plan_installs, 1);
        assert!(
            stats.compiled_settles > 0,
            "the installed schedule actually ran compiled walks"
        );
        // The plan survives the whole run: exporting again round-trips.
        let again = warm.export_plan().expect("plan still active");
        assert_eq!(again.signature(), plan.signature());
    }

    #[test]
    fn install_plan_rejects_a_foreign_design() {
        let (mut donor, _) = unreset_counter_sim();
        donor.reset().unwrap();
        assert!(donor.compile().unwrap());
        let plan = donor.export_plan().unwrap();

        // Same shape, different signal width: signature mismatch.
        let mut other = Simulator::new();
        let q = other.add_signal("q", 4).unwrap();
        let d = other.add_signal("d", 4).unwrap();
        other.add_component(Reg {
            name: "r".into(),
            d,
            q,
            state: 0,
        });
        other.add_component(Inc {
            name: "i".into(),
            a: q,
            y: d,
            evals: None,
        });
        let err = other.install_plan(&plan).unwrap_err();
        assert!(matches!(err, SimError::PlanMismatch { .. }), "{err}");

        // Different shape entirely.
        let mut tiny = Simulator::new();
        tiny.add_signal("s", 1).unwrap();
        let err = tiny.install_plan(&plan).unwrap_err();
        assert!(err.to_string().contains("plan shape"), "{err}");
    }

    /// A counter that advances only when its declared domain fires.
    struct DomainReg {
        name: String,
        domain: ClockDomain,
        q: SignalId,
        state: u64,
    }

    impl Component for DomainReg {
        fn name(&self) -> &str {
            &self.name
        }
        fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
            bus.drive_u64(self.q, self.state)
        }
        fn tick(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
            self.state += 1;
            Ok(())
        }
        fn clock_domains(&self) -> Vec<ClockDomain> {
            vec![self.domain.clone()]
        }
        fn tick_domains(&mut self, bus: &mut SignalBus, firing: &[&str]) -> Result<(), SimError> {
            if firing.contains(&self.domain.name.as_str()) {
                self.tick(bus)
            } else {
                Ok(())
            }
        }
        fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
            self.state = 0;
            Ok(())
        }
        fn sensitivity(&self) -> Sensitivity {
            Sensitivity::Signals(vec![])
        }
    }

    #[test]
    fn multi_domain_interleaving_is_mode_identical() {
        let run = |mode: SchedMode| -> Vec<(u64, u64)> {
            let mut sim = Simulator::with_mode(mode);
            let qf = sim.add_signal("q_fast", 8).unwrap();
            let qs = sim.add_signal("q_slow", 8).unwrap();
            sim.add_component(DomainReg {
                name: "fast".into(),
                domain: ClockDomain::default_clock(),
                q: qf,
                state: 0,
            });
            sim.add_component(DomainReg {
                name: "slow".into(),
                domain: ClockDomain::new("slow", 3),
                q: qs,
                state: 0,
            });
            sim.reset().unwrap();
            let mut trace = Vec::new();
            for _ in 0..12 {
                sim.step().unwrap();
                trace.push((
                    sim.peek(qf).unwrap().to_u64().unwrap(),
                    sim.peek(qs).unwrap().to_u64().unwrap(),
                ));
            }
            trace
        };
        let reference = run(SchedMode::FullSweep);
        // `slow` fires at t = 0, 3, 6, 9 — four edges in twelve steps.
        assert_eq!(reference[11], (12, 4));
        for mode in ALL_MODES {
            assert_eq!(run(mode), reference, "{mode:?}");
        }
    }

    #[test]
    fn clock_domain_period_conflict_is_reported() {
        let mut sim = Simulator::new();
        let qa = sim.add_signal("qa", 8).unwrap();
        let qb = sim.add_signal("qb", 8).unwrap();
        sim.add_component(DomainReg {
            name: "a".into(),
            domain: ClockDomain::new("wr", 2),
            q: qa,
            state: 0,
        });
        sim.add_component(DomainReg {
            name: "b".into(),
            domain: ClockDomain::new("wr", 3),
            q: qb,
            state: 0,
        });
        let err = sim.step().unwrap_err();
        assert!(err.to_string().contains("wr"), "{err}");
    }

    #[test]
    fn simulator_level_domain_declarations_validate() {
        let mut sim = Simulator::new();
        assert!(sim.add_clock_domain("rd", 0).is_err());
        assert!(sim.add_clock_domain("clk", 2).is_err());
        sim.add_clock_domain("rd", 3).unwrap();
        sim.add_clock_domain("rd", 3).unwrap(); // same-period redeclare is fine
        assert!(sim.add_clock_domain("rd", 4).is_err());
        let domains = sim.clock_domains().unwrap().to_vec();
        assert_eq!(domains.len(), 2);
        assert_eq!(domains[1], ClockDomain::new("rd", 3));
    }

    #[test]
    fn extra_domain_changes_design_signature() {
        let (sim_a, _) = counter_sim(SchedMode::EventDriven);
        let (mut sim_b, _) = counter_sim(SchedMode::EventDriven);
        let base = sim_a.design_signature();
        assert_eq!(base, sim_b.design_signature());
        sim_b.add_clock_domain("rd", 2).unwrap();
        assert_ne!(base, sim_b.design_signature());
    }
}
