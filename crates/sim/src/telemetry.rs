//! Simulator telemetry: counters, activity profiles and trace export.
//!
//! The schedulers of [`crate::Simulator`] are instrumented with
//! lightweight counters that turn the simulator into a measuring
//! instrument: per-component evaluation counts and cumulative
//! evaluation time, per-settle delta-pass depth and wake-set sizes,
//! island/worker shapes under [`crate::SchedMode::Parallel`], and
//! per-signal toggle activity — the standard proxy for switching
//! power. Everything is gated on a [`TelemetryLevel`] carried as a
//! plain enum field: at [`TelemetryLevel::Off`] (the default) the hot
//! paths execute a single predicted-not-taken branch and touch no
//! counter memory, no clocks and no atomics.
//!
//! * [`TelemetryLevel::Counters`] — integer counters only. No clock
//!   reads; per-pass cost is a handful of increments proportional to
//!   activity.
//! * [`TelemetryLevel::Full`] — counters plus wall-clock spans
//!   (steps, settle passes, parallel waves, individual component
//!   evaluations), exportable as a Chrome trace-event JSON that loads
//!   in `chrome://tracing` and Perfetto.
//!
//! Snapshots are taken with [`crate::Simulator::stats`], which returns
//! a [`SimStats`]: a plain, serialisation-friendly struct with a
//! human-readable [`SimStats::report`] and a
//! [`SimStats::chrome_trace`] exporter.
//!
//! ## Cross-mode invariants
//!
//! Because every scheduling mode produces bit-identical signal traces,
//! the *settled toggle counts* ([`SignalStats::toggles`]) are
//! identical across `FullSweep`, `EventDriven` and `Parallel` at any
//! thread count. Component *eval counts* are identical between
//! `EventDriven` and `Parallel` (parallel waves are the event
//! scheduler's wake sets); `FullSweep` evaluates every component in
//! every pass by definition, so its eval counts are the upper bound
//! the event scheduler is measured against.
//!
//! [`crate::SchedMode::Compiled`] settles in a single rank walk, so it
//! has no delta passes to count per-pass activity against: each
//! compiled settle counts as one pass, toggles credit the *net*
//! per-settle value change (identical to the other modes except in
//! transient multi-pass oscillations that settle back to their
//! starting value), and eval/drive counts are lower by design — that
//! reduction is the mode's speedup, reported rather than hidden.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

/// How many passes of wake-set forensics are retained for
/// non-convergence diagnosis.
pub(crate) const WAKE_FORENSICS_DEPTH: usize = 4;

/// Soft cap on recorded trace events, so a long-running simulation at
/// [`TelemetryLevel::Full`] cannot grow without bound. Events beyond
/// the cap are dropped (and counted in [`SimStats::trace_dropped`]).
const TRACE_EVENT_CAP: usize = 1_000_000;

/// Why a settle (or a component's lowering) left its mode's fast path.
///
/// Every fallback the compiled, lowered and parallel schedulers take
/// is counted under exactly one of these causes — the typed,
/// aggregatable face of the free-text [`SimStats::notes`] strings,
/// which remain for human output. A service aggregating thousands of
/// jobs sums these counters per cause instead of string-matching
/// notes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FallbackCause {
    /// The compiled/lowered plan was missing or stale, so the settle
    /// ran event-driven to (re)discover driver links before freezing a
    /// schedule. Every compiled-mode simulator pays at least one.
    Rebuild,
    /// A full re-evaluation was pending (reset, mode switch, device
    /// mutation), which the event scheduler handles.
    WakeAll,
    /// The design cannot be levelized (combinational cycle or
    /// [`crate::Sensitivity::Always`]); every settle permanently falls
    /// back to event-driven evaluation.
    NonLevelizable,
    /// A compiled walk observed a `(signal, driver)` link the schedule
    /// was not built with; the settle re-ran event-driven and the
    /// schedule is rebuilt.
    StaleDriver,
    /// [`crate::SchedMode::Parallel`] ran a settle sequentially (one
    /// worker, undeclared reads, or an unvalidated island partition).
    ParallelSequential,
    /// A component kept its interpreted `eval` on the lowered rank
    /// walk because its netlist shape cannot lower to a word-level op
    /// stream (counted once per component per lowering pass).
    LoweredComponent,
    /// A multi-rate step fired only a subset of the clock domains, so
    /// the lowered fast path surrendered its input memos (every lowered
    /// clocked unit is re-marked dirty even though its own domain may
    /// not have ticked) — the event-driven-shaped cost multiple clock
    /// domains impose on the compiled/lowered schedulers.
    MultiDomain,
}

impl FallbackCause {
    /// Number of distinct causes (the length of [`FallbackCause::ALL`]).
    pub const COUNT: usize = 7;

    /// Every cause, in counter order.
    pub const ALL: [FallbackCause; FallbackCause::COUNT] = [
        FallbackCause::Rebuild,
        FallbackCause::WakeAll,
        FallbackCause::NonLevelizable,
        FallbackCause::StaleDriver,
        FallbackCause::ParallelSequential,
        FallbackCause::LoweredComponent,
        FallbackCause::MultiDomain,
    ];

    /// Position of this cause in [`SimStats::fallback_causes`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FallbackCause::Rebuild => 0,
            FallbackCause::WakeAll => 1,
            FallbackCause::NonLevelizable => 2,
            FallbackCause::StaleDriver => 3,
            FallbackCause::ParallelSequential => 4,
            FallbackCause::LoweredComponent => 5,
            FallbackCause::MultiDomain => 6,
        }
    }

    /// Stable snake_case label used in metrics and JSON documents.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FallbackCause::Rebuild => "rebuild",
            FallbackCause::WakeAll => "wake_all",
            FallbackCause::NonLevelizable => "non_levelizable",
            FallbackCause::StaleDriver => "stale_driver",
            FallbackCause::ParallelSequential => "parallel_sequential",
            FallbackCause::LoweredComponent => "lowered_component",
            FallbackCause::MultiDomain => "multi_domain",
        }
    }
}

/// Instrumentation level of a [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryLevel {
    /// No instrumentation: the hot paths pay one branch, nothing else.
    #[default]
    Off,
    /// Integer counters (evals, passes, wake sizes, toggles). No
    /// clock reads, no spans.
    Counters,
    /// Counters plus wall-clock timing and trace-event spans.
    Full,
}

impl TelemetryLevel {
    /// Whether any instrumentation is active.
    #[must_use]
    pub fn enabled(self) -> bool {
        self != TelemetryLevel::Off
    }

    /// Whether wall-clock spans are recorded.
    #[must_use]
    pub fn timed(self) -> bool {
        self == TelemetryLevel::Full
    }
}

/// One span in the recorded trace, in nanoseconds since the telemetry
/// epoch (the moment telemetry was enabled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (component instance, `step`, `settle`, `wave`, ...).
    pub name: String,
    /// Category: `step`, `pass`, `wave`, `island` or `eval`.
    pub cat: &'static str,
    /// Start, nanoseconds since the telemetry epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Logical thread: 0 is the scheduler, workers are 1-based.
    pub tid: u32,
}

/// Per-component counters in a [`SimStats`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentStats {
    /// The component's instance name.
    pub name: String,
    /// Number of `eval` calls.
    pub evals: u64,
    /// Number of settle passes that ran while this component was
    /// *not* evaluated — the event scheduler's savings over a sweep.
    pub skips: u64,
    /// Cumulative `eval` wall-clock time (0 below
    /// [`TelemetryLevel::Full`]).
    pub eval_ns: u64,
}

/// Per-signal activity counters in a [`SimStats`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalStats {
    /// The signal's name.
    pub name: String,
    /// Settled-value changes (one per delta pass in which the
    /// pass-final value differed from the pass-start value) — the
    /// switching-activity proxy. Bit-identical across scheduling
    /// modes.
    pub toggles: u64,
    /// Raw `drive` calls accepted by the bus (parallel-mode drives are
    /// counted at ordered commit, so the count matches the sequential
    /// schedulers exactly).
    pub drives: u64,
}

/// A telemetry snapshot of one [`crate::Simulator`].
///
/// Obtained from [`crate::Simulator::stats`]; all fields are plain
/// data. Empty (all zeros, empty vectors) when telemetry is
/// [`TelemetryLevel::Off`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// The level the counters were collected at.
    pub level: TelemetryLevel,
    /// Clock cycles executed ([`crate::Simulator::step`] calls).
    pub steps: u64,
    /// Settle invocations (two per step, plus explicit `settle`s).
    pub settles: u64,
    /// Total delta passes across all settles.
    pub passes: u64,
    /// Largest number of delta passes any single settle needed —
    /// convergence depth.
    pub max_passes: u64,
    /// Sum of wake-set sizes over all passes (components evaluated).
    pub total_wake: u64,
    /// Largest single-pass wake set.
    pub max_wake: u64,
    /// Per-component counters, in registration order.
    pub components: Vec<ComponentStats>,
    /// Per-signal activity, in declaration order.
    pub signals: Vec<SignalStats>,
    /// Passes evaluated as multi-island parallel waves.
    pub parallel_waves: u64,
    /// Parallel-mode passes evaluated inline (single island or below
    /// the wake-size floor).
    pub inline_waves: u64,
    /// Parallel-mode settles that fell back to the sequential event
    /// scheduler (validation settles, `Sensitivity::Always` designs,
    /// `threads <= 1`), plus compiled-mode settles that fell back
    /// (build/validation settles, invalidated schedules, designs that
    /// cannot be levelized).
    pub fallback_settles: u64,
    /// Fallback events by typed cause, indexed by
    /// [`FallbackCause::index`]. The settle-shaped causes sum to
    /// [`SimStats::fallback_settles`];
    /// [`FallbackCause::LoweredComponent`] counts components, not
    /// settles, so it sits outside that sum.
    pub fallback_causes: [u64; FallbackCause::COUNT],
    /// Settles executed as a single compiled rank walk
    /// ([`crate::SchedMode::Compiled`]).
    pub compiled_settles: u64,
    /// Settles executed as a rank walk with lowered op-stream
    /// execution ([`crate::SchedMode::Lowered`]). Disjoint from
    /// [`SimStats::compiled_settles`]: a settle counts under exactly
    /// one of the two depending on the active mode.
    pub lowered_settles: u64,
    /// Word-level ops executed by lowered components across all
    /// lowered settles (memo-skipped walks contribute zero).
    pub ops_executed: u64,
    /// Compiled schedules installed from a cached [`crate::CompiledPlan`]
    /// ([`crate::Simulator::install_plan`]) instead of being levelized
    /// locally — the per-simulator face of a plan-cache hit.
    pub plan_installs: u64,
    /// Component count per levelized rank of the active compiled
    /// schedule (index = rank; empty when no compiled schedule is
    /// active).
    pub compiled_ranks: Vec<u64>,
    /// One-line scheduler notes (fallback reasons, schedule
    /// invalidations), deduplicated.
    pub notes: Vec<String>,
    /// Component count per connectivity island, by island, from the
    /// current partition (empty until a parallel partition is built).
    pub island_sizes: Vec<u64>,
    /// Components evaluated per worker slot across all parallel waves
    /// (index = worker).
    pub worker_evals: Vec<u64>,
    /// Component names of the last few wake sets, most recent last —
    /// forensics for [`crate::SimError::NoConvergence`]: on a
    /// non-converging settle these are the components still chasing
    /// each other.
    pub last_wake_sets: Vec<Vec<String>>,
    /// Recorded spans ([`TelemetryLevel::Full`] only).
    pub trace: Vec<TraceEvent>,
    /// Spans dropped after the recording cap was reached.
    pub trace_dropped: u64,
}

impl SimStats {
    /// Total component evaluations. Identical between
    /// [`crate::SchedMode::EventDriven`] and
    /// [`crate::SchedMode::Parallel`] at any thread count.
    #[must_use]
    pub fn total_evals(&self) -> u64 {
        self.components.iter().map(|c| c.evals).sum()
    }

    /// Total settled signal toggles — the design's switching activity.
    /// Bit-identical across all scheduling modes.
    #[must_use]
    pub fn total_toggles(&self) -> u64 {
        self.signals.iter().map(|s| s.toggles).sum()
    }

    /// Total accepted `drive` calls.
    #[must_use]
    pub fn total_drives(&self) -> u64 {
        self.signals.iter().map(|s| s.drives).sum()
    }

    /// The counter for one typed fallback cause.
    #[must_use]
    pub fn fallback_cause(&self, cause: FallbackCause) -> u64 {
        self.fallback_causes[cause.index()]
    }

    /// `(cause, count)` pairs in counter order, including zeros.
    pub fn fallback_cause_counts(&self) -> impl Iterator<Item = (FallbackCause, u64)> + '_ {
        FallbackCause::ALL
            .iter()
            .map(|&c| (c, self.fallback_causes[c.index()]))
    }

    /// Whether the snapshot carries no data (telemetry was off).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps == 0
            && self.settles == 0
            && self.passes == 0
            && self.components.is_empty()
            && self.signals.is_empty()
            && self.trace.is_empty()
    }

    /// Renders a human-readable report: totals, convergence depth,
    /// island shapes, and the top components and signals by activity.
    #[must_use]
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "simulator telemetry — level {:?}", self.level);
        if self.is_empty() {
            out.push_str("  (no data: telemetry is off)\n");
            return out;
        }
        let _ = writeln!(
            out,
            "  steps {}  settles {}  delta passes {} (max {}/settle)",
            self.steps, self.settles, self.passes, self.max_passes
        );
        let mean_wake = if self.passes == 0 {
            0.0
        } else {
            self.total_wake as f64 / self.passes as f64
        };
        let _ = writeln!(
            out,
            "  evals {}  wake max {}  wake mean {mean_wake:.2}/pass  toggles {}  drives {}",
            self.total_evals(),
            self.max_wake,
            self.total_toggles(),
            self.total_drives(),
        );
        if self.parallel_waves + self.inline_waves + self.fallback_settles > 0 {
            let _ = writeln!(
                out,
                "  parallel: {} waves fanned out, {} inline, {} fallback settles",
                self.parallel_waves, self.inline_waves, self.fallback_settles
            );
        }
        if self.compiled_settles > 0 || !self.compiled_ranks.is_empty() {
            let _ = writeln!(
                out,
                "  compiled: {} rank-walk settles, {} ranks (components per rank: {:?})",
                self.compiled_settles,
                self.compiled_ranks.len(),
                self.compiled_ranks
            );
        }
        if self.lowered_settles > 0 || self.ops_executed > 0 {
            let _ = writeln!(
                out,
                "  lowered: {} op-stream settles, {} word ops executed",
                self.lowered_settles, self.ops_executed
            );
        }
        if self.fallback_causes.iter().any(|&n| n > 0) {
            let causes: Vec<String> = self
                .fallback_cause_counts()
                .filter(|&(_, n)| n > 0)
                .map(|(c, n)| format!("{} {n}", c.label()))
                .collect();
            let _ = writeln!(out, "  fallbacks by cause: {}", causes.join(", "));
        }
        if self.plan_installs > 0 {
            let _ = writeln!(
                out,
                "  compiled: {} schedule(s) installed from cached plans",
                self.plan_installs
            );
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        if !self.island_sizes.is_empty() {
            let _ = writeln!(
                out,
                "  islands: {} (components per island: {:?})",
                self.island_sizes.len(),
                self.island_sizes
            );
        }
        if self.worker_evals.iter().any(|&n| n > 0) {
            let _ = writeln!(out, "  worker evals: {:?}", self.worker_evals);
        }
        let mut comps: Vec<&ComponentStats> = self.components.iter().collect();
        comps.sort_by(|a, b| b.evals.cmp(&a.evals).then_with(|| a.name.cmp(&b.name)));
        out.push_str("  components (by evals):\n");
        let _ = writeln!(
            out,
            "    {:<24} {:>10} {:>10} {:>12}",
            "name", "evals", "skips", "eval time"
        );
        for c in comps.iter().take(16) {
            let time = if c.eval_ns == 0 {
                "-".to_owned()
            } else {
                format!("{:.3} ms", c.eval_ns as f64 / 1e6)
            };
            let _ = writeln!(
                out,
                "    {:<24} {:>10} {:>10} {:>12}",
                c.name, c.evals, c.skips, time
            );
        }
        let mut sigs: Vec<&SignalStats> = self.signals.iter().filter(|s| s.drives > 0).collect();
        sigs.sort_by(|a, b| b.toggles.cmp(&a.toggles).then_with(|| a.name.cmp(&b.name)));
        out.push_str("  signals (by toggles):\n");
        let _ = writeln!(out, "    {:<24} {:>10} {:>10}", "name", "toggles", "drives");
        for s in sigs.iter().take(16) {
            let _ = writeln!(out, "    {:<24} {:>10} {:>10}", s.name, s.toggles, s.drives);
        }
        if !self.last_wake_sets.is_empty() {
            out.push_str("  last wake sets (oldest first):\n");
            for set in &self.last_wake_sets {
                let _ = writeln!(out, "    [{}]", set.join(", "));
            }
        }
        if !self.trace.is_empty() {
            let _ = writeln!(
                out,
                "  trace: {} spans recorded ({} dropped)",
                self.trace.len(),
                self.trace_dropped
            );
        }
        out
    }

    /// Renders the recorded spans as Chrome trace-event JSON
    /// (`{"traceEvents": [...]}` object format), loadable in
    /// `chrome://tracing` and Perfetto. Timestamps are microseconds
    /// since the telemetry epoch; `tid` 0 is the scheduler thread,
    /// workers are 1-based.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        let mut out = String::with_capacity(64 + self.trace.len() * 96);
        out.push_str("{\"traceEvents\":[\n");
        for (i, ev) in self.trace.iter().enumerate() {
            let sep = if i + 1 == self.trace.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}{sep}",
                json_string(&ev.name),
                ev.cat,
                ev.tid,
                ev.ts_ns as f64 / 1e3,
                ev.dur_ns as f64 / 1e3,
            );
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Escapes a string as a JSON string literal (quotes included).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The live counter state owned by a [`crate::Simulator`].
///
/// All mutation is behind [`TelemetryLevel`] checks so the `Off` path
/// costs one branch. Parallel-mode counters are merged from per-worker
/// buffers at ordered commit time — workers never touch this struct,
/// keeping the wave evaluation free of atomics and locks.
#[derive(Debug, Default)]
pub(crate) struct Telemetry {
    pub(crate) level: TelemetryLevel,
    /// Time origin for spans; set when telemetry is enabled.
    epoch: Option<Instant>,
    pub(crate) steps: u64,
    pub(crate) settles: u64,
    pub(crate) passes: u64,
    pub(crate) max_passes: u64,
    pub(crate) total_wake: u64,
    pub(crate) max_wake: u64,
    pub(crate) comp_evals: Vec<u64>,
    pub(crate) comp_ns: Vec<u64>,
    pub(crate) parallel_waves: u64,
    pub(crate) inline_waves: u64,
    pub(crate) fallback_settles: u64,
    pub(crate) fallback_causes: [u64; FallbackCause::COUNT],
    pub(crate) compiled_settles: u64,
    pub(crate) lowered_settles: u64,
    pub(crate) ops_executed: u64,
    pub(crate) plan_installs: u64,
    /// Deduplicated one-line scheduler notes (fallbacks,
    /// invalidations) surfaced in [`SimStats::notes`].
    pub(crate) notes: Vec<String>,
    pub(crate) worker_evals: Vec<u64>,
    /// Ring of the last few wake sets (component indices).
    pub(crate) wake_ring: VecDeque<Vec<usize>>,
    pub(crate) trace: Vec<TraceEvent>,
    pub(crate) trace_dropped: u64,
}

impl Telemetry {
    /// Whether any counters are collected.
    #[inline]
    pub(crate) fn on(&self) -> bool {
        self.level.enabled()
    }

    /// Whether spans are recorded.
    #[inline]
    pub(crate) fn timed(&self) -> bool {
        self.level.timed()
    }

    /// Switches the level, (re)arming the epoch when turning on.
    pub(crate) fn set_level(&mut self, level: TelemetryLevel) {
        self.level = level;
        if level.enabled() && self.epoch.is_none() {
            self.epoch = Some(Instant::now());
        }
    }

    /// Nanoseconds since the epoch (0 if telemetry never enabled).
    #[inline]
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.map_or(0, |e| {
            u64::try_from(e.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
    }

    /// The epoch instant, for handing to parallel workers.
    #[inline]
    pub(crate) fn epoch(&self) -> Option<Instant> {
        self.epoch
    }

    /// Grows the per-component counters to `n` components.
    pub(crate) fn ensure_components(&mut self, n: usize) {
        if self.comp_evals.len() < n {
            self.comp_evals.resize(n, 0);
            self.comp_ns.resize(n, 0);
        }
    }

    /// Records one component evaluation (sequential paths).
    #[inline]
    pub(crate) fn record_eval(&mut self, component: usize, dur_ns: u64) {
        self.comp_evals[component] += 1;
        self.comp_ns[component] += dur_ns;
    }

    /// Records one settle pass's wake-set size and forensics ring
    /// entry.
    pub(crate) fn record_pass(&mut self, wake: &[usize]) {
        self.passes += 1;
        let n = wake.len() as u64;
        self.total_wake += n;
        self.max_wake = self.max_wake.max(n);
        if self.wake_ring.len() == WAKE_FORENSICS_DEPTH {
            self.wake_ring.pop_front();
        }
        self.wake_ring.push_back(wake.to_vec());
    }

    /// Appends a span, honouring the recording cap.
    #[inline]
    pub(crate) fn push_span(&mut self, ev: TraceEvent) {
        if self.trace.len() < TRACE_EVENT_CAP {
            self.trace.push(ev);
        } else {
            self.trace_dropped += 1;
        }
    }

    /// Bulk-appends worker spans, honouring the recording cap.
    pub(crate) fn extend_spans(&mut self, evs: &mut Vec<TraceEvent>) {
        let room = TRACE_EVENT_CAP.saturating_sub(self.trace.len());
        if evs.len() > room {
            self.trace_dropped += (evs.len() - room) as u64;
            evs.truncate(room);
        }
        self.trace.append(evs);
    }

    /// Records one settle that fell back to the event scheduler,
    /// attributing it to a typed cause.
    #[inline]
    pub(crate) fn record_fallback_settle(&mut self, cause: FallbackCause) {
        self.fallback_settles += 1;
        self.fallback_causes[cause.index()] += 1;
    }

    /// Records a non-settle fallback event (e.g. one component kept
    /// interpreted evaluation on the lowered walk).
    #[inline]
    pub(crate) fn record_cause(&mut self, cause: FallbackCause) {
        self.fallback_causes[cause.index()] += 1;
    }

    /// Records a scheduler note, skipping exact duplicates so a
    /// recurring condition (e.g. a schedule invalidated every settle)
    /// produces one line, not thousands.
    pub(crate) fn note_once(&mut self, note: &str) {
        if !self.notes.iter().any(|n| n == note) {
            self.notes.push(note.to_owned());
        }
    }

    /// Records a worker-slot evaluation total from a parallel wave.
    pub(crate) fn record_worker_evals(&mut self, worker: usize, evals: u64) {
        if self.worker_evals.len() <= worker {
            self.worker_evals.resize(worker + 1, 0);
        }
        self.worker_evals[worker] += evals;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_level_is_default_and_disabled() {
        assert_eq!(TelemetryLevel::default(), TelemetryLevel::Off);
        assert!(!TelemetryLevel::Off.enabled());
        assert!(TelemetryLevel::Counters.enabled());
        assert!(!TelemetryLevel::Counters.timed());
        assert!(TelemetryLevel::Full.timed());
    }

    #[test]
    fn empty_stats_report_says_off() {
        let stats = SimStats::default();
        assert!(stats.is_empty());
        assert!(stats.report().contains("telemetry is off"));
        assert_eq!(stats.total_evals(), 0);
        assert_eq!(stats.total_toggles(), 0);
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn chrome_trace_is_balanced_json() {
        let stats = SimStats {
            level: TelemetryLevel::Full,
            trace: vec![
                TraceEvent {
                    name: "step".into(),
                    cat: "step",
                    ts_ns: 1_000,
                    dur_ns: 2_500,
                    tid: 0,
                },
                TraceEvent {
                    name: "u_fifo".into(),
                    cat: "eval",
                    ts_ns: 1_200,
                    dur_ns: 300,
                    tid: 1,
                },
            ],
            ..SimStats::default()
        };
        let json = stats.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":0.300"));
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "balanced braces");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn wake_ring_is_bounded() {
        let mut t = Telemetry::default();
        t.set_level(TelemetryLevel::Counters);
        for i in 0..10 {
            t.record_pass(&[i]);
        }
        assert_eq!(t.wake_ring.len(), WAKE_FORENSICS_DEPTH);
        assert_eq!(t.wake_ring.back().unwrap(), &vec![9]);
        assert_eq!(t.passes, 10);
    }

    #[test]
    fn report_lists_top_components_and_signals() {
        let stats = SimStats {
            level: TelemetryLevel::Counters,
            steps: 3,
            settles: 6,
            passes: 12,
            max_passes: 3,
            total_wake: 24,
            max_wake: 4,
            components: vec![
                ComponentStats {
                    name: "busy".into(),
                    evals: 10,
                    skips: 2,
                    eval_ns: 0,
                },
                ComponentStats {
                    name: "idle".into(),
                    evals: 1,
                    skips: 11,
                    eval_ns: 0,
                },
            ],
            signals: vec![SignalStats {
                name: "q".into(),
                toggles: 7,
                drives: 12,
            }],
            ..SimStats::default()
        };
        let report = stats.report();
        assert!(report.contains("busy"));
        assert!(report.contains("idle"));
        assert!(report.contains("q"));
        assert!(report.contains("delta passes 12"));
        let busy_pos = report.find("busy").unwrap();
        let idle_pos = report.find("idle").unwrap();
        assert!(busy_pos < idle_pos, "sorted by evals, busiest first");
    }
}
