//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! vendors the subset of the `criterion 0.5` API the workspace benches
//! use: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with [`Throughput`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: a short warm-up, then timed
//! batches until a wall-clock budget is spent, reporting the mean
//! time per iteration (and throughput when declared). No statistics,
//! no plots, no baseline store — enough to compare two
//! implementations in one run, which is what the workspace benches do.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(400);
/// Warm-up budget before measurement.
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), None, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the closure of a benchmark; calls back into the timed
/// routine.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called repeatedly until the measurement budget
    /// is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: establish caches and an iteration-cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters as u32);
        let batch = per_iter
            .map(|d| {
                if d.is_zero() {
                    1024
                } else {
                    (MEASURE_BUDGET.as_nanos() / d.as_nanos().max(1) / 10).clamp(1, 4096) as u64
                }
            })
            .unwrap_or(1);
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            for _ in 0..batch {
                black_box(routine());
            }
            self.iters += batch;
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    if b.iters == 0 {
        println!("{id:<48} (no iterations timed)");
        return;
    }
    let per_iter_ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("{} elem/s", si(n as f64 * 1e9 / per_iter_ns)),
        Throughput::Bytes(n) => format!("{}B/s", si(n as f64 * 1e9 / per_iter_ns)),
    });
    match rate {
        Some(r) => println!("{id:<48} {:>12}/iter  {r}", fmt_ns(per_iter_ns)),
        None => println!("{id:<48} {:>12}/iter", fmt_ns(per_iter_ns)),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} k", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// The `main` of a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher::default();
        b.iter(|| black_box(2 + 2));
        assert!(b.iters > 0);
        assert!(b.elapsed >= MEASURE_BUDGET);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        // Not timed meaningfully — just exercises the API shape.
        let mut group = c.benchmark_group("shape");
        group.throughput(Throughput::Elements(4));
        group.finish();
    }

    #[test]
    fn formatting_helpers_cover_ranges() {
        assert!(fmt_ns(10.0).contains("ns"));
        assert!(fmt_ns(10_000.0).contains("µs"));
        assert!(fmt_ns(10_000_000.0).contains("ms"));
        assert!(fmt_ns(10_000_000_000.0).ends_with('s'));
        assert!(si(5e9).contains('G'));
        assert!(si(5e6).contains('M'));
        assert!(si(5e3).contains('k'));
    }
}
