//! Netlist optimization: wrapper dissolution.

use hdp_hdl::prim::Prim;
use hdp_hdl::{HdlError, NetId, Netlist};

/// Removes every [`Prim::Buf`] cell by aliasing its output net to its
/// input net — the synthesis behaviour the paper relies on: "the
/// iterators, which are only wrappers that will be dissolved at the
/// time of synthesizing the design" (§4).
///
/// Nets that end up with neither drivers nor readers are dropped.
/// Entity port bindings are remapped through the aliases, so the
/// optimized netlist implements the identical entity.
///
/// # Errors
///
/// Propagates structural errors from rebuilding the netlist; the
/// result is re-validated before being returned.
pub fn dissolve_wrappers(netlist: &Netlist) -> Result<Netlist, HdlError> {
    // Union-find of net aliases: buf output -> buf input.
    let n = netlist.nets().len();
    let mut alias: Vec<usize> = (0..n).collect();
    fn find(alias: &mut [usize], mut x: usize) -> usize {
        while alias[x] != x {
            alias[x] = alias[alias[x]];
            x = alias[x];
        }
        x
    }
    for cell in netlist.cells() {
        if matches!(cell.prim(), Prim::Buf { .. }) {
            let input = cell.inputs()[0].index();
            let output = cell.outputs()[0].index();
            let ri = find(&mut alias, input);
            let ro = find(&mut alias, output);
            if ri != ro {
                // The output is a pure alias of the input.
                alias[ro] = ri;
            }
        }
    }
    // A port-bound net must survive; prefer binding roots onto
    // port-bound representatives where possible. Instead of choosing
    // representatives cleverly, remap everything to the root and keep
    // any net that is used after remapping.
    let root_of: Vec<usize> = (0..n).map(|i| find(&mut alias, i)).collect();
    // Collect used roots (cell pins of surviving cells + port
    // bindings).
    let mut used = vec![false; n];
    for cell in netlist.cells() {
        if matches!(cell.prim(), Prim::Buf { .. }) {
            continue;
        }
        for &net in cell.inputs().iter().chain(cell.outputs().iter()) {
            used[root_of[net.index()]] = true;
        }
    }
    for binding in netlist.bindings() {
        used[root_of[binding.net().index()]] = true;
    }
    // Rebuild.
    let mut out = Netlist::new(netlist.entity().clone());
    let mut new_id: Vec<Option<NetId>> = vec![None; n];
    for (i, net) in netlist.nets().iter().enumerate() {
        if root_of[i] == i && used[i] {
            let id = out.add_net(net.name().to_owned(), net.width())?;
            new_id[i] = Some(id);
        }
    }
    let map = |net: NetId, new_id: &[Option<NetId>]| -> NetId {
        new_id[root_of[net.index()]].expect("used net was rebuilt")
    };
    for cell in netlist.cells() {
        if matches!(cell.prim(), Prim::Buf { .. }) {
            continue;
        }
        let inputs = cell.inputs().iter().map(|&x| map(x, &new_id)).collect();
        let outputs = cell.outputs().iter().map(|&x| map(x, &new_id)).collect();
        out.add_cell(cell.name().to_owned(), cell.prim().clone(), inputs, outputs)?;
    }
    for binding in netlist.bindings() {
        out.bind_port(binding.port(), map(binding.net(), &new_id))?;
    }
    hdp_hdl::validate::check(&out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_hdl::{Entity, PortDir};

    fn wrapped_inc() -> Netlist {
        // a -> buf -> inc -> buf -> buf -> y
        let entity = Entity::builder("w")
            .port("a", PortDir::In, 8)
            .unwrap()
            .port("y", PortDir::Out, 8)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let a = nl.add_net("a", 8).unwrap();
        let b1 = nl.add_net("b1", 8).unwrap();
        let m = nl.add_net("m", 8).unwrap();
        let b2 = nl.add_net("b2", 8).unwrap();
        let y = nl.add_net("y", 8).unwrap();
        nl.add_cell("w1", Prim::Buf { width: 8 }, vec![a], vec![b1])
            .unwrap();
        nl.add_cell("u", Prim::Inc { width: 8 }, vec![b1], vec![m])
            .unwrap();
        nl.add_cell("w2", Prim::Buf { width: 8 }, vec![m], vec![b2])
            .unwrap();
        nl.add_cell("w3", Prim::Buf { width: 8 }, vec![b2], vec![y])
            .unwrap();
        nl.bind_port("a", a).unwrap();
        nl.bind_port("y", y).unwrap();
        nl
    }

    #[test]
    fn buffers_disappear() {
        let nl = wrapped_inc();
        let out = dissolve_wrappers(&nl).unwrap();
        assert_eq!(out.cells().len(), 1);
        assert_eq!(out.cells()[0].prim(), &Prim::Inc { width: 8 });
        // Nets: just the inc input and output.
        assert_eq!(out.nets().len(), 2);
    }

    #[test]
    fn behaviour_is_preserved() {
        use hdp_sim::{NetlistComponent, Simulator};
        let original = wrapped_inc();
        let optimized = dissolve_wrappers(&original).unwrap();
        for nl in [original, optimized] {
            let mut sim = Simulator::new();
            let a = sim.add_signal("a", 8).unwrap();
            let y = sim.add_signal("y", 8).unwrap();
            let dut = NetlistComponent::new("dut", nl, sim.bus(), &[("a", a), ("y", y)]).unwrap();
            sim.add_component(dut);
            sim.poke(a, 41).unwrap();
            sim.reset().unwrap();
            assert_eq!(sim.peek(y).unwrap().to_u64(), Some(42));
        }
    }

    #[test]
    fn buffer_only_netlist_collapses_to_port_alias() {
        let entity = Entity::builder("w")
            .port("a", PortDir::In, 4)
            .unwrap()
            .port("y", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let a = nl.add_net("a", 4).unwrap();
        let y = nl.add_net("y", 4).unwrap();
        nl.add_cell("w1", Prim::Buf { width: 4 }, vec![a], vec![y])
            .unwrap();
        nl.bind_port("a", a).unwrap();
        nl.bind_port("y", y).unwrap();
        let out = dissolve_wrappers(&nl).unwrap();
        assert!(out.cells().is_empty());
        // Both ports bind the same surviving net.
        assert_eq!(out.port_net("a"), out.port_net("y"));
    }

    #[test]
    fn idempotent() {
        let once = dissolve_wrappers(&wrapped_inc()).unwrap();
        let twice = dissolve_wrappers(&once).unwrap();
        assert_eq!(once.cells().len(), twice.cells().len());
        assert_eq!(once.nets().len(), twice.nets().len());
    }
}
