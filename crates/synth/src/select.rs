//! Automatic target selection over the characterisation database.
//!
//! §3.4's punchline: once every container×target×parameter point is
//! characterised, the implementation decision the paper made by hand
//! — "which physical target should this container use, given my
//! constraints?" — becomes a database query. [`auto_select`] is that
//! query: given a [`SelectConstraints`] (container kind, minimum
//! width/depth/clock, maxima for area, power and access cycles), it
//! scans a [`CharDb`] and returns the *cheapest* satisfying record,
//! with cost ordered lexicographically by (area, power, access
//! cycles) and ties broken deterministically by record key.
//!
//! An unsatisfiable constraint set is a structured answer, not a
//! failure: [`Selection::NoTarget`] reports how many candidates each
//! constraint eliminated, which is exactly what a user needs to relax
//! the right one. The JSON round-trip on both types carries the
//! `hdp-service` `{"verb":"select"}` wire verb.

use crate::chardb::{CharDb, CharRecord};
use hdp_conform::json::Json;
use std::fmt;

/// The constraint set of one selection request.
///
/// `kind` is mandatory — selection picks a *target for* a container
/// kind; the remaining axes default to unconstrained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelectConstraints {
    /// Container kind to implement (`"queue"`, `"stack"`, …).
    pub kind: String,
    /// Minimum element width in bits (0 = unconstrained).
    pub min_data_width: usize,
    /// Minimum capacity in elements (0 = unconstrained).
    pub min_depth: usize,
    /// Minimum achievable clock in kHz (0 = unconstrained).
    pub min_clk_khz: u64,
    /// Maximum scalar area in cells ([`CharRecord::area_cells`]).
    pub max_area_cells: Option<u64>,
    /// Maximum power in µW.
    pub max_power_uw: Option<u64>,
    /// Maximum cycles per element access.
    pub max_access_cycles: Option<u32>,
}

impl SelectConstraints {
    /// Serialises the constraints as a wire JSON object (`None`
    /// maxima are omitted).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("kind".to_owned(), Json::Str(self.kind.clone())),
            (
                "min_data_width".to_owned(),
                Json::Num(self.min_data_width as u64),
            ),
            ("min_depth".to_owned(), Json::Num(self.min_depth as u64)),
            ("min_clk_khz".to_owned(), Json::Num(self.min_clk_khz)),
        ];
        if let Some(m) = self.max_area_cells {
            fields.push(("max_area_cells".to_owned(), Json::Num(m)));
        }
        if let Some(m) = self.max_power_uw {
            fields.push(("max_power_uw".to_owned(), Json::Num(m)));
        }
        if let Some(m) = self.max_access_cycles {
            fields.push(("max_access_cycles".to_owned(), Json::Num(u64::from(m))));
        }
        Json::Obj(fields)
    }

    /// Parses a constraints object: `kind` is required, minima
    /// default to 0 and absent maxima stay unconstrained.
    ///
    /// # Errors
    ///
    /// A `field: problem` description of the first bad field.
    pub fn from_json(obj: &Json) -> Result<Self, String> {
        let kind = obj
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("constraints.kind: missing or non-string")?
            .to_owned();
        let opt = |key: &str| -> Result<Option<u64>, String> {
            match obj.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("constraints.{key}: non-numeric")),
            }
        };
        Ok(Self {
            kind,
            min_data_width: opt("min_data_width")?.unwrap_or(0) as usize,
            min_depth: opt("min_depth")?.unwrap_or(0) as usize,
            min_clk_khz: opt("min_clk_khz")?.unwrap_or(0),
            max_area_cells: opt("max_area_cells")?,
            max_power_uw: opt("max_power_uw")?,
            max_access_cycles: opt("max_access_cycles")?
                .map(|v| {
                    u32::try_from(v)
                        .map_err(|_| "constraints.max_access_cycles: out of range".to_owned())
                })
                .transpose()?,
        })
    }
}

/// Why the candidate pool drained: per-constraint elimination counts
/// over the whole database, in the order constraints are applied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rejections {
    /// Records inspected (the database size).
    pub considered: usize,
    /// Eliminated: different container kind.
    pub wrong_kind: usize,
    /// Eliminated: element width below the minimum.
    pub too_narrow: usize,
    /// Eliminated: capacity below the minimum.
    pub too_shallow: usize,
    /// Eliminated: achievable clock below the minimum.
    pub too_slow: usize,
    /// Eliminated: area above the maximum.
    pub too_big: usize,
    /// Eliminated: power above the maximum.
    pub too_hungry: usize,
    /// Eliminated: access cycles above the budget.
    pub over_budget: usize,
}

/// The outcome of [`auto_select`]: either the cheapest satisfying
/// record, or a structured account of why no record satisfies.
#[derive(Debug, Clone, PartialEq)]
pub enum Selection {
    /// A target was found: the winning record and its key.
    Target {
        /// The winner's `design_hash@board` database key.
        key: String,
        /// The winning characterised point.
        record: CharRecord,
    },
    /// No record satisfies the constraints.
    NoTarget(Rejections),
}

impl Selection {
    /// Serialises the outcome as a wire JSON object
    /// (`selected: true/false` plus the winner's axes and metrics, or
    /// the rejection counts).
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Selection::Target { key, record } => Json::Obj(vec![
                ("selected".to_owned(), Json::Bool(true)),
                ("key".to_owned(), Json::Str(key.clone())),
                ("kind".to_owned(), Json::Str(record.spec.kind().to_owned())),
                (
                    "target".to_owned(),
                    Json::Str(record.spec.target().to_owned()),
                ),
                ("label".to_owned(), Json::Str(record.spec.label())),
                ("board".to_owned(), Json::Str(record.board.clone())),
                ("ffs".to_owned(), Json::Num(record.ffs as u64)),
                ("luts".to_owned(), Json::Num(record.luts as u64)),
                ("brams".to_owned(), Json::Num(record.brams as u64)),
                ("area_cells".to_owned(), Json::Num(record.area_cells())),
                ("clk_khz".to_owned(), Json::Num(record.clk_khz)),
                (
                    "access_cycles".to_owned(),
                    Json::Num(u64::from(record.access_cycles)),
                ),
                ("power_uw".to_owned(), Json::Num(record.power_uw)),
            ]),
            Selection::NoTarget(r) => Json::Obj(vec![
                ("selected".to_owned(), Json::Bool(false)),
                ("considered".to_owned(), Json::Num(r.considered as u64)),
                (
                    "rejected".to_owned(),
                    Json::Obj(vec![
                        ("wrong_kind".to_owned(), Json::Num(r.wrong_kind as u64)),
                        ("too_narrow".to_owned(), Json::Num(r.too_narrow as u64)),
                        ("too_shallow".to_owned(), Json::Num(r.too_shallow as u64)),
                        ("too_slow".to_owned(), Json::Num(r.too_slow as u64)),
                        ("too_big".to_owned(), Json::Num(r.too_big as u64)),
                        ("too_hungry".to_owned(), Json::Num(r.too_hungry as u64)),
                        ("over_budget".to_owned(), Json::Num(r.over_budget as u64)),
                    ]),
                ),
            ]),
        }
    }
}

impl fmt::Display for Selection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Selection::Target { key, record } => {
                write!(f, "selected {} [{key}]\n  {record}", record.spec.target())
            }
            Selection::NoTarget(r) => write!(
                f,
                "no satisfying target among {} records (wrong kind {}, too narrow {}, \
                 too shallow {}, too slow {}, too big {}, too hungry {}, over budget {})",
                r.considered,
                r.wrong_kind,
                r.too_narrow,
                r.too_shallow,
                r.too_slow,
                r.too_big,
                r.too_hungry,
                r.over_budget
            ),
        }
    }
}

/// Picks the cheapest database record satisfying the constraints —
/// the paper's manual implementation decision, automated.
///
/// Constraints are applied in a fixed order (kind, width, depth,
/// clock, area, power, access budget) and each record's elimination
/// is attributed to the *first* constraint it fails, so the
/// [`Rejections`] counts sum to `considered` on a miss. Among the
/// survivors, cost is compared lexicographically by
/// (area, power, access cycles); exact ties fall back to the record
/// key, so the result is deterministic regardless of database order.
///
/// # Example
///
/// ```
/// use hdp_synth::board::Xsb300e;
/// use hdp_synth::chardb::{characterize_spec, CharDb};
/// use hdp_synth::select::{auto_select, SelectConstraints, Selection};
/// use hdp_metagen::sampler::DesignSpec;
/// use hdp_metagen::{MethodOp, OpSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let board = Xsb300e::new();
/// let mut db = CharDb::new();
/// for family in [0, 1] { // read buffer over FIFO core vs SRAM
///     let spec = DesignSpec {
///         family,
///         data_width: 8,
///         depth: 4,
///         addr_width: 16,
///         key_width: 4,
///         wide: 0,
///         write_side: false,
///         ops: OpSet::of(&[MethodOp::Pop]),
///         wr_period: 1,
///         rd_period: 1,
///     };
///     db.append(characterize_spec(&spec, &board)?)?;
/// }
/// // A single-cycle access budget forces the FIFO-core target.
/// let fast = auto_select(&db, &SelectConstraints {
///     kind: "read_buffer".into(),
///     max_access_cycles: Some(1),
///     ..SelectConstraints::default()
/// });
/// match fast {
///     Selection::Target { record, .. } => {
///         assert_eq!(record.spec.target(), "fifo_core");
///     }
///     Selection::NoTarget(_) => unreachable!(),
/// }
/// // An impossible clock floor is a structured miss, not a panic.
/// let miss = auto_select(&db, &SelectConstraints {
///     kind: "read_buffer".into(),
///     min_clk_khz: 10_000_000,
///     ..SelectConstraints::default()
/// });
/// assert!(matches!(miss, Selection::NoTarget(r) if r.too_slow == 2));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn auto_select(db: &CharDb, c: &SelectConstraints) -> Selection {
    let mut rej = Rejections {
        considered: db.len(),
        ..Rejections::default()
    };
    let mut best: Option<(u64, u64, u64, String, &CharRecord)> = None;
    for r in db.records() {
        if r.spec.kind() != c.kind {
            rej.wrong_kind += 1;
            continue;
        }
        if r.spec.data_width < c.min_data_width {
            rej.too_narrow += 1;
            continue;
        }
        if r.spec.depth < c.min_depth {
            rej.too_shallow += 1;
            continue;
        }
        if r.clk_khz < c.min_clk_khz {
            rej.too_slow += 1;
            continue;
        }
        if c.max_area_cells.is_some_and(|m| r.area_cells() > m) {
            rej.too_big += 1;
            continue;
        }
        if c.max_power_uw.is_some_and(|m| r.power_uw > m) {
            rej.too_hungry += 1;
            continue;
        }
        if c.max_access_cycles.is_some_and(|m| r.access_cycles > m) {
            rej.over_budget += 1;
            continue;
        }
        let cost = (
            r.area_cells(),
            r.power_uw,
            u64::from(r.access_cycles),
            r.key(),
        );
        if best
            .as_ref()
            .is_none_or(|(a, p, t, k, _)| cost < (*a, *p, *t, k.clone()))
        {
            best = Some((cost.0, cost.1, cost.2, cost.3, r));
        }
    }
    match best {
        Some((_, _, _, key, record)) => Selection::Target {
            key,
            record: record.clone(),
        },
        None => Selection::NoTarget(rej),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::Xsb300e;
    use crate::chardb::characterize_spec;
    use hdp_metagen::sampler::DesignSpec;
    use hdp_metagen::{MethodOp, OpSet};

    fn rbuffer_spec(family: usize, addr_width: usize) -> DesignSpec {
        DesignSpec {
            family,
            data_width: 8,
            depth: 4,
            addr_width,
            key_width: 4,
            wide: 0,
            write_side: false,
            ops: OpSet::of(&[MethodOp::Pop]),
            wr_period: 1,
            rd_period: 1,
        }
    }

    fn two_target_db() -> CharDb {
        let board = Xsb300e::new();
        let mut db = CharDb::new();
        for family in [0, 1] {
            db.append(characterize_spec(&rbuffer_spec(family, 16), &board).unwrap())
                .unwrap();
        }
        db
    }

    #[test]
    fn exactly_one_satisfying_target_wins() {
        let db = two_target_db();
        // The access budget leaves only the FIFO core.
        let sel = auto_select(
            &db,
            &SelectConstraints {
                kind: "read_buffer".into(),
                max_access_cycles: Some(1),
                ..SelectConstraints::default()
            },
        );
        match sel {
            Selection::Target { ref record, .. } => {
                assert_eq!(record.spec.target(), "fifo_core");
            }
            Selection::NoTarget(r) => panic!("no target: {r:?}"),
        }
        // Unconstrained, the smallest-area point wins.
        let cheapest = db
            .records()
            .iter()
            .min_by_key(|r| (r.area_cells(), r.power_uw, r.access_cycles))
            .unwrap()
            .key();
        let sel = auto_select(
            &db,
            &SelectConstraints {
                kind: "read_buffer".into(),
                ..SelectConstraints::default()
            },
        );
        match sel {
            Selection::Target { ref key, .. } => assert_eq!(*key, cheapest),
            Selection::NoTarget(r) => panic!("no target: {r:?}"),
        }
    }

    #[test]
    fn unsatisfiable_is_structured_and_counts_sum() {
        let db = two_target_db();
        let sel = auto_select(
            &db,
            &SelectConstraints {
                kind: "read_buffer".into(),
                min_clk_khz: 10_000_000,
                ..SelectConstraints::default()
            },
        );
        let Selection::NoTarget(r) = sel else {
            panic!("expected NoTarget");
        };
        assert_eq!(r.considered, 2);
        assert_eq!(
            r.wrong_kind
                + r.too_narrow
                + r.too_shallow
                + r.too_slow
                + r.too_big
                + r.too_hungry
                + r.over_budget,
            r.considered
        );
        assert_eq!(r.too_slow, 2);
        // A kind nothing in the db has.
        let sel = auto_select(
            &db,
            &SelectConstraints {
                kind: "assoc_array".into(),
                ..SelectConstraints::default()
            },
        );
        assert!(matches!(sel, Selection::NoTarget(r) if r.wrong_kind == 2));
    }

    #[test]
    fn ties_break_deterministically_by_key() {
        // Two SRAM rbuffers differing only in the (cost-irrelevant)
        // external address width: identical metrics, different keys.
        let board = Xsb300e::new();
        let a = characterize_spec(&rbuffer_spec(1, 12), &board).unwrap();
        let b = characterize_spec(&rbuffer_spec(1, 13), &board).unwrap();
        assert_eq!((a.ffs, a.luts, a.power_uw), (b.ffs, b.luts, b.power_uw));
        let expect = a.key().min(b.key());
        let constraints = SelectConstraints {
            kind: "read_buffer".into(),
            ..SelectConstraints::default()
        };
        for order in [[&a, &b], [&b, &a]] {
            let mut db = CharDb::new();
            for r in order {
                db.append(r.clone()).unwrap();
            }
            match auto_select(&db, &constraints) {
                Selection::Target { key, .. } => assert_eq!(key, expect),
                Selection::NoTarget(r) => panic!("no target: {r:?}"),
            }
        }
    }

    #[test]
    fn constraints_round_trip_through_json() {
        let full = SelectConstraints {
            kind: "queue".into(),
            min_data_width: 8,
            min_depth: 4,
            min_clk_khz: 50_000,
            max_area_cells: Some(500),
            max_power_uw: Some(20_000),
            max_access_cycles: Some(2),
        };
        let back = SelectConstraints::from_json(&full.to_json()).unwrap();
        assert_eq!(back, full);
        let sparse = SelectConstraints {
            kind: "stack".into(),
            ..SelectConstraints::default()
        };
        let back = SelectConstraints::from_json(&sparse.to_json()).unwrap();
        assert_eq!(back, sparse);
        // kind is mandatory.
        let err = SelectConstraints::from_json(&Json::Obj(vec![])).unwrap_err();
        assert!(err.contains("constraints.kind"), "{err}");
    }

    #[test]
    fn selection_json_carries_the_outcome() {
        let db = two_target_db();
        let hit = auto_select(
            &db,
            &SelectConstraints {
                kind: "read_buffer".into(),
                ..SelectConstraints::default()
            },
        );
        let doc = hit.to_json();
        assert_eq!(doc.get("selected").and_then(Json::as_bool), Some(true));
        assert!(doc.get("key").and_then(Json::as_str).is_some());
        assert!(doc.get("area_cells").and_then(Json::as_u64).is_some());
        let miss = auto_select(
            &db,
            &SelectConstraints {
                kind: "vector".into(),
                ..SelectConstraints::default()
            },
        );
        let doc = miss.to_json();
        assert_eq!(doc.get("selected").and_then(Json::as_bool), Some(false));
        assert_eq!(
            doc.get("rejected")
                .and_then(|r| r.get("wrong_kind"))
                .and_then(Json::as_u64),
            Some(2)
        );
    }
}
