//! Resource mapping: primitive → Spartan-II FF / 4-LUT / Block
//! SelectRAM costs.
//!
//! Every formula is documented at its match arm. Two calibration
//! points deserve a note:
//!
//! * **FIFO cores** are costed as *dual-clock* vendor macros: on the
//!   XSB-300E the SAA7113 video decoder runs on its own pixel clock,
//!   so the generated designs' input FIFOs carry gray-code pointer
//!   pairs and two-stage synchronisers in both directions — that is
//!   why the paper's FIFO design (`saa2vga 1`, 147 FFs) is *larger*
//!   than the SRAM design (`saa2vga 2`, 69 FFs) despite the latter's
//!   extra FSM.
//! * **Block SelectRAMs** are 4096 bits each (the Spartan-IIE
//!   primitive), so a 512×8 FIFO costs exactly one block — matching
//!   the "2 block RAM" of the paper's first design row.

use hdp_hdl::prim::{CmpKind, Prim};
use hdp_hdl::Netlist;

/// Spartan-IIE Block SelectRAM capacity in bits.
pub const BLOCK_RAM_BITS: usize = 4096;

/// Mapped resource counts for one netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceReport {
    /// Flip-flops.
    pub ffs: usize,
    /// 4-input LUTs.
    pub luts: usize,
    /// Block SelectRAMs.
    pub brams: usize,
}

impl ResourceReport {
    /// Component-wise sum.
    // An `Add` impl would suggest operator semantics this plain struct
    // does not otherwise carry; keep the explicit method.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, other: ResourceReport) -> ResourceReport {
        ResourceReport {
            ffs: self.ffs + other.ffs,
            luts: self.luts + other.luts,
            brams: self.brams + other.brams,
        }
    }
}

/// LUTs to realise one output bit of a `k`-input boolean function:
/// one 4-LUT absorbs 4 inputs, each further LUT in the tree absorbs 3
/// more.
#[must_use]
pub fn luts_for_inputs(k: usize) -> usize {
    if k <= 4 {
        1
    } else {
        1 + (k - 4).div_ceil(3)
    }
}

/// Block RAMs for a `depth` × `width` memory.
#[must_use]
pub fn brams_for(depth: usize, width: usize) -> usize {
    (depth * width).div_ceil(BLOCK_RAM_BITS)
}

fn addr_bits(depth: usize) -> usize {
    usize::max(
        1,
        usize::BITS as usize - (depth.next_power_of_two() - 1).leading_zeros() as usize,
    )
}

/// The resource cost of a single primitive.
#[must_use]
pub fn prim_cost(prim: &Prim) -> ResourceReport {
    let r = ResourceReport::default();
    match prim {
        // Pure wiring: free. (Wrapper Bufs are normally dissolved
        // before mapping; if one survives it is still just a wire.)
        Prim::Const { .. } | Prim::Buf { .. } | Prim::Slice { .. } | Prim::Concat { .. } => r,
        // Registers: one FF per bit; the clock enable uses the
        // slice's dedicated CE pin.
        Prim::Reg { width, .. } => ResourceReport { ffs: *width, ..r },
        // Inverters fold into the downstream LUT's init vector.
        Prim::Not { .. } => r,
        // A two-input gate: one LUT per bit (a 4-LUT trivially holds
        // a 2-input function; adjacent gates are not re-packed, which
        // slightly overcounts both design styles equally).
        Prim::Gate { width, .. } => ResourceReport { luts: *width, ..r },
        // Reductions: a LUT tree over `width` inputs.
        Prim::ReduceOr { width } | Prim::ReduceAnd { width } => ResourceReport {
            luts: luts_for_inputs(*width),
            ..r
        },
        // Carry-chain arithmetic: one LUT per bit.
        Prim::Add { width } | Prim::Sub { width } | Prim::Inc { width } => {
            ResourceReport { luts: *width, ..r }
        }
        // Comparators on the carry chain: equality packs two bits per
        // LUT; magnitude needs the full borrow chain.
        Prim::Cmp { kind, width } => ResourceReport {
            luts: match kind {
                CmpKind::Eq | CmpKind::Ne => width.div_ceil(2) + 1,
                CmpKind::Lt | CmpKind::Ge => *width,
            },
            ..r
        },
        // A 2:1 mux per bit per stage: a 4-LUT implements one 2:1 mux
        // bit, wider selects build a tree of ways-1 such muxes.
        Prim::Mux { width, ways } => ResourceReport {
            luts: width * (ways - 1),
            ..r
        },
        // Truth-table logic: an independent LUT tree per output bit
        // over all table inputs.
        Prim::TruthTable {
            in_widths,
            out_width,
            ..
        } => {
            let k: usize = in_widths.iter().sum();
            ResourceReport {
                luts: out_width * luts_for_inputs(k),
                ..r
            }
        }
        // Spartan-II has dedicated TBUF resources; no LUTs.
        Prim::TriBuf { .. } => r,
        // Single-port synchronous RAM: one registered read port is
        // part of the block; no fabric cost beyond the blocks.
        Prim::BlockRam {
            addr_width,
            data_width,
        } => ResourceReport {
            brams: brams_for(1 << addr_width, *data_width),
            ..r
        },
        // FIFO macros. Small ones (up to 64 deep) map onto SRL16
        // shift registers in distributed RAM, the way coregen builds
        // shallow FIFOs: no block RAM, one LUT per 16 bits of
        // storage, a small single-clock pointer. Deep FIFOs are
        // dual-clock vendor macros (see module docs): binary and gray
        // read/write pointers (4·aw), two 2-stage pointer
        // synchronisers (4·aw), status flags and handshake registers.
        Prim::FifoMacro { depth, width } => {
            let aw = addr_bits(*depth);
            if *depth <= 64 {
                ResourceReport {
                    ffs: 2 * aw + 4,
                    luts: width * depth.div_ceil(16) + 2 * aw + 4,
                    brams: 0,
                }
            } else {
                ResourceReport {
                    ffs: 8 * aw + 6,
                    luts: 9 * aw + 8,
                    brams: brams_for(*depth, *width),
                }
            }
        }
        // Single-clock LIFO macro: one stack pointer plus status.
        Prim::LifoMacro { depth, width } => {
            let aw = addr_bits(*depth);
            ResourceReport {
                ffs: aw + 4,
                luts: 2 * aw + 6,
                brams: brams_for(*depth, *width),
            }
        }
    }
}

/// Maps a whole netlist.
#[must_use]
pub fn map_resources(netlist: &Netlist) -> ResourceReport {
    netlist
        .cells()
        .iter()
        .fold(ResourceReport::default(), |acc, c| {
            acc.add(prim_cost(c.prim()))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_hdl::prim::GateOp;

    #[test]
    fn lut_tree_formula() {
        assert_eq!(luts_for_inputs(1), 1);
        assert_eq!(luts_for_inputs(4), 1);
        assert_eq!(luts_for_inputs(5), 2);
        assert_eq!(luts_for_inputs(7), 2);
        assert_eq!(luts_for_inputs(8), 3);
        assert_eq!(luts_for_inputs(10), 3);
        assert_eq!(luts_for_inputs(13), 4);
    }

    #[test]
    fn bram_packing() {
        assert_eq!(brams_for(512, 8), 1); // exactly one 4-kbit block
        assert_eq!(brams_for(512, 9), 2);
        assert_eq!(brams_for(1024, 8), 2);
        assert_eq!(brams_for(16, 8), 1);
    }

    #[test]
    fn register_costs_ffs_only() {
        let c = prim_cost(&Prim::Reg {
            width: 10,
            has_enable: true,
            reset_value: 0,
        });
        assert_eq!(c.ffs, 10);
        assert_eq!(c.luts, 0);
    }

    #[test]
    fn wrappers_are_free() {
        for prim in [
            Prim::Buf { width: 24 },
            Prim::Slice {
                in_width: 24,
                low: 8,
                len: 8,
            },
            Prim::Concat { widths: vec![8, 8] },
        ] {
            let c = prim_cost(&prim);
            assert_eq!(c, ResourceReport::default(), "{prim:?}");
        }
    }

    #[test]
    fn fifo_macro_is_chunky_dual_clock() {
        let c = prim_cost(&Prim::FifoMacro {
            depth: 512,
            width: 8,
        });
        // aw = 9: 78 FFs, 89 LUTs, 1 block — two of these land near
        // the paper's 147 FF / 169 LUT / 2 BRAM row.
        assert_eq!(c.ffs, 78);
        assert_eq!(c.luts, 89);
        assert_eq!(c.brams, 1);
    }

    #[test]
    fn truth_table_cost_scales_with_inputs_and_outputs() {
        let small = prim_cost(&Prim::TruthTable {
            in_widths: vec![2, 1],
            out_width: 2,
            table: vec![0; 8],
        });
        assert_eq!(small.luts, 2);
        let big = prim_cost(&Prim::TruthTable {
            in_widths: vec![3, 4],
            out_width: 4,
            table: vec![0; 128],
        });
        assert_eq!(big.luts, 4 * 2);
    }

    #[test]
    fn gate_cost_per_bit() {
        let c = prim_cost(&Prim::Gate {
            op: GateOp::And,
            width: 8,
        });
        assert_eq!(c.luts, 8);
    }

    #[test]
    fn reports_add() {
        let a = ResourceReport {
            ffs: 1,
            luts: 2,
            brams: 3,
        };
        let b = ResourceReport {
            ffs: 10,
            luts: 20,
            brams: 30,
        };
        assert_eq!(
            a.add(b),
            ResourceReport {
                ffs: 11,
                luts: 22,
                brams: 33
            }
        );
    }
}
