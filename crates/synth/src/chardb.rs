//! The `hdp-chardb-v1` characterisation database.
//!
//! §3.4 of the paper argues that because components are generated
//! automatically, *every* container×target×parameter point can be
//! characterised — area, access time, power — and that table should
//! drive the implementation decision. [`characterize`](crate::characterize)
//! computes such points in memory; this module makes them a
//! **persistent, schema-validated, queryable database** so a sweep
//! run once (see the `chardb_sweep` bench driver) can answer
//! constraint queries forever after, including over the `hdp-service`
//! `select` wire verb.
//!
//! # File format
//!
//! A database file is a single JSON document, written one point per
//! line so plain-text diffs and merges stay readable:
//!
//! ```json
//! {"schema":"hdp-chardb-v1","points":[
//! {"design":{...},"board":"xsb300e","ffs":8,"luts":22,"brams":0,
//!  "clk_khz":68000,"access_cycles":1,"power_uw":15234},
//! ...
//! ]}
//! ```
//!
//! The `design` object is the canonical `hdp-conform-repro-v1`
//! design encoding ([`hdp_conform::wire::spec_to_json`]), so the
//! database shares its content-addressing with the service's plan
//! cache: a record's key is `design_hash(spec)@board`. Metrics are
//! stored as integers (`clk_khz`, `power_uw`) because the wire JSON
//! layer is integer-only; the convenience accessors
//! [`CharRecord::clk_mhz`] and [`CharRecord::power_mw`] convert back.
//!
//! Loading validates the schema string, every design object, metric
//! sanity (a zero clock or zero access count is corrupt) and key
//! uniqueness; each failure is a named [`CharDbError`] variant, never
//! a panic.

use crate::board::Xsb300e;
use crate::power::estimate_mw;
use crate::{synthesize, SynthReport};
use hdp_conform::json::Json;
use hdp_conform::wire::{design_hash, parse_spec, spec_to_json};
use hdp_hdl::prim::Prim;
use hdp_hdl::HdlError;
use hdp_metagen::sampler::DesignSpec;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// The schema identifier every v1 database carries.
pub const CHARDB_SCHEMA: &str = "hdp-chardb-v1";

/// LUT/FF-cell equivalent of one 4-kbit Block SelectRAM, for the
/// scalar area figure [`CharRecord::area_cells`]: 4096 bits at the
/// 16 bits a LUT provides as distributed RAM.
pub const BRAM_AREA_CELLS: u64 = 256;

/// A structured failure of database parsing, loading or appending.
///
/// The enum is `#[non_exhaustive]`: future revisions may add variants
/// without a semver break.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CharDbError {
    /// The file could not be read or written.
    Io {
        /// The offending path.
        path: String,
        /// The OS error description.
        detail: String,
    },
    /// The text is not syntactically valid JSON.
    Syntax {
        /// The underlying parser's description.
        detail: String,
    },
    /// The document's `schema` field is missing or names a different
    /// format (including a future major version of this one).
    Schema {
        /// The schema string found, if any.
        found: Option<String>,
    },
    /// A required field is missing, has the wrong JSON type, or holds
    /// an out-of-range or insane value.
    Field {
        /// Dotted path of the offending field
        /// (e.g. `points[3].clk_khz`).
        path: String,
        /// What was wrong with it.
        detail: String,
    },
    /// Two records with the same `design_hash(spec)@board` key
    /// disagree on their metrics — the database would be ambiguous.
    Conflict {
        /// The contested key.
        key: String,
        /// Which metrics disagree.
        detail: String,
    },
}

impl fmt::Display for CharDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CharDbError::Io { path, detail } => write!(f, "chardb io `{path}`: {detail}"),
            CharDbError::Syntax { detail } => write!(f, "malformed chardb JSON: {detail}"),
            CharDbError::Schema { found: Some(s) } => {
                write!(f, "not an `{CHARDB_SCHEMA}` database (schema is `{s}`)")
            }
            CharDbError::Schema { found: None } => {
                write!(f, "not an `{CHARDB_SCHEMA}` database (no `schema` field)")
            }
            CharDbError::Field { path, detail } => write!(f, "bad field `{path}`: {detail}"),
            CharDbError::Conflict { key, detail } => {
                write!(f, "conflicting records for `{key}`: {detail}")
            }
        }
    }
}

impl std::error::Error for CharDbError {}

fn bad(path: impl Into<String>, detail: impl Into<String>) -> CharDbError {
    CharDbError::Field {
        path: path.into(),
        detail: detail.into(),
    }
}

/// One characterised point of the design space: a design
/// specification, the board it was costed for, and the §3.4 metric
/// triple (area, access time, power) plus the achievable clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharRecord {
    /// The design-space point (family, widths, depths, ops…).
    pub spec: DesignSpec,
    /// The board the cost model ran for (`"xsb300e"`).
    pub board: String,
    /// Flip-flop count, device macros included.
    pub ffs: usize,
    /// 4-input LUT count.
    pub luts: usize,
    /// Block SelectRAM count.
    pub brams: usize,
    /// Achievable clock in kHz (integer so the wire JSON stays
    /// integer-only; see [`CharRecord::clk_mhz`]).
    pub clk_khz: u64,
    /// Cycles for one element access in steady state.
    pub access_cycles: u32,
    /// Estimated power at the achievable clock, in µW (see
    /// [`CharRecord::power_mw`]).
    pub power_uw: u64,
}

impl CharRecord {
    /// The record's database key: `design_hash(spec)@board`, sharing
    /// the content address of the service's plan cache.
    #[must_use]
    pub fn key(&self) -> String {
        format!("{}@{}", design_hash(&self.spec), self.board)
    }

    /// Scalar area figure for comparisons and the Pareto frontier:
    /// `ffs + luts + brams × `[`BRAM_AREA_CELLS`].
    #[must_use]
    pub fn area_cells(&self) -> u64 {
        self.ffs as u64 + self.luts as u64 + self.brams as u64 * BRAM_AREA_CELLS
    }

    /// The achievable clock in MHz.
    #[must_use]
    pub fn clk_mhz(&self) -> f64 {
        self.clk_khz as f64 / 1000.0
    }

    /// The estimated power in mW.
    #[must_use]
    pub fn power_mw(&self) -> f64 {
        self.power_uw as f64 / 1000.0
    }

    /// Whether the metric fields pass the integrity floor: a clock
    /// and an access count of zero are corrupt, not slow.
    fn validate(&self, path: &str) -> Result<(), CharDbError> {
        if self.clk_khz == 0 {
            return Err(bad(format!("{path}.clk_khz"), "zero clock"));
        }
        if self.access_cycles == 0 {
            return Err(bad(format!("{path}.access_cycles"), "zero access cycles"));
        }
        Ok(())
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("design".to_owned(), spec_to_json(&self.spec)),
            ("board".to_owned(), Json::Str(self.board.clone())),
            ("ffs".to_owned(), Json::Num(self.ffs as u64)),
            ("luts".to_owned(), Json::Num(self.luts as u64)),
            ("brams".to_owned(), Json::Num(self.brams as u64)),
            ("clk_khz".to_owned(), Json::Num(self.clk_khz)),
            (
                "access_cycles".to_owned(),
                Json::Num(u64::from(self.access_cycles)),
            ),
            ("power_uw".to_owned(), Json::Num(self.power_uw)),
        ])
    }

    fn from_json(obj: &Json, path: &str) -> Result<Self, CharDbError> {
        let num = |key: &str| -> Result<u64, CharDbError> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(format!("{path}.{key}"), "missing or non-numeric"))
        };
        let spec = parse_spec(
            obj.get("design")
                .ok_or_else(|| bad(format!("{path}.design"), "missing"))?,
        )
        .map_err(|e| bad(format!("{path}.design"), e.to_string()))?;
        let record = CharRecord {
            spec,
            board: obj
                .get("board")
                .and_then(Json::as_str)
                .ok_or_else(|| bad(format!("{path}.board"), "missing or non-string"))?
                .to_owned(),
            ffs: num("ffs")? as usize,
            luts: num("luts")? as usize,
            brams: num("brams")? as usize,
            clk_khz: num("clk_khz")?,
            access_cycles: u32::try_from(num("access_cycles")?)
                .map_err(|_| bad(format!("{path}.access_cycles"), "out of range"))?,
            power_uw: num("power_uw")?,
        };
        record.validate(path)?;
        Ok(record)
    }
}

impl fmt::Display for CharRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<40} on {:<8} | {:>4} FF {:>4} LUT {:>2} BRAM | {:>5.1} MHz | {:>2} cyc | {:>6.1} mW",
            self.spec.label(),
            self.board,
            self.ffs,
            self.luts,
            self.brams,
            self.clk_mhz(),
            self.access_cycles,
            self.power_mw()
        )
    }
}

/// A constraint filter over the database, every axis optional — the
/// paper's "region of interest given a certain set of constraints",
/// now against persistent data.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Query {
    /// Container kind (`"queue"`, `"stack"`, …) the point must have.
    pub kind: Option<String>,
    /// Physical target (`"fifo_core"`, `"sram"`, …) the point must
    /// map to.
    pub target: Option<String>,
    /// Board the point must be characterised for.
    pub board: Option<String>,
    /// Minimum element width in bits.
    pub min_data_width: Option<usize>,
    /// Minimum capacity in elements.
    pub min_depth: Option<usize>,
    /// Minimum achievable clock in kHz.
    pub min_clk_khz: Option<u64>,
    /// Maximum scalar area ([`CharRecord::area_cells`]).
    pub max_area_cells: Option<u64>,
    /// Maximum power in µW.
    pub max_power_uw: Option<u64>,
    /// Maximum cycles per element access.
    pub max_access_cycles: Option<u32>,
}

impl Query {
    /// Whether a record satisfies every present constraint.
    #[must_use]
    pub fn matches(&self, r: &CharRecord) -> bool {
        self.kind.as_deref().is_none_or(|k| r.spec.kind() == k)
            && self.target.as_deref().is_none_or(|t| r.spec.target() == t)
            && self.board.as_deref().is_none_or(|b| r.board == b)
            && self.min_data_width.is_none_or(|m| r.spec.data_width >= m)
            && self.min_depth.is_none_or(|m| r.spec.depth >= m)
            && self.min_clk_khz.is_none_or(|m| r.clk_khz >= m)
            && self.max_area_cells.is_none_or(|m| r.area_cells() <= m)
            && self.max_power_uw.is_none_or(|m| r.power_uw <= m)
            && self.max_access_cycles.is_none_or(|m| r.access_cycles <= m)
    }
}

/// The characterisation database: an insertion-ordered record store
/// with a unique-key index, (de)serialisable as the versioned
/// [`CHARDB_SCHEMA`] plain-text format.
#[derive(Debug, Clone, Default)]
pub struct CharDb {
    records: Vec<CharRecord>,
    index: BTreeMap<String, usize>,
}

impl CharDb {
    /// An empty database.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records in insertion order.
    #[must_use]
    pub fn records(&self) -> &[CharRecord] {
        &self.records
    }

    /// Looks up a record by its `design_hash@board` key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&CharRecord> {
        self.index.get(key).map(|&i| &self.records[i])
    }

    /// Appends one record. Returns `Ok(true)` when it was inserted,
    /// `Ok(false)` when an identical record was already present (the
    /// append is idempotent).
    ///
    /// # Errors
    ///
    /// [`CharDbError::Conflict`] when a record with the same key but
    /// *different* metrics exists — the database never silently
    /// overwrites a measurement.
    ///
    /// # Example
    ///
    /// ```
    /// use hdp_synth::board::Xsb300e;
    /// use hdp_synth::chardb::{characterize_spec, CharDb};
    /// use hdp_metagen::sampler::DesignSpec;
    /// use hdp_metagen::{MethodOp, OpSet};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let spec = DesignSpec {
    ///     family: 5, // queue over an embedded FIFO core
    ///     data_width: 8,
    ///     depth: 4,
    ///     addr_width: 8,
    ///     key_width: 4,
    ///     wide: 0,
    ///     write_side: false,
    ///     ops: OpSet::of(&[MethodOp::Push, MethodOp::Pop]),
    ///     wr_period: 1,
    ///     rd_period: 1,
    /// };
    /// let record = characterize_spec(&spec, &Xsb300e::new())?;
    /// let mut db = CharDb::new();
    /// assert!(db.append(record.clone())?);   // inserted
    /// assert!(!db.append(record.clone())?);  // identical duplicate
    /// assert_eq!(db.len(), 1);
    /// assert_eq!(db.get(&record.key()), Some(&record));
    /// # Ok(())
    /// # }
    /// ```
    pub fn append(&mut self, record: CharRecord) -> Result<bool, CharDbError> {
        let key = record.key();
        if let Some(&i) = self.index.get(&key) {
            let existing = &self.records[i];
            if *existing == record {
                return Ok(false);
            }
            return Err(CharDbError::Conflict {
                key,
                detail: format!(
                    "stored {}/{}/{} cells {} kHz {} µW vs appended {}/{}/{} cells {} kHz {} µW",
                    existing.ffs,
                    existing.luts,
                    existing.brams,
                    existing.clk_khz,
                    existing.power_uw,
                    record.ffs,
                    record.luts,
                    record.brams,
                    record.clk_khz,
                    record.power_uw
                ),
            });
        }
        self.index.insert(key, self.records.len());
        self.records.push(record);
        Ok(true)
    }

    /// Merges another database into this one (idempotent: identical
    /// records are skipped). Returns how many records were newly
    /// added.
    ///
    /// # Errors
    ///
    /// [`CharDbError::Conflict`] on the first key whose metrics
    /// disagree between the two databases; records before it are
    /// already merged.
    pub fn merge(&mut self, other: &CharDb) -> Result<usize, CharDbError> {
        let mut added = 0;
        for record in &other.records {
            if self.append(record.clone())? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// All records satisfying a [`Query`], in insertion order.
    ///
    /// # Example
    ///
    /// ```
    /// use hdp_synth::board::Xsb300e;
    /// use hdp_synth::chardb::{characterize_spec, CharDb, Query};
    /// use hdp_metagen::sampler::DesignSpec;
    /// use hdp_metagen::{MethodOp, OpSet};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let board = Xsb300e::new();
    /// let mut db = CharDb::new();
    /// for family in [0, 1] { // read buffer over FIFO core vs SRAM
    ///     let spec = DesignSpec {
    ///         family,
    ///         data_width: 8,
    ///         depth: 4,
    ///         addr_width: 16,
    ///         key_width: 4,
    ///         wide: 0,
    ///         write_side: false,
    ///         ops: OpSet::of(&[MethodOp::Pop]),
    ///         wr_period: 1,
    ///         rd_period: 1,
    ///     };
    ///     db.append(characterize_spec(&spec, &board)?)?;
    /// }
    /// // Single-cycle access rules out the external SRAM target.
    /// let fast = db.query(&Query {
    ///     max_access_cycles: Some(1),
    ///     ..Query::default()
    /// });
    /// assert_eq!(fast.len(), 1);
    /// assert_eq!(fast[0].spec.target(), "fifo_core");
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn query(&self, q: &Query) -> Vec<&CharRecord> {
        self.records.iter().filter(|r| q.matches(r)).collect()
    }

    /// The Pareto frontier over (area, access time, power): records
    /// not dominated by any other record that is no worse on all
    /// three axes and strictly better on at least one.
    ///
    /// # Example
    ///
    /// ```
    /// use hdp_synth::board::Xsb300e;
    /// use hdp_synth::chardb::{characterize_spec, CharDb};
    /// use hdp_metagen::sampler::DesignSpec;
    /// use hdp_metagen::{MethodOp, OpSet};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let board = Xsb300e::new();
    /// let mut db = CharDb::new();
    /// for family in [0, 1] {
    ///     let spec = DesignSpec {
    ///         family,
    ///         data_width: 8,
    ///         depth: 512, // deep enough that the FIFO core needs a block RAM
    ///         addr_width: 16,
    ///         key_width: 4,
    ///         wide: 0,
    ///         write_side: false,
    ///         ops: OpSet::of(&[MethodOp::Pop]),
    ///         wr_period: 1,
    ///         rd_period: 1,
    ///     };
    ///     db.append(characterize_spec(&spec, &board)?)?;
    /// }
    /// // The FIFO core is the fast point, the SRAM the cheap point:
    /// // neither dominates, so both sit on the frontier.
    /// assert_eq!(db.pareto().len(), 2);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn pareto(&self) -> Vec<&CharRecord> {
        let metric = |r: &CharRecord| (r.area_cells(), u64::from(r.access_cycles), r.power_uw);
        self.records
            .iter()
            .filter(|r| {
                let (a, t, p) = metric(r);
                !self.records.iter().any(|o| {
                    let (oa, ot, op) = metric(o);
                    oa <= a && ot <= t && op <= p && (oa < a || ot < t || op < p)
                })
            })
            .collect()
    }

    /// Coverage counts per `(kind, target)` family, for sweep
    /// summaries and smoke checks.
    #[must_use]
    pub fn coverage(&self) -> BTreeMap<(&'static str, &'static str), usize> {
        let mut counts = BTreeMap::new();
        for r in &self.records {
            *counts.entry((r.spec.kind(), r.spec.target())).or_insert(0) += 1;
        }
        counts
    }

    /// Serialises the database as the [`CHARDB_SCHEMA`] plain-text
    /// format: valid JSON, one record per line.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = format!("{{\"schema\":\"{CHARDB_SCHEMA}\",\"points\":[");
        for (i, record) in self.records.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&record.to_json().to_string());
        }
        out.push_str("\n]}\n");
        out
    }

    /// Parses a database from its serialised text, running the full
    /// integrity pass: schema check, per-record field validation,
    /// metric sanity and key uniqueness.
    ///
    /// # Errors
    ///
    /// [`CharDbError::Syntax`] for malformed JSON,
    /// [`CharDbError::Schema`] for a foreign or missing schema
    /// string, [`CharDbError::Field`] for a bad record, and
    /// [`CharDbError::Conflict`] for duplicate keys with differing
    /// metrics.
    pub fn parse(text: &str) -> Result<Self, CharDbError> {
        let doc = Json::parse(text).map_err(|detail| CharDbError::Syntax { detail })?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(s) if s == CHARDB_SCHEMA => {}
            found => {
                return Err(CharDbError::Schema {
                    found: found.map(str::to_owned),
                })
            }
        }
        let points = doc
            .get("points")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("points", "missing or not an array"))?;
        let mut db = CharDb::new();
        for (i, point) in points.iter().enumerate() {
            db.append(CharRecord::from_json(point, &format!("points[{i}]"))?)?;
        }
        Ok(db)
    }

    /// Writes the database to a file.
    ///
    /// # Errors
    ///
    /// [`CharDbError::Io`] on filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CharDbError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_text()).map_err(|e| CharDbError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })
    }

    /// Reads and validates a database file ([`CharDb::parse`]).
    ///
    /// # Errors
    ///
    /// [`CharDbError::Io`] on filesystem failures, otherwise as
    /// [`CharDb::parse`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CharDbError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| CharDbError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        Self::parse(&text)
    }
}

/// Cycles for one element access in steady state, per family — the
/// access-time axis of the §3.4 triple. Mirrors the per-target
/// figures of [`characterize`](crate::characterize): stream cores
/// answer in one cycle, on-chip block RAM needs issue + data, the
/// external SRAM pays the req/ack round trip, and the Gray-code CDC
/// queue pays the two-flop synchroniser.
#[must_use]
pub fn access_cycles_for(spec: &DesignSpec, board: &Xsb300e) -> u32 {
    match spec.family {
        1 => 2 * board.sram_latency_cycles + 2,
        6 | 7 | 11 => 2,
        _ => 1,
    }
}

/// Characterises one sampled design point on a board: instantiate,
/// synthesize, add the cost of any open-form device macro the wrapper
/// targets, and estimate power at the achievable clock — one
/// [`CharRecord`] ready for [`CharDb::append`].
///
/// Open-form wrappers (the Figure 4 `rbuffer_fifo`/`wbuffer_fifo`
/// and the open `stack_lifo`) talk to their core over a `p_*`
/// interface, so the macro is costed separately here exactly as the
/// [`characterize`](crate::characterize) sweep does; the closed
/// families embed the macro in the netlist and need no correction.
///
/// # Errors
///
/// Propagates generator and synthesis failures.
pub fn characterize_spec(spec: &DesignSpec, board: &Xsb300e) -> Result<CharRecord, HdlError> {
    let netlist = spec.instantiate()?;
    let wrapper = synthesize(&netlist)?;
    let report = match spec.family {
        // Open-form FIFO wrappers: add the dual-clock core macro and
        // clamp to its 125 MHz rating.
        0 | 2 => {
            let core = crate::map::prim_cost(&Prim::FifoMacro {
                depth: spec.depth,
                width: spec.data_width,
            });
            SynthReport {
                ffs: wrapper.ffs + core.ffs,
                luts: wrapper.luts + core.luts,
                brams: wrapper.brams + core.brams,
                clk_mhz: wrapper.clk_mhz.min(125.0),
            }
        }
        // Open-form LIFO wrapper: the stack core is rated 150 MHz.
        3 => {
            let core = crate::map::prim_cost(&Prim::LifoMacro {
                depth: spec.depth,
                width: spec.data_width,
            });
            SynthReport {
                ffs: wrapper.ffs + core.ffs,
                luts: wrapper.luts + core.luts,
                brams: wrapper.brams + core.brams,
                clk_mhz: wrapper.clk_mhz.min(150.0),
            }
        }
        _ => wrapper,
    };
    let power_mw = estimate_mw(
        crate::map::ResourceReport {
            ffs: report.ffs,
            luts: report.luts,
            brams: report.brams,
        },
        report.clk_mhz,
        0.125,
    );
    Ok(CharRecord {
        spec: spec.clone(),
        board: "xsb300e".to_owned(),
        ffs: report.ffs,
        luts: report.luts,
        brams: report.brams,
        clk_khz: (report.clk_mhz * 1000.0).round() as u64,
        access_cycles: access_cycles_for(spec, board),
        power_uw: (power_mw * 1000.0).round() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_metagen::{MethodOp, OpSet};

    fn spec(family: usize) -> DesignSpec {
        DesignSpec {
            family,
            data_width: 8,
            depth: 4,
            addr_width: 16,
            key_width: 4,
            wide: if family == 10 { 16 } else { 0 },
            write_side: false,
            ops: match family {
                0 | 1 => OpSet::of(&[MethodOp::Pop, MethodOp::Empty]),
                2 => OpSet::of(&[MethodOp::Push, MethodOp::Full]),
                3..=5 => OpSet::of(&[MethodOp::Push, MethodOp::Pop]),
                6 => OpSet::of(&[MethodOp::Read, MethodOp::Write]),
                7 => OpSet::of(&[MethodOp::Read, MethodOp::Write]),
                _ => OpSet::new(),
            },
            wr_period: if family == 11 { 2 } else { 1 },
            rd_period: if family == 11 { 3 } else { 1 },
        }
    }

    fn small_db() -> CharDb {
        let board = Xsb300e::new();
        let mut db = CharDb::new();
        for family in 0..hdp_metagen::sampler::FAMILIES.len() {
            db.append(characterize_spec(&spec(family), &board).unwrap())
                .unwrap();
        }
        db
    }

    #[test]
    fn every_family_characterizes() {
        let db = small_db();
        assert_eq!(db.len(), hdp_metagen::sampler::FAMILIES.len());
        for r in db.records() {
            assert!(r.clk_khz > 0, "{r}");
            assert!(r.power_uw >= 15_000, "{r}: below static floor");
            assert!(r.access_cycles >= 1, "{r}");
        }
    }

    #[test]
    fn open_form_wrappers_carry_their_core_macro() {
        let board = Xsb300e::new();
        // The open rbuffer and the closed queue target the same FIFO
        // core; both must pay for it (FFs from the macro's pointers).
        let open = characterize_spec(&spec(0), &board).unwrap();
        assert!(open.clk_mhz() <= 125.0);
        assert!(open.ffs > 0, "macro cost missing from open form");
        let sram = characterize_spec(&spec(1), &board).unwrap();
        assert_eq!(sram.access_cycles, 2 * board.sram_latency_cycles + 2);
        assert_eq!(open.access_cycles, 1);
    }

    #[test]
    fn round_trips_through_text() {
        let db = small_db();
        let text = db.to_text();
        let back = CharDb::parse(&text).unwrap();
        assert_eq!(back.records(), db.records());
        // One record per line between the header and the footer.
        assert_eq!(text.lines().count(), db.len() + 2);
    }

    #[test]
    fn append_is_idempotent_and_conflicts_are_named() {
        let board = Xsb300e::new();
        let mut db = CharDb::new();
        let r = characterize_spec(&spec(5), &board).unwrap();
        assert!(db.append(r.clone()).unwrap());
        assert!(!db.append(r.clone()).unwrap());
        assert_eq!(db.len(), 1);
        let mut forged = r;
        forged.luts += 1;
        match db.append(forged) {
            Err(CharDbError::Conflict { key, .. }) => assert!(key.ends_with("@xsb300e")),
            other => panic!("expected a conflict, got {other:?}"),
        }
    }

    #[test]
    fn merge_is_idempotent() {
        let db = small_db();
        let mut merged = CharDb::new();
        assert_eq!(merged.merge(&db).unwrap(), db.len());
        assert_eq!(merged.merge(&db).unwrap(), 0);
        assert_eq!(merged.len(), db.len());
    }

    #[test]
    fn rejects_wrong_schema_and_corrupt_text() {
        assert!(matches!(
            CharDb::parse("not json"),
            Err(CharDbError::Syntax { .. })
        ));
        match CharDb::parse("{\"points\":[]}") {
            Err(CharDbError::Schema { found: None }) => {}
            other => panic!("expected a schema error, got {other:?}"),
        }
        match CharDb::parse("{\"schema\":\"hdp-chardb-v2\",\"points\":[]}") {
            Err(CharDbError::Schema { found: Some(s) }) => assert_eq!(s, "hdp-chardb-v2"),
            other => panic!("expected a schema error, got {other:?}"),
        }
        // A zero clock is corrupt data, not a slow design.
        let board = Xsb300e::new();
        let mut db = CharDb::new();
        let r = characterize_spec(&spec(5), &board).unwrap();
        let needle = format!("\"clk_khz\":{}", r.clk_khz);
        db.append(r).unwrap();
        let corrupt = db.to_text().replace(&needle, "\"clk_khz\":0");
        match CharDb::parse(&corrupt) {
            Err(CharDbError::Field { path, .. }) => assert_eq!(path, "points[0].clk_khz"),
            other => panic!("expected a field error, got {other:?}"),
        }
    }

    #[test]
    fn queries_filter_on_every_axis() {
        let db = small_db();
        let queues = db.query(&Query {
            kind: Some("queue".into()),
            ..Query::default()
        });
        assert!(queues.iter().all(|r| r.spec.kind() == "queue"));
        assert!(queues.len() >= 2); // fifo_core and async_fifo targets
        let fast = db.query(&Query {
            max_access_cycles: Some(1),
            ..Query::default()
        });
        assert!(fast.iter().all(|r| r.access_cycles == 1));
        let none = db.query(&Query {
            min_clk_khz: Some(10_000_000),
            ..Query::default()
        });
        assert!(none.is_empty());
    }

    #[test]
    fn pareto_frontier_is_nonempty_and_nondominated() {
        let db = small_db();
        let frontier = db.pareto();
        assert!(!frontier.is_empty());
        for f in &frontier {
            for o in db.records() {
                let dominates = o.area_cells() <= f.area_cells()
                    && u64::from(o.access_cycles) <= u64::from(f.access_cycles)
                    && o.power_uw <= f.power_uw
                    && (o.area_cells() < f.area_cells()
                        || o.access_cycles < f.access_cycles
                        || o.power_uw < f.power_uw);
                assert!(!dominates, "{o} dominates frontier point {f}");
            }
        }
    }

    #[test]
    fn coverage_counts_family_axes() {
        let db = small_db();
        let cov = db.coverage();
        assert_eq!(cov.values().sum::<usize>(), db.len());
        assert_eq!(cov.get(&("queue", "async_fifo")), Some(&1));
    }

    #[test]
    fn save_and_load_round_trip() {
        let db = small_db();
        let path = std::env::temp_dir().join("hdp_chardb_roundtrip.json");
        db.save(&path).unwrap();
        let back = CharDb::load(&path).unwrap();
        assert_eq!(back.records(), db.records());
        std::fs::remove_file(&path).ok();
        match CharDb::load(std::env::temp_dir().join("hdp_chardb_missing.json")) {
            Err(CharDbError::Io { .. }) => {}
            other => panic!("expected io error, got {other:?}"),
        }
    }
}
