//! The XSB-300E target platform.
//!
//! "As a target platform we use the XSB-300E board from XESS" (§4):
//! a Xilinx Spartan-IIE XC2S300E with external SRAM, a SAA7113 video
//! decoder and a VGA DAC.

use crate::map::ResourceReport;

/// An FPGA device's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Device {
    /// Marketing name.
    pub name: &'static str,
    /// Available flip-flops.
    pub ffs: usize,
    /// Available 4-input LUTs.
    pub luts: usize,
    /// Available Block SelectRAMs.
    pub brams: usize,
}

impl Device {
    /// Whether a mapped design fits this device.
    #[must_use]
    pub fn fits(&self, r: ResourceReport) -> bool {
        r.ffs <= self.ffs && r.luts <= self.luts && r.brams <= self.brams
    }

    /// Utilisation of the scarcest resource, 0..=1 (or above 1 when
    /// the design does not fit).
    #[must_use]
    pub fn utilisation(&self, r: ResourceReport) -> f64 {
        let ff = r.ffs as f64 / self.ffs as f64;
        let lut = r.luts as f64 / self.luts as f64;
        let bram = r.brams as f64 / self.brams as f64;
        ff.max(lut).max(bram)
    }
}

/// The Spartan-IIE XC2S300E: 3072 slices (two LUT/FF pairs each) and
/// sixteen 4-kbit Block SelectRAMs.
pub const XC2S300E: Device = Device {
    name: "XC2S300E",
    ffs: 6144,
    luts: 6144,
    brams: 16,
};

/// The XSB-300E board: the FPGA plus its external SRAM timing.
#[derive(Debug, Clone, Copy)]
pub struct Xsb300e {
    /// The FPGA.
    pub device: Device,
    /// External SRAM access latency in system-clock cycles for the
    /// req/ack controller (a 10 ns asynchronous part behind
    /// registered pads needs two cycles at ~100 MHz).
    pub sram_latency_cycles: u32,
}

impl Default for Xsb300e {
    fn default() -> Self {
        Self {
            device: XC2S300E,
            sram_latency_cycles: 2,
        }
    }
}

impl Xsb300e {
    /// The default board configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_designs_fit_the_device() {
        // Table 3's largest row: 3145 FFs, 4170 LUTs, 2 block RAM.
        let blur = ResourceReport {
            ffs: 3145,
            luts: 4170,
            brams: 2,
        };
        assert!(XC2S300E.fits(blur));
        assert!(XC2S300E.utilisation(blur) < 1.0);
    }

    #[test]
    fn oversized_design_is_rejected() {
        let huge = ResourceReport {
            ffs: 10_000,
            luts: 100,
            brams: 0,
        };
        assert!(!XC2S300E.fits(huge));
        assert!(XC2S300E.utilisation(huge) > 1.0);
    }

    #[test]
    fn bram_is_the_scarce_resource_for_buffers() {
        let r = ResourceReport {
            ffs: 100,
            luts: 100,
            brams: 8,
        };
        assert_eq!(XC2S300E.utilisation(r), 0.5);
    }

    #[test]
    fn board_default() {
        let b = Xsb300e::new();
        assert_eq!(b.device.name, "XC2S300E");
        assert!(b.sram_latency_cycles >= 1);
    }
}
