//! Activity-based dynamic power model.
//!
//! Part of the §3.4 characterisation ("we obtained information about
//! data access times for every container, area, power consumption").
//! The model is the standard CV²f decomposition with per-resource
//! effective-capacitance coefficients in µW/MHz, calibrated to the
//! Spartan-II XPower classes.

use crate::map::ResourceReport;

/// Effective switching power per flip-flop, in µW/MHz at activity 1.
pub const UW_PER_FF_MHZ: f64 = 0.60;
/// Effective switching power per LUT, in µW/MHz at activity 1.
pub const UW_PER_LUT_MHZ: f64 = 0.85;
/// Effective switching power per active block RAM, in µW/MHz.
pub const UW_PER_BRAM_MHZ: f64 = 22.0;
/// Static (quiescent) power of the device in mW.
pub const STATIC_MW: f64 = 15.0;

/// Estimated power of a mapped design in mW.
///
/// `clk_mhz` is the operating clock and `activity` the average toggle
/// rate (0..=1; 0.125 is the usual datapath default).
///
/// # Example
///
/// ```
/// use hdp_synth::map::ResourceReport;
/// use hdp_synth::power::estimate_mw;
///
/// let r = ResourceReport { ffs: 100, luts: 150, brams: 2 };
/// let p = estimate_mw(r, 98.0, 0.125);
/// assert!(p > 15.0); // above static floor
/// ```
#[must_use]
pub fn estimate_mw(resources: ResourceReport, clk_mhz: f64, activity: f64) -> f64 {
    let dynamic_uw = activity
        * clk_mhz
        * (resources.ffs as f64 * UW_PER_FF_MHZ
            + resources.luts as f64 * UW_PER_LUT_MHZ
            + resources.brams as f64 * UW_PER_BRAM_MHZ);
    STATIC_MW + dynamic_uw / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_is_monotone_in_resources() {
        let small = ResourceReport {
            ffs: 10,
            luts: 10,
            brams: 0,
        };
        let big = ResourceReport {
            ffs: 100,
            luts: 100,
            brams: 2,
        };
        assert!(estimate_mw(big, 100.0, 0.125) > estimate_mw(small, 100.0, 0.125));
    }

    #[test]
    fn power_is_monotone_in_frequency_and_activity() {
        let r = ResourceReport {
            ffs: 50,
            luts: 80,
            brams: 1,
        };
        assert!(estimate_mw(r, 100.0, 0.125) > estimate_mw(r, 50.0, 0.125));
        assert!(estimate_mw(r, 100.0, 0.25) > estimate_mw(r, 100.0, 0.125));
    }

    #[test]
    fn idle_design_costs_static_power() {
        let r = ResourceReport::default();
        assert_eq!(estimate_mw(r, 100.0, 0.125), STATIC_MW);
    }
}
