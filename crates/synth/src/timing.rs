//! Register-to-register critical-path timing model.
//!
//! Delays are calibrated to Spartan-IIE (-6) datasheet classes: LUT
//! ~1.0 ns, average routed net ~1.3 ns, carry chain ~0.07 ns/bit,
//! FF clock-to-out 1.3 ns, FF setup 1.1 ns, Block SelectRAM
//! clock-to-out 3.1 ns. The model computes the longest purely
//! combinational path between sequential elements (or ports) by
//! dynamic programming over the combinational topological order.

use hdp_hdl::prim::{CmpKind, Prim};
use hdp_hdl::{HdlError, Netlist};

/// LUT propagation delay in ns.
pub const T_LUT: f64 = 1.0;
/// Average routed net delay in ns.
pub const T_NET: f64 = 1.3;
/// Carry-chain delay per bit in ns.
pub const T_CARRY_PER_BIT: f64 = 0.07;
/// Flip-flop clock-to-out in ns.
pub const T_CKO: f64 = 1.3;
/// Flip-flop setup in ns.
pub const T_SU: f64 = 1.1;
/// Block SelectRAM clock-to-out in ns.
pub const T_BRAM_CKO: f64 = 3.1;

/// Combinational propagation delay through one primitive, in ns
/// (excluding the input net delay, added per edge).
#[must_use]
pub fn prim_delay_ns(prim: &Prim) -> f64 {
    match prim {
        // Wiring and sequential primitives contribute no *through*
        // delay; sequential launch/capture is handled separately.
        Prim::Const { .. }
        | Prim::Buf { .. }
        | Prim::Slice { .. }
        | Prim::Concat { .. }
        | Prim::Not { .. }
        | Prim::Reg { .. }
        | Prim::BlockRam { .. }
        | Prim::FifoMacro { .. }
        | Prim::LifoMacro { .. } => 0.0,
        Prim::Gate { .. } => T_LUT,
        Prim::ReduceOr { width } | Prim::ReduceAnd { width } => {
            T_LUT * levels_for_inputs(*width) as f64
        }
        Prim::Add { width } | Prim::Sub { width } | Prim::Inc { width } => {
            T_LUT + T_CARRY_PER_BIT * *width as f64
        }
        Prim::Cmp { kind, width } => match kind {
            CmpKind::Eq | CmpKind::Ne => T_LUT * levels_for_inputs(*width * 2) as f64 * 0.5,
            CmpKind::Lt | CmpKind::Ge => T_LUT + T_CARRY_PER_BIT * *width as f64,
        },
        Prim::Mux { ways, .. } => {
            let stages = usize::max(1, (usize::BITS - (ways - 1).leading_zeros()) as usize);
            T_LUT * stages as f64
        }
        Prim::TruthTable { in_widths, .. } => {
            let k: usize = in_widths.iter().sum();
            T_LUT * levels_for_inputs(k) as f64
        }
        Prim::TriBuf { .. } => T_LUT, // TBUF enable path
    }
}

/// LUT-tree depth for a `k`-input function.
#[must_use]
pub fn levels_for_inputs(k: usize) -> usize {
    let mut remaining = k;
    let mut levels = 0;
    while remaining > 1 {
        remaining = remaining.div_ceil(4);
        levels += 1;
    }
    levels.max(1)
}

/// Launch delay of a sequential primitive's outputs in ns.
fn launch_ns(prim: &Prim) -> f64 {
    match prim {
        Prim::Reg { .. } => T_CKO,
        Prim::BlockRam { .. } => T_BRAM_CKO,
        // FIFO/LIFO macro read data comes from the internal block RAM
        // plus the fall-through bypass mux.
        Prim::FifoMacro { .. } | Prim::LifoMacro { .. } => T_BRAM_CKO + T_LUT,
        _ => 0.0,
    }
}

/// The longest register-to-register (or port-to-register) path in ns,
/// including launch, per-hop net delays and setup.
///
/// # Errors
///
/// Returns [`HdlError::CombinationalLoop`] if the netlist has one.
pub fn critical_path_ns(netlist: &Netlist) -> Result<f64, HdlError> {
    let order = netlist.comb_topo_order()?;
    // Arrival time per net, in ns.
    let mut arrival = vec![0.0f64; netlist.nets().len()];
    // Seed: sequential outputs launch at their clock-to-out; input
    // ports launch at an off-chip pad time (model: one net delay).
    for cell in netlist.cells() {
        if cell.prim().is_sequential() {
            let t = launch_ns(cell.prim());
            for &out in cell.outputs() {
                arrival[out.index()] = arrival[out.index()].max(t);
            }
        }
    }
    for binding in netlist.bindings() {
        let port = netlist
            .entity()
            .port(binding.port())
            .expect("binding validated against entity");
        if port.dir() == hdp_hdl::PortDir::In {
            arrival[binding.net().index()] = arrival[binding.net().index()].max(T_NET);
        }
    }
    // Propagate through combinational cells in topological order.
    // Pure wiring (buffers, slices, concatenations, folded inverters)
    // is not a routed hop: it disappears entirely in mapping, so it
    // adds neither logic nor net delay.
    for id in order {
        let cell = &netlist.cells()[id.index()];
        let worst_in = cell
            .inputs()
            .iter()
            .map(|n| arrival[n.index()])
            .fold(0.0f64, f64::max);
        let logic = prim_delay_ns(cell.prim());
        let is_wiring = matches!(
            cell.prim(),
            Prim::Buf { .. }
                | Prim::Slice { .. }
                | Prim::Concat { .. }
                | Prim::Const { .. }
                | Prim::Not { .. }
        );
        let t = if is_wiring {
            worst_in
        } else {
            worst_in + T_NET + logic
        };
        for &out in cell.outputs() {
            arrival[out.index()] = arrival[out.index()].max(t);
        }
    }
    // Capture: the worst arrival at any sequential input plus setup;
    // output ports capture with a pad time.
    let mut worst: f64 = 0.0;
    for cell in netlist.cells() {
        if cell.prim().is_sequential() {
            for &input in cell.inputs() {
                worst = worst.max(arrival[input.index()] + T_NET + T_SU);
            }
        }
    }
    for binding in netlist.bindings() {
        let port = netlist
            .entity()
            .port(binding.port())
            .expect("binding validated against entity");
        if port.dir() != hdp_hdl::PortDir::In {
            worst = worst.max(arrival[binding.net().index()] + T_NET);
        }
    }
    Ok(worst)
}

/// Achievable clock frequency estimate in MHz.
///
/// # Errors
///
/// Returns [`HdlError::CombinationalLoop`] if the netlist has one.
pub fn fmax_mhz(netlist: &Netlist) -> Result<f64, HdlError> {
    let path = critical_path_ns(netlist)?;
    if path <= 0.0 {
        // A netlist with no logic at all: report the global clock
        // ceiling of the device family.
        return Ok(200.0);
    }
    Ok((1000.0 / path).min(200.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_hdl::{Entity, Netlist, PortDir};

    fn pipeline(depth_between_regs: usize) -> Netlist {
        // reg -> inc^n -> reg
        let entity = Entity::builder("p")
            .port("d", PortDir::In, 8)
            .unwrap()
            .port("q", PortDir::Out, 8)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let d = nl.add_net("d", 8).unwrap();
        let mut cur = nl.add_net("r0", 8).unwrap();
        nl.add_cell(
            "in_reg",
            Prim::Reg {
                width: 8,
                has_enable: false,
                reset_value: 0,
            },
            vec![d],
            vec![cur],
        )
        .unwrap();
        for i in 0..depth_between_regs {
            let next = nl.add_net(format!("n{i}"), 8).unwrap();
            nl.add_cell(
                format!("u{i}"),
                Prim::Inc { width: 8 },
                vec![cur],
                vec![next],
            )
            .unwrap();
            cur = next;
        }
        let q = nl.add_net("q", 8).unwrap();
        nl.add_cell(
            "out_reg",
            Prim::Reg {
                width: 8,
                has_enable: false,
                reset_value: 0,
            },
            vec![cur],
            vec![q],
        )
        .unwrap();
        nl.bind_port("d", d).unwrap();
        nl.bind_port("q", q).unwrap();
        nl
    }

    #[test]
    fn longer_logic_chains_are_slower() {
        let f1 = fmax_mhz(&pipeline(1)).unwrap();
        let f4 = fmax_mhz(&pipeline(4)).unwrap();
        let f8 = fmax_mhz(&pipeline(8)).unwrap();
        assert!(f1 > f4 && f4 > f8, "{f1} {f4} {f8}");
    }

    #[test]
    fn single_stage_lands_in_spartan2_range() {
        // One adder between registers: the classic ~100 MHz class.
        let f = fmax_mhz(&pipeline(1)).unwrap();
        assert!((80.0..200.0).contains(&f), "{f}");
    }

    #[test]
    fn empty_netlist_reports_device_ceiling() {
        let entity = Entity::builder("e")
            .port("a", PortDir::In, 1)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let a = nl.add_net("a", 1).unwrap();
        nl.bind_port("a", a).unwrap();
        assert_eq!(fmax_mhz(&nl).unwrap(), 200.0);
    }

    #[test]
    fn levels_formula() {
        assert_eq!(levels_for_inputs(1), 1);
        assert_eq!(levels_for_inputs(4), 1);
        assert_eq!(levels_for_inputs(5), 2);
        assert_eq!(levels_for_inputs(16), 2);
        assert_eq!(levels_for_inputs(17), 3);
    }

    #[test]
    fn carry_chain_scales_with_width() {
        let narrow = prim_delay_ns(&Prim::Add { width: 4 });
        let wide = prim_delay_ns(&Prim::Add { width: 32 });
        assert!(wide > narrow);
    }
}
