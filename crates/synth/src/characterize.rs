//! Design-space characterisation (§3.4).
//!
//! "Since components are generated automatically, it is feasible to
//! generate versions of each one for every physical target and range
//! of configuration parameters. This characterization of the design
//! space would delimit the region of interest given a certain set of
//! constraints."
//!
//! [`sweep`] is the small in-memory demonstration of that idea: it
//! invokes the metaprogramming generator for a read/write-buffer
//! container×target×parameter grid, synthesizes each variant, and
//! records area, access time and power; [`region_of_interest`] then
//! filters the table by constraints.
//!
//! The production form of the same sweep lives in [`crate::chardb`]:
//! [`crate::chardb::characterize_spec`] characterises *any* sampled
//! [`DesignSpec`](hdp_metagen::sampler::DesignSpec) (all families,
//! every physical target) into a persistent, versioned
//! `hdp-chardb-v1` database with constraint queries, a Pareto
//! frontier, and the [`crate::select::auto_select`] optimiser on
//! top — see `docs/CHARACTERIZATION.md` and the `chardb_sweep`
//! bench driver. Prefer the database for anything beyond a quick
//! table; this module remains the paper-shaped CSV exhibit.

use crate::board::Xsb300e;
use crate::power::estimate_mw;
use crate::{synthesize, SynthReport};
use hdp_hdl::HdlError;
use hdp_metagen::container_gen::{rbuffer_fifo, rbuffer_sram, wbuffer_fifo, ContainerParams};
use hdp_metagen::design;
use hdp_metagen::ops::{MethodOp, OpSet};
use std::fmt;

/// One point of the characterised design space.
#[derive(Debug, Clone)]
pub struct CharPoint {
    /// Container family (`"rbuffer"`, `"wbuffer"`).
    pub container: &'static str,
    /// Physical target (`"fifo core"`, `"external sram"`).
    pub target: &'static str,
    /// Element width in bits.
    pub data_width: usize,
    /// Capacity in elements.
    pub depth: usize,
    /// On-chip cost and clock, device macro included.
    pub report: SynthReport,
    /// Cycles for one element access in steady state.
    pub access_cycles: u32,
    /// Estimated power at the achievable clock, in mW.
    pub power_mw: f64,
}

impl fmt::Display for CharPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} over {:<13} {:>2}b x{:<4} | {:>4} FF {:>4} LUT {:>2} BRAM | {:>3.0} MHz | {:>2} cyc/access | {:>5.1} mW",
            self.container,
            self.target,
            self.data_width,
            self.depth,
            self.report.ffs,
            self.report.luts,
            self.report.brams,
            self.report.clk_mhz,
            self.access_cycles,
            self.power_mw
        )
    }
}

/// The parameter grid of a sweep.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Element widths to characterise.
    pub data_widths: Vec<usize>,
    /// Capacities to characterise.
    pub depths: Vec<usize>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        Self {
            data_widths: vec![8, 16, 24],
            depths: vec![64, 256, 512, 1024],
        }
    }
}

/// Runs the full characterisation sweep on the given board.
///
/// # Errors
///
/// Propagates generator and synthesis failures.
pub fn sweep(board: &Xsb300e, grid: &SweepGrid) -> Result<Vec<CharPoint>, HdlError> {
    let mut points = Vec::new();
    let activity = 0.125;
    for &data_width in &grid.data_widths {
        for &depth in &grid.depths {
            let params = ContainerParams {
                data_width,
                depth,
                addr_width: 16,
            };
            // Read buffer over a FIFO core: container wrapper plus the
            // dual-clock core macro.
            {
                let wrapper = synthesize(&rbuffer_fifo(params, OpSet::figure4())?)?;
                let core = crate::map::prim_cost(&hdp_hdl::prim::Prim::FifoMacro {
                    depth,
                    width: data_width,
                });
                let report = SynthReport {
                    ffs: wrapper.ffs + core.ffs,
                    luts: wrapper.luts + core.luts,
                    brams: wrapper.brams + core.brams,
                    clk_mhz: wrapper.clk_mhz.min(125.0),
                };
                points.push(CharPoint {
                    container: "rbuffer",
                    target: "fifo core",
                    data_width,
                    depth,
                    report,
                    access_cycles: 1,
                    power_mw: estimate_mw(
                        crate::map::ResourceReport {
                            ffs: report.ffs,
                            luts: report.luts,
                            brams: report.brams,
                        },
                        report.clk_mhz,
                        activity,
                    ),
                });
            }
            // Read buffer over external SRAM: the generated FSM; the
            // storage is off-chip.
            {
                let report = synthesize(&rbuffer_sram(params, OpSet::figure4())?)?;
                let access = 2 * board.sram_latency_cycles + 2;
                points.push(CharPoint {
                    container: "rbuffer",
                    target: "external sram",
                    data_width,
                    depth,
                    report,
                    access_cycles: access,
                    power_mw: estimate_mw(
                        crate::map::ResourceReport {
                            ffs: report.ffs,
                            luts: report.luts,
                            brams: report.brams,
                        },
                        report.clk_mhz,
                        activity,
                    ),
                });
            }
            // Write buffer over a FIFO core.
            {
                let wrapper = synthesize(&wbuffer_fifo(
                    params,
                    OpSet::of(&[MethodOp::Push, MethodOp::Full]),
                )?)?;
                let core = crate::map::prim_cost(&hdp_hdl::prim::Prim::FifoMacro {
                    depth,
                    width: data_width,
                });
                let report = SynthReport {
                    ffs: wrapper.ffs + core.ffs,
                    luts: wrapper.luts + core.luts,
                    brams: wrapper.brams + core.brams,
                    clk_mhz: wrapper.clk_mhz.min(125.0),
                };
                points.push(CharPoint {
                    container: "wbuffer",
                    target: "fifo core",
                    data_width,
                    depth,
                    report,
                    access_cycles: 1,
                    power_mw: estimate_mw(
                        crate::map::ResourceReport {
                            ffs: report.ffs,
                            luts: report.luts,
                            brams: report.brams,
                        },
                        report.clk_mhz,
                        activity,
                    ),
                });
            }
            // Stack over a LIFO core.
            {
                let wrapper = synthesize(&hdp_metagen::stack_gen::stack_lifo(
                    params,
                    OpSet::of(&[
                        MethodOp::Push,
                        MethodOp::Pop,
                        MethodOp::Empty,
                        MethodOp::Full,
                    ]),
                )?)?;
                let core = crate::map::prim_cost(&hdp_hdl::prim::Prim::LifoMacro {
                    depth,
                    width: data_width,
                });
                let report = SynthReport {
                    ffs: wrapper.ffs + core.ffs,
                    luts: wrapper.luts + core.luts,
                    brams: wrapper.brams + core.brams,
                    clk_mhz: wrapper.clk_mhz.min(150.0),
                };
                points.push(CharPoint {
                    container: "stack",
                    target: "lifo core",
                    data_width,
                    depth,
                    report,
                    access_cycles: 1,
                    power_mw: estimate_mw(
                        crate::map::ResourceReport {
                            ffs: report.ffs,
                            luts: report.luts,
                            brams: report.brams,
                        },
                        report.clk_mhz,
                        activity,
                    ),
                });
            }
            // Vector over on-chip block RAM (random iterator).
            {
                let report = synthesize(&hdp_metagen::stack_gen::vector_bram(
                    params,
                    OpSet::of(&[
                        MethodOp::Read,
                        MethodOp::Write,
                        MethodOp::Inc,
                        MethodOp::Dec,
                        MethodOp::Index,
                    ]),
                )?)?;
                points.push(CharPoint {
                    container: "vector",
                    target: "block ram",
                    data_width,
                    depth,
                    report,
                    access_cycles: 2, // synchronous read: issue + data
                    power_mw: estimate_mw(
                        crate::map::ResourceReport {
                            ffs: report.ffs,
                            luts: report.luts,
                            brams: report.brams,
                        },
                        report.clk_mhz,
                        activity,
                    ),
                });
            }
        }
    }
    Ok(points)
}

/// Constraints delimiting the region of interest.
#[derive(Debug, Clone, Copy, Default)]
pub struct Constraints {
    /// Maximum block RAMs the container may consume.
    pub max_brams: Option<usize>,
    /// Maximum LUTs.
    pub max_luts: Option<usize>,
    /// Maximum flip-flops.
    pub max_ffs: Option<usize>,
    /// Maximum cycles per element access.
    pub max_access_cycles: Option<u32>,
    /// Maximum power in mW.
    pub max_power_mw: Option<f64>,
}

/// Filters a sweep down to the points meeting every constraint — the
/// paper's "region of interest given a certain set of constraints".
#[must_use]
pub fn region_of_interest(points: &[CharPoint], constraints: Constraints) -> Vec<&CharPoint> {
    points
        .iter()
        .filter(|p| {
            constraints.max_brams.is_none_or(|m| p.report.brams <= m)
                && constraints.max_luts.is_none_or(|m| p.report.luts <= m)
                && constraints.max_ffs.is_none_or(|m| p.report.ffs <= m)
                && constraints
                    .max_access_cycles
                    .is_none_or(|m| p.access_cycles <= m)
                && constraints.max_power_mw.is_none_or(|m| p.power_mw <= m)
        })
        .collect()
}

/// Serialises a sweep as CSV (header plus one row per point), for
/// external plotting of the design space.
#[must_use]
pub fn to_csv(points: &[CharPoint]) -> String {
    let mut out = String::from(
        "container,target,data_width,depth,ffs,luts,brams,clk_mhz,access_cycles,power_mw\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{:.1},{},{:.2}\n",
            p.container,
            p.target,
            p.data_width,
            p.depth,
            p.report.ffs,
            p.report.luts,
            p.report.brams,
            p.report.clk_mhz,
            p.access_cycles,
            p.power_mw
        ));
    }
    out
}

/// Synthesizes all six Table 3 rows (three designs × two styles) with
/// the paper's default parameters — the core of the Table 3
/// experiment.
///
/// # Errors
///
/// Propagates generator and synthesis failures.
pub fn table3_rows() -> Result<Vec<(design::DesignKind, design::Style, SynthReport)>, HdlError> {
    let mut rows = Vec::new();
    for kind in design::DesignKind::ALL {
        for style in [design::Style::Pattern, design::Style::Custom] {
            let d = design::generate(kind, style, design::DesignParams::paper_default())?;
            rows.push((kind, style, synthesize(&d.netlist)?));
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_metagen::design::{DesignKind, Style};

    #[test]
    fn sweep_covers_the_grid() {
        let grid = SweepGrid {
            data_widths: vec![8],
            depths: vec![64, 512],
        };
        let points = sweep(&Xsb300e::new(), &grid).unwrap();
        // 5 container/target combinations x 2 depths.
        assert_eq!(points.len(), 10);
        assert!(points.iter().all(|p| p.report.clk_mhz > 0.0));
    }

    #[test]
    fn sram_container_uses_no_bram_fifo_does() {
        let grid = SweepGrid {
            data_widths: vec![8],
            depths: vec![512],
        };
        let points = sweep(&Xsb300e::new(), &grid).unwrap();
        let fifo = points
            .iter()
            .find(|p| p.container == "rbuffer" && p.target == "fifo core")
            .unwrap();
        let sram = points
            .iter()
            .find(|p| p.container == "rbuffer" && p.target == "external sram")
            .unwrap();
        assert!(fifo.report.brams > 0);
        assert_eq!(sram.report.brams, 0);
        // The paper's trade-off: the FIFO is the fast point, the SRAM
        // the cheap point.
        assert!(fifo.access_cycles < sram.access_cycles);
        assert!(fifo.report.ffs > sram.report.ffs);
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let grid = SweepGrid {
            data_widths: vec![8],
            depths: vec![64],
        };
        let points = sweep(&Xsb300e::new(), &grid).unwrap();
        let csv = to_csv(&points);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("container,target"));
        assert_eq!(lines.count(), points.len());
        assert!(csv.contains("fifo core"));
    }

    #[test]
    fn region_of_interest_filters() {
        let grid = SweepGrid {
            data_widths: vec![8],
            depths: vec![512],
        };
        let points = sweep(&Xsb300e::new(), &grid).unwrap();
        let no_bram = region_of_interest(
            &points,
            Constraints {
                max_brams: Some(0),
                ..Constraints::default()
            },
        );
        assert!(!no_bram.is_empty());
        assert!(no_bram.iter().all(|p| p.report.brams == 0));
        let fast = region_of_interest(
            &points,
            Constraints {
                max_access_cycles: Some(1),
                ..Constraints::default()
            },
        );
        // Single-cycle access points are the stream cores.
        assert!(fast
            .iter()
            .all(|p| p.target == "fifo core" || p.target == "lifo core"));
        assert!(!fast.is_empty());
    }

    #[test]
    fn table3_shape_holds() {
        let rows = table3_rows().unwrap();
        assert_eq!(rows.len(), 6);
        let get = |k: DesignKind, s: Style| {
            rows.iter()
                .find(|(kk, ss, _)| *kk == k && *ss == s)
                .map(|(_, _, r)| *r)
                .unwrap()
        };
        let s1p = get(DesignKind::Saa2vga1, Style::Pattern);
        let s1c = get(DesignKind::Saa2vga1, Style::Custom);
        let s2p = get(DesignKind::Saa2vga2, Style::Pattern);
        let blur_p = get(DesignKind::Blur, Style::Pattern);
        let blur_c = get(DesignKind::Blur, Style::Custom);
        // Row 1: 2 block RAMs, pattern == custom after dissolution.
        assert_eq!(s1p.brams, 2);
        assert_eq!(s1p.ffs, s1c.ffs, "wrappers must dissolve");
        assert_eq!(s1p.luts, s1c.luts);
        // Row 2: no block RAM, smaller than row 1 in FFs (the paper's
        // 147 vs 69 relation).
        assert_eq!(s2p.brams, 0);
        assert!(s2p.ffs < s1p.ffs, "{} !< {}", s2p.ffs, s1p.ffs);
        // Row 3: blur is the big design.
        assert!(blur_p.ffs > s1p.ffs);
        assert!(blur_p.luts > s1p.luts);
        assert_eq!(blur_p.brams, blur_c.brams);
        // Negligible overhead everywhere (<= 2% or a few cells).
        for (p, c) in [(s1p, s1c), (blur_p, blur_c)] {
            let dl = p.luts.abs_diff(c.luts);
            assert!(dl * 50 <= c.luts.max(50), "LUT delta {dl} too large");
        }
    }
}
