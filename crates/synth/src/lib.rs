//! # hdp-synth — technology mapping and the XSB-300E cost model
//!
//! The paper's Table 3 reports post-synthesis FFs, LUTs, block RAMs
//! and clock frequency on the XESS XSB-300E board (a Xilinx
//! Spartan-IIE XC2S300E). This crate replaces the vendor toolchain
//! with a deterministic model over the same primitives:
//!
//! * [`optimize`] — netlist clean-up, most importantly **wrapper
//!   dissolution**: the iterator wrappers of the pattern-based designs
//!   "are only wrappers that will be dissolved at the time of
//!   synthesizing the design" (§4); this pass is that dissolution, so
//!   the pattern-vs-custom comparison measures real residual overhead.
//! * [`map`] — resource mapping: every primitive has a
//!   Spartan-II-calibrated FF / 4-LUT / Block SelectRAM cost
//!   (documented per primitive); vendor FIFO cores are costed as the
//!   dual-clock macros the board needs (the SAA7113 decoder runs on
//!   its own pixel clock).
//! * [`timing`] — a register-to-register critical-path model giving
//!   an achievable clock estimate.
//! * [`power`] — an activity-based dynamic-power estimate, part of
//!   the §3.4 design-space characterisation.
//! * [`characterize`] — the §3.4 sweep: "we characterized all the
//!   physical devices available in the target platform ... we
//!   obtained information about data access times for every
//!   container, area, power consumption"; generates every
//!   container×target×parameter implementation and tabulates it.
//! * [`chardb`] — the persistent form of that sweep: the versioned
//!   `hdp-chardb-v1` characterisation database with append/merge/load,
//!   integrity checks, constraint queries and a Pareto frontier.
//! * [`select`] — [`select::auto_select`]: the §3.4 implementation
//!   decision automated — the cheapest database record satisfying a
//!   constraint set, served by `hdp-service` as the `select` verb.
//! * [`board`] — the XSB-300E device limits.
//!
//! The absolute numbers of a model never equal a vendor tool's; the
//! calibration here targets the *shape* of Table 3 (see
//! EXPERIMENTS.md), which is what carries the paper's claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod board;
pub mod characterize;
pub mod chardb;
pub mod map;
pub mod optimize;
pub mod power;
pub mod select;
pub mod timing;

pub use board::{Xsb300e, XC2S300E};
pub use chardb::{characterize_spec, CharDb, CharDbError, CharRecord, Query, CHARDB_SCHEMA};
pub use map::{map_resources, ResourceReport};
pub use optimize::dissolve_wrappers;
pub use select::{auto_select, SelectConstraints, Selection};
pub use timing::{critical_path_ns, fmax_mhz};

use hdp_hdl::{HdlError, Netlist};

/// A complete synthesis result: the Table 3 row for one design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthReport {
    /// Flip-flop count.
    pub ffs: usize,
    /// 4-input LUT count.
    pub luts: usize,
    /// Block SelectRAM count.
    pub brams: usize,
    /// Achievable clock frequency estimate in MHz.
    pub clk_mhz: f64,
}

impl std::fmt::Display for SynthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} FFs, {} LUTs, {} block RAM, {:.0} MHz",
            self.ffs, self.luts, self.brams, self.clk_mhz
        )
    }
}

/// Synthesizes a netlist: dissolve wrappers, map resources, analyse
/// timing.
///
/// # Errors
///
/// Propagates structural validation failures — only valid netlists
/// can be synthesized.
///
/// # Example
///
/// ```
/// use hdp_hdl::{Entity, Netlist, PortDir};
/// use hdp_hdl::prim::Prim;
///
/// # fn main() -> Result<(), hdp_hdl::HdlError> {
/// let entity = Entity::builder("inc8")
///     .port("a", PortDir::In, 8)?
///     .port("y", PortDir::Out, 8)?
///     .build()?;
/// let mut nl = Netlist::new(entity);
/// let a = nl.add_net("a", 8)?;
/// let y = nl.add_net("y", 8)?;
/// nl.add_cell("u0", Prim::Inc { width: 8 }, vec![a], vec![y])?;
/// nl.bind_port("a", a)?;
/// nl.bind_port("y", y)?;
/// let report = hdp_synth::synthesize(&nl)?;
/// assert_eq!(report.ffs, 0);
/// assert!(report.luts > 0);
/// # Ok(())
/// # }
/// ```
pub fn synthesize(netlist: &Netlist) -> Result<SynthReport, HdlError> {
    hdp_hdl::validate::check(netlist)?;
    let optimized = dissolve_wrappers(netlist)?;
    let resources = map_resources(&optimized);
    let clk = fmax_mhz(&optimized)?;
    Ok(SynthReport {
        ffs: resources.ffs,
        luts: resources.luts,
        brams: resources.brams,
        clk_mhz: clk,
    })
}
