//! Integration tests for the characterisation database: the pinned
//! `hdp-chardb-v1` fixture (schema stability), file round-trips,
//! merge idempotence, named rejection errors, and `auto_select`
//! against data that went through disk.
//!
//! The fixture under `tests/fixtures/chardb_v1.json` was generated
//! once (`chardb_sweep --count 12 --seed 7`) and is committed as a
//! compatibility contract: if the serialisation format, the cost
//! model, or the canonical spec encoding changes, these tests fail
//! and the schema version must be bumped instead.

use hdp_synth::board::Xsb300e;
use hdp_synth::chardb::{characterize_spec, CharDb, CharDbError, CHARDB_SCHEMA};
use hdp_synth::select::{auto_select, SelectConstraints, Selection};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/chardb_v1.json");

fn fixture_db() -> CharDb {
    CharDb::load(FIXTURE).expect("pinned fixture must load")
}

#[test]
fn pinned_fixture_loads_and_round_trips_byte_identically() {
    let text = std::fs::read_to_string(FIXTURE).unwrap();
    assert!(
        text.starts_with(&format!("{{\"schema\":\"{CHARDB_SCHEMA}\",\"points\":[")),
        "header line is part of the schema contract"
    );
    let db = CharDb::parse(&text).unwrap();
    assert_eq!(db.len(), 12, "one point per design family");
    // Serialisation is canonical: parse → to_text reproduces the
    // committed bytes exactly.
    assert_eq!(db.to_text(), text);
}

#[test]
fn pinned_fixture_metrics_are_stable() {
    let db = fixture_db();
    // Two rows pinned value-for-value: a register-target FIFO and the
    // multi-clock async FIFO. A cost-model change that moves either
    // must bump the schema version rather than silently reshape
    // every committed database.
    let fifo = &db.records()[0];
    assert_eq!(fifo.spec.label(), "rbuffer_fifo w=8 ops=empty+pop");
    assert_eq!(
        (fifo.ffs, fifo.luts, fifo.brams),
        (10, 21, 0),
        "resource pin"
    );
    assert_eq!(
        (fifo.clk_khz, fifo.access_cycles, fifo.power_uw),
        (125_000, 1, 15_373),
        "timing/power pin"
    );
    let async_fifo = &db.records()[11];
    assert_eq!(async_fifo.spec.label(), "async_fifo w=16 d=8 ratio=3:1");
    assert_eq!(
        (async_fifo.ffs, async_fifo.luts, async_fifo.brams),
        (160, 172, 0)
    );
    assert_eq!(
        (
            async_fifo.clk_khz,
            async_fifo.access_cycles,
            async_fifo.power_uw
        ),
        (77_519, 2, 17_347)
    );
    // The index agrees with the record list.
    for record in db.records() {
        assert_eq!(db.get(&record.key()), Some(record));
    }
}

#[test]
fn append_save_load_query_round_trip() {
    let mut db = fixture_db();
    // Grow the loaded database with a freshly characterised point and
    // push it through disk.
    let board = Xsb300e::new();
    let spec = db.records()[0].spec.clone();
    let mut wider = spec;
    wider.data_width = 32;
    let record = characterize_spec(&wider, &board).unwrap();
    assert!(db.append(record).unwrap(), "new point must insert");

    let path = std::env::temp_dir().join(format!("hdp_chardb_it_{}.json", std::process::id()));
    db.save(&path).unwrap();
    let reloaded = CharDb::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(reloaded.len(), db.len());
    // Query results survive the disk round-trip exactly.
    let q = hdp_synth::Query {
        kind: Some("read_buffer".to_owned()),
        min_data_width: Some(8),
        ..hdp_synth::Query::default()
    };
    let before: Vec<String> = db.query(&q).iter().map(|r| r.key()).collect();
    let after: Vec<String> = reloaded.query(&q).iter().map(|r| r.key()).collect();
    assert_eq!(before, after);
    assert_eq!(
        before.len(),
        2,
        "original rbuffer_fifo plus the w=32 variant"
    );
}

#[test]
fn merge_is_idempotent() {
    let fixture = fixture_db();
    let mut db = CharDb::new();
    assert_eq!(db.merge(&fixture).unwrap(), 12);
    assert_eq!(db.merge(&fixture).unwrap(), 0, "second merge adds nothing");
    assert_eq!(db.to_text(), fixture.to_text());
}

#[test]
fn wrong_version_and_corrupt_inputs_are_named_errors() {
    let text = std::fs::read_to_string(FIXTURE).unwrap();

    let v2 = text.replace(CHARDB_SCHEMA, "hdp-chardb-v2");
    match CharDb::parse(&v2) {
        Err(CharDbError::Schema { found: Some(found) }) => assert_eq!(found, "hdp-chardb-v2"),
        other => panic!("wrong version must be a Schema error, got {other:?}"),
    }

    assert!(
        matches!(
            CharDb::parse("{\"points\":[]}"),
            Err(CharDbError::Schema { found: None })
        ),
        "missing schema field is a Schema error"
    );
    assert!(
        matches!(CharDb::parse("not json"), Err(CharDbError::Syntax { .. })),
        "unparseable text is a Syntax error"
    );
    let zero_clock = text.replacen("\"clk_khz\":125000", "\"clk_khz\":0", 1);
    match CharDb::parse(&zero_clock) {
        Err(CharDbError::Field { path, .. }) => assert_eq!(path, "points[0].clk_khz"),
        other => panic!("invalid metric must be a Field error, got {other:?}"),
    }

    match CharDb::load("/nonexistent/chardb.json") {
        Err(CharDbError::Io { path, .. }) => assert!(path.contains("nonexistent")),
        other => panic!("missing file must be an Io error, got {other:?}"),
    }
}

#[test]
fn auto_select_answers_over_reloaded_data() {
    let db = fixture_db();
    // Only one queue in the fixture is at least 8 bits wide: the
    // async FIFO.
    let c = SelectConstraints {
        kind: "queue".to_owned(),
        min_data_width: 8,
        ..SelectConstraints::default()
    };
    match auto_select(&db, &c) {
        Selection::Target { record, .. } => {
            assert_eq!(record.spec.target(), "async_fifo");
            assert_eq!(record.spec.data_width, 16);
        }
        Selection::NoTarget(rej) => panic!("expected a target, got rejections {rej:?}"),
    }
    // Unsatisfiable depth: every rejection is attributed and the
    // counts cover the whole catalog.
    let impossible = SelectConstraints {
        kind: "queue".to_owned(),
        min_depth: 1000,
        ..SelectConstraints::default()
    };
    match auto_select(&db, &impossible) {
        Selection::NoTarget(rej) => {
            assert_eq!(rej.considered, 12);
            assert_eq!(rej.wrong_kind, 10);
            assert_eq!(rej.too_shallow, 2);
        }
        Selection::Target { key, .. } => panic!("depth 1000 cannot be satisfied, got {key}"),
    }
}
