//! RTL construction helpers and FSM lowering — the template engine
//! behind every generator in this crate.
//!
//! The paper's metamodels contain "parameterized code fragments";
//! here a fragment is a call against [`Rtl`], a thin gensym-ing layer
//! over [`hdp_hdl::Netlist`], and control behaviour is described as a
//! transition *function* lowered by [`lower_fsm`] into a state
//! register plus truth-table logic (exactly what synthesis would
//! produce from a VHDL `case` process).

use hdp_hdl::prim::{CmpKind, GateOp, Prim};
use hdp_hdl::{HdlError, LogicVector, NetId, Netlist};

/// RTL construction context: wraps a netlist and generates unique
/// net/cell names.
///
/// # Example
///
/// ```
/// use hdp_hdl::{Entity, Netlist, PortDir};
/// use hdp_metagen::fsm::Rtl;
///
/// # fn main() -> Result<(), hdp_hdl::HdlError> {
/// let entity = Entity::builder("twice_plus_one")
///     .port("a", PortDir::In, 8)?
///     .port("y", PortDir::Out, 8)?
///     .build()?;
/// let mut netlist = Netlist::new(entity);
/// let a = netlist.add_net("a", 8)?;
/// let mut rtl = Rtl::new(&mut netlist);
/// let doubled = rtl.add(a, a)?;
/// let y = rtl.inc(doubled)?;
/// netlist.bind_port("a", a)?;
/// netlist.bind_port("y", y)?;
/// hdp_hdl::validate::check(&netlist)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Rtl<'a> {
    netlist: &'a mut Netlist,
    counter: usize,
}

impl<'a> Rtl<'a> {
    /// Wraps a netlist for RTL construction.
    pub fn new(netlist: &'a mut Netlist) -> Self {
        let counter = netlist.nets().len() + netlist.cells().len();
        Self { netlist, counter }
    }

    /// The wrapped netlist.
    #[must_use]
    pub fn netlist(&mut self) -> &mut Netlist {
        self.netlist
    }

    fn fresh(&mut self, hint: &str) -> String {
        self.counter += 1;
        format!("{hint}_{}", self.counter)
    }

    fn width(&self, net: NetId) -> usize {
        self.netlist.net(net).width()
    }

    /// Creates a fresh unconnected net (for register feedback loops).
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn wire(&mut self, hint: &str, width: usize) -> Result<NetId, HdlError> {
        let name = self.fresh(hint);
        self.netlist.add_net(name, width)
    }

    fn unary(&mut self, hint: &str, prim: Prim, a: NetId) -> Result<NetId, HdlError> {
        let out_w = prim.output_widths()[0];
        let y = self.wire(hint, out_w)?;
        let cell = self.fresh(&format!("u_{hint}"));
        self.netlist.add_cell(cell, prim, vec![a], vec![y])?;
        Ok(y)
    }

    fn binary(&mut self, hint: &str, prim: Prim, a: NetId, b: NetId) -> Result<NetId, HdlError> {
        let out_w = prim.output_widths()[0];
        let y = self.wire(hint, out_w)?;
        let cell = self.fresh(&format!("u_{hint}"));
        self.netlist.add_cell(cell, prim, vec![a, b], vec![y])?;
        Ok(y)
    }

    /// A constant driver.
    ///
    /// # Errors
    ///
    /// Propagates width/overflow errors.
    pub fn constant(&mut self, value: u64, width: usize) -> Result<NetId, HdlError> {
        let y = self.wire("const", width)?;
        let cell = self.fresh("u_const");
        self.netlist.add_cell(
            cell,
            Prim::Const {
                value: LogicVector::from_u64(value, width)?,
            },
            vec![],
            vec![y],
        )?;
        Ok(y)
    }

    /// A buffer (wrapper) — free after synthesis.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn buf(&mut self, a: NetId) -> Result<NetId, HdlError> {
        let w = self.width(a);
        self.unary("buf", Prim::Buf { width: w }, a)
    }

    /// Drives an existing net with a buffer of `src` (for binding to
    /// already-created output nets).
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn buf_into(&mut self, dst: NetId, src: NetId) -> Result<(), HdlError> {
        let w = self.width(src);
        let cell = self.fresh("u_buf");
        self.netlist
            .add_cell(cell, Prim::Buf { width: w }, vec![src], vec![dst])?;
        Ok(())
    }

    /// Bitwise NOT.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn not(&mut self, a: NetId) -> Result<NetId, HdlError> {
        let w = self.width(a);
        self.unary("not", Prim::Not { width: w }, a)
    }

    /// Bitwise AND.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn and(&mut self, a: NetId, b: NetId) -> Result<NetId, HdlError> {
        let w = self.width(a);
        self.binary(
            "and",
            Prim::Gate {
                op: GateOp::And,
                width: w,
            },
            a,
            b,
        )
    }

    /// Bitwise OR.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn or(&mut self, a: NetId, b: NetId) -> Result<NetId, HdlError> {
        let w = self.width(a);
        self.binary(
            "or",
            Prim::Gate {
                op: GateOp::Or,
                width: w,
            },
            a,
            b,
        )
    }

    /// Bitwise XOR.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn xor(&mut self, a: NetId, b: NetId) -> Result<NetId, HdlError> {
        let w = self.width(a);
        self.binary(
            "xor",
            Prim::Gate {
                op: GateOp::Xor,
                width: w,
            },
            a,
            b,
        )
    }

    /// Adder.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn add(&mut self, a: NetId, b: NetId) -> Result<NetId, HdlError> {
        let w = self.width(a);
        self.binary("add", Prim::Add { width: w }, a, b)
    }

    /// Subtractor.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn sub(&mut self, a: NetId, b: NetId) -> Result<NetId, HdlError> {
        let w = self.width(a);
        self.binary("sub", Prim::Sub { width: w }, a, b)
    }

    /// Incrementer.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn inc(&mut self, a: NetId) -> Result<NetId, HdlError> {
        let w = self.width(a);
        self.unary("inc", Prim::Inc { width: w }, a)
    }

    /// Equality against a constant.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn eq_const(&mut self, a: NetId, value: u64) -> Result<NetId, HdlError> {
        let w = self.width(a);
        let k = self.constant(value, w)?;
        self.binary(
            "eq",
            Prim::Cmp {
                kind: CmpKind::Eq,
                width: w,
            },
            a,
            k,
        )
    }

    /// Comparison of two nets.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn cmp(&mut self, kind: CmpKind, a: NetId, b: NetId) -> Result<NetId, HdlError> {
        let w = self.width(a);
        self.binary("cmp", Prim::Cmp { kind, width: w }, a, b)
    }

    /// Two-way multiplexer: `sel == 0 -> d0`, `sel == 1 -> d1`.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn mux2(&mut self, sel: NetId, d0: NetId, d1: NetId) -> Result<NetId, HdlError> {
        let w = self.width(d0);
        let y = self.wire("mux", w)?;
        let cell = self.fresh("u_mux");
        self.netlist.add_cell(
            cell,
            Prim::Mux { width: w, ways: 2 },
            vec![sel, d0, d1],
            vec![y],
        )?;
        Ok(y)
    }

    /// N-way multiplexer: `sel` picks among `inputs` (in order).
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn mux(&mut self, sel: NetId, inputs: &[NetId]) -> Result<NetId, HdlError> {
        let w = self.width(inputs[0]);
        let y = self.wire("mux", w)?;
        let cell = self.fresh("u_mux");
        let mut pins = vec![sel];
        pins.extend_from_slice(inputs);
        self.netlist.add_cell(
            cell,
            Prim::Mux {
                width: w,
                ways: inputs.len(),
            },
            pins,
            vec![y],
        )?;
        Ok(y)
    }

    /// Bit-slice.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn slice(&mut self, a: NetId, low: usize, len: usize) -> Result<NetId, HdlError> {
        let w = self.width(a);
        self.unary(
            "slice",
            Prim::Slice {
                in_width: w,
                low,
                len,
            },
            a,
        )
    }

    /// Concatenation, most significant first.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn concat(&mut self, parts: &[NetId]) -> Result<NetId, HdlError> {
        let widths: Vec<usize> = parts.iter().map(|&n| self.width(n)).collect();
        let total = widths.iter().sum();
        let y = self.wire("cat", total)?;
        let cell = self.fresh("u_cat");
        self.netlist
            .add_cell(cell, Prim::Concat { widths }, parts.to_vec(), vec![y])?;
        Ok(y)
    }

    /// Zero-extends a net to `width` bits.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn zext(&mut self, a: NetId, width: usize) -> Result<NetId, HdlError> {
        let aw = self.width(a);
        if aw == width {
            return Ok(a);
        }
        let zeros = self.constant(0, width - aw)?;
        self.concat(&[zeros, a])
    }

    /// A register driving the pre-created net `q` from `d`, with
    /// optional enable and a reset value.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn reg_into(
        &mut self,
        q: NetId,
        d: NetId,
        en: Option<NetId>,
        reset_value: u64,
    ) -> Result<(), HdlError> {
        let w = self.width(d);
        let cell = self.fresh("u_reg");
        let (prim, inputs) = match en {
            Some(en) => (
                Prim::Reg {
                    width: w,
                    has_enable: true,
                    reset_value,
                },
                vec![d, en],
            ),
            None => (
                Prim::Reg {
                    width: w,
                    has_enable: false,
                    reset_value,
                },
                vec![d],
            ),
        };
        self.netlist.add_cell(cell, prim, inputs, vec![q])?;
        Ok(())
    }

    /// A register with a fresh output net.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn reg(
        &mut self,
        d: NetId,
        en: Option<NetId>,
        reset_value: u64,
    ) -> Result<NetId, HdlError> {
        let w = self.width(d);
        let q = self.wire("q", w)?;
        self.reg_into(q, d, en, reset_value)?;
        Ok(q)
    }

    /// Like [`Rtl::reg_into`], but the register is clocked by the
    /// netlist clock domain at `domain` (an index from
    /// [`Netlist::add_domain`]) instead of the default `clk`.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors (including unknown domain indices).
    pub fn reg_into_in_domain(
        &mut self,
        q: NetId,
        d: NetId,
        en: Option<NetId>,
        reset_value: u64,
        domain: usize,
    ) -> Result<(), HdlError> {
        let w = self.width(d);
        let cell = self.fresh("u_reg");
        let (prim, inputs) = match en {
            Some(en) => (
                Prim::Reg {
                    width: w,
                    has_enable: true,
                    reset_value,
                },
                vec![d, en],
            ),
            None => (
                Prim::Reg {
                    width: w,
                    has_enable: false,
                    reset_value,
                },
                vec![d],
            ),
        };
        self.netlist
            .add_cell_in_domain(cell, prim, inputs, vec![q], domain)?;
        Ok(())
    }

    /// A register in clock domain `domain` with a fresh output net.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors (including unknown domain indices).
    pub fn reg_in_domain(
        &mut self,
        d: NetId,
        en: Option<NetId>,
        reset_value: u64,
        domain: usize,
    ) -> Result<NetId, HdlError> {
        let w = self.width(d);
        let q = self.wire("q", w)?;
        self.reg_into_in_domain(q, d, en, reset_value, domain)?;
        Ok(q)
    }

    /// A raw truth-table node over the given inputs.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors (including table-size validation).
    pub fn table(
        &mut self,
        inputs: &[NetId],
        out_width: usize,
        table: Vec<u64>,
    ) -> Result<NetId, HdlError> {
        let in_widths: Vec<usize> = inputs.iter().map(|&n| self.width(n)).collect();
        let y = self.wire("tt", out_width)?;
        let cell = self.fresh("u_tt");
        self.netlist.add_cell(
            cell,
            Prim::TruthTable {
                in_widths,
                out_width,
                table,
            },
            inputs.to_vec(),
            vec![y],
        )?;
        Ok(y)
    }
}

/// Number of state bits for `n_states` states.
#[must_use]
pub fn state_bits(n_states: usize) -> usize {
    usize::max(
        1,
        usize::BITS as usize - (n_states - 1).leading_zeros() as usize,
    )
}

/// Lowers a Moore/Mealy finite state machine into a state register
/// plus a truth-table node.
///
/// `logic(state, inputs)` is evaluated for every combination of state
/// encoding and input values and must return `(next_state, outputs)`.
/// Unreachable state encodings recover to `reset_state`. The returned
/// pair is `(state_net, output_net)`; outputs are combinational
/// (Mealy) — register them with [`Rtl::reg`] for Moore timing.
///
/// # Errors
///
/// Returns [`HdlError::InvalidWidth`] if the combined input width
/// exceeds the truth-table bound (20 bits), plus ordinary netlist
/// errors.
pub fn lower_fsm(
    rtl: &mut Rtl<'_>,
    n_states: usize,
    reset_state: u64,
    inputs: &[NetId],
    out_width: usize,
    logic: impl Fn(u64, &[u64]) -> (u64, u64),
) -> Result<(NetId, NetId), HdlError> {
    let sb = state_bits(n_states);
    let state = rtl.wire("state", sb)?;
    let in_widths: Vec<usize> = inputs.iter().map(|&n| rtl.width(n)).collect();
    let total_in: usize = sb + in_widths.iter().sum::<usize>();
    if total_in > 20 {
        return Err(HdlError::InvalidWidth { width: total_in });
    }
    let table_out_width = sb + out_width;
    let mut table = Vec::with_capacity(1 << total_in);
    for combo in 0..(1u64 << total_in) {
        // Decode: the state is the most significant field, then the
        // inputs in order (matching TruthTable's MSB-first indexing).
        let mut rest = combo;
        let mut fields = vec![0u64; in_widths.len()];
        for (i, &w) in in_widths.iter().enumerate().rev() {
            fields[i] = rest & ((1 << w) - 1);
            rest >>= w;
        }
        let s = rest;
        let (next, outs) = if s < n_states as u64 {
            logic(s, &fields)
        } else {
            (reset_state, 0)
        };
        assert!(
            next < n_states as u64,
            "fsm logic returned out-of-range state {next}"
        );
        assert!(
            out_width == 64 || outs >> out_width == 0,
            "fsm logic returned out-of-range outputs {outs:#x}"
        );
        table.push((next << out_width) | outs);
    }
    let mut table_inputs = vec![state];
    table_inputs.extend_from_slice(inputs);
    let tt = rtl.table(&table_inputs, table_out_width, table)?;
    let next_state = rtl.slice(tt, out_width, sb)?;
    let outputs = if out_width > 0 {
        rtl.slice(tt, 0, out_width)?
    } else {
        tt
    };
    rtl.reg_into(state, next_state, None, reset_state)?;
    Ok((state, outputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_hdl::{Entity, PortDir};
    use hdp_sim::{NetlistComponent, Simulator};

    fn shell(out_width: usize) -> Netlist {
        let entity = Entity::builder("dut")
            .port("go", PortDir::In, 1)
            .unwrap()
            .port("y", PortDir::Out, out_width)
            .unwrap()
            .build()
            .unwrap();
        Netlist::new(entity)
    }

    #[test]
    fn state_bits_formula() {
        assert_eq!(state_bits(2), 1);
        assert_eq!(state_bits(3), 2);
        assert_eq!(state_bits(4), 2);
        assert_eq!(state_bits(5), 3);
    }

    #[test]
    fn rtl_builders_produce_valid_netlists() {
        let mut nl = shell(8);
        let go = nl.add_net("go", 1).unwrap();
        let mut rtl = Rtl::new(&mut nl);
        let k = rtl.constant(5, 8).unwrap();
        let k2 = rtl.inc(k).unwrap();
        let sum = rtl.add(k, k2).unwrap();
        let picked = rtl.mux2(go, sum, k).unwrap();
        let y = rtl.buf(picked).unwrap();
        nl.bind_port("go", go).unwrap();
        nl.bind_port("y", y).unwrap();
        hdp_hdl::validate::check(&nl).unwrap();
    }

    /// A two-state toggle FSM: when `go`, alternate between emitting
    /// 1 and 2.
    #[test]
    fn lowered_fsm_simulates_correctly() {
        let mut nl = shell(2);
        let go = nl.add_net("go", 1).unwrap();
        let mut rtl = Rtl::new(&mut nl);
        let (_, out) = lower_fsm(&mut rtl, 2, 0, &[go], 2, |s, ins| {
            let go = ins[0] == 1;
            match (s, go) {
                (0, true) => (1, 0b01),
                (1, true) => (0, 0b10),
                (s, _) => (s, 0),
            }
        })
        .unwrap();
        nl.bind_port("go", go).unwrap();
        nl.bind_port("y", out).unwrap();
        hdp_hdl::validate::check(&nl).unwrap();

        let mut sim = Simulator::new();
        let go_s = sim.add_signal("go", 1).unwrap();
        let y_s = sim.add_signal("y", 2).unwrap();
        let dut = NetlistComponent::new("dut", nl, sim.bus(), &[("go", go_s), ("y", y_s)]).unwrap();
        sim.add_component(dut);
        sim.poke(go_s, 0).unwrap();
        sim.reset().unwrap();
        assert_eq!(sim.peek(y_s).unwrap().to_u64(), Some(0));
        sim.poke(go_s, 1).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.peek(y_s).unwrap().to_u64(), Some(0b01)); // state 0, go
        sim.step().unwrap();
        assert_eq!(sim.peek(y_s).unwrap().to_u64(), Some(0b10)); // state 1, go
        sim.step().unwrap();
        assert_eq!(sim.peek(y_s).unwrap().to_u64(), Some(0b01)); // back to 0
    }

    #[test]
    fn fsm_rejects_oversized_tables() {
        let mut nl = shell(1);
        let go = nl.add_net("go", 1).unwrap();
        let mut rtl = Rtl::new(&mut nl);
        let wide = rtl.wire("wide", 32).unwrap();
        let err = lower_fsm(&mut rtl, 2, 0, &[wide], 1, |_, _| (0, 0));
        assert!(matches!(err, Err(HdlError::InvalidWidth { .. })));
        let _ = go;
    }

    #[test]
    fn counter_from_rtl_helpers() {
        // q' = q + 1 when en.
        let entity = Entity::builder("ctr")
            .port("en", PortDir::In, 1)
            .unwrap()
            .port("q", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let en = nl.add_net("en", 1).unwrap();
        let q = nl.add_net("q", 4).unwrap();
        let mut rtl = Rtl::new(&mut nl);
        let d = rtl.inc(q).unwrap();
        rtl.reg_into(q, d, Some(en), 0).unwrap();
        nl.bind_port("en", en).unwrap();
        nl.bind_port("q", q).unwrap();
        let mut sim = Simulator::new();
        let en_s = sim.add_signal("en", 1).unwrap();
        let q_s = sim.add_signal("q", 4).unwrap();
        let dut = NetlistComponent::new("dut", nl, sim.bus(), &[("en", en_s), ("q", q_s)]).unwrap();
        sim.add_component(dut);
        sim.poke(en_s, 1).unwrap();
        sim.reset().unwrap();
        sim.run(5).unwrap();
        assert_eq!(sim.peek(q_s).unwrap().to_u64(), Some(5));
        sim.poke(en_s, 0).unwrap();
        sim.run(3).unwrap();
        assert_eq!(sim.peek(q_s).unwrap().to_u64(), Some(5));
    }

    #[test]
    fn zext_pads_high_bits() {
        let mut nl = shell(8);
        let go = nl.add_net("go", 1).unwrap();
        let mut rtl = Rtl::new(&mut nl);
        let k = rtl.constant(0x3, 2).unwrap();
        let wide = rtl.zext(k, 8).unwrap();
        let y = rtl.buf(wide).unwrap();
        nl.bind_port("go", go).unwrap();
        nl.bind_port("y", y).unwrap();
        let mut sim = Simulator::new();
        let go_s = sim.add_signal("go", 1).unwrap();
        let y_s = sim.add_signal("y", 8).unwrap();
        let dut = NetlistComponent::new("dut", nl, sim.bus(), &[("go", go_s), ("y", y_s)]).unwrap();
        sim.add_component(dut);
        sim.poke(go_s, 0).unwrap();
        sim.reset().unwrap();
        assert_eq!(sim.peek(y_s).unwrap().to_u64(), Some(3));
    }
}
