//! Generated algorithm components.
//!
//! The paper leaves algorithm metamodels as future work ("Algorithms
//! can be also described through metamodels, although they have not
//! been considered in this paper", §3.4). This module implements that
//! future work so complete designs can be generated and synthesized:
//! the copy/transform FSMs and the blur convolution datapath, each as
//! a standalone component netlist.

use crate::fsm::{lower_fsm, state_bits, Rtl};
use hdp_hdl::prim::{CmpKind, Prim};
use hdp_hdl::{Entity, HdlError, NetId, Netlist, PortDir};

/// The pixel-wise transfer functions the generator can lower to
/// combinational logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformOp {
    /// Pass-through — the copy algorithm.
    Identity,
    /// Bitwise complement (photometric negative for full-range data).
    Invert,
    /// `p >= t ? max : 0`.
    Threshold(u64),
}

impl TransformOp {
    /// Emits the combinational logic for this transfer function.
    fn emit(self, rtl: &mut Rtl<'_>, input: NetId, width: usize) -> Result<NetId, HdlError> {
        match self {
            TransformOp::Identity => rtl.buf(input),
            TransformOp::Invert => rtl.not(input),
            TransformOp::Threshold(t) => {
                let t_net = rtl.constant(t, width)?;
                let ge = rtl.cmp(CmpKind::Ge, input, t_net)?;
                let max = rtl.constant((1 << width) - 1, width)?;
                let zero = rtl.constant(0, width)?;
                rtl.mux2(ge, zero, max)
            }
        }
    }
}

/// Generates the streaming copy/transform engine for single-cycle
/// (FIFO-class) iterators: "an endless loop that sequences read and
/// write operations and iterator forwarding for both containers. All
/// these operations can be performed in parallel" (§3.3).
///
/// Ports: `in_avail`/`out_ready` (iterator flow control) in,
/// `in_data` in; `advance` (simultaneous pop+push strobe) out,
/// `out_data` out.
///
/// # Errors
///
/// Propagates netlist-construction failures.
pub fn transform_streaming(
    name: &str,
    data_width: usize,
    op: TransformOp,
) -> Result<Netlist, HdlError> {
    let entity = Entity::builder(name)
        .group("input iterator")
        .port("in_avail", PortDir::In, 1)?
        .port("in_data", PortDir::In, data_width)?
        .group("output iterator")
        .port("out_ready", PortDir::In, 1)?
        .port("advance", PortDir::Out, 1)?
        .port("out_data", PortDir::Out, data_width)?
        .build()?;
    let mut nl = Netlist::new(entity);
    let in_avail = nl.add_net("in_avail", 1)?;
    let in_data = nl.add_net("in_data", data_width)?;
    let out_ready = nl.add_net("out_ready", 1)?;
    let advance = nl.add_net("advance", 1)?;
    let out_data = nl.add_net("out_data", data_width)?;
    for (p, n) in [
        ("in_avail", in_avail),
        ("in_data", in_data),
        ("out_ready", out_ready),
        ("advance", advance),
        ("out_data", out_data),
    ] {
        nl.bind_port(p, n)?;
    }
    let mut rtl = Rtl::new(&mut nl);
    let go = rtl.and(in_avail, out_ready)?;
    rtl.buf_into(advance, go)?;
    let transformed = op.emit(&mut rtl, in_data, data_width)?;
    rtl.buf_into(out_data, transformed)?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

/// Generates the sequenced copy/transform engine for multi-cycle
/// iterators (the SRAM designs): a fetch/store FSM with a data latch.
///
/// Ports: `in_done` in, `in_data` in, `in_req` out (fetch strobe);
/// `out_done` in, `out_req` out (store strobe), `out_data` out.
///
/// # Errors
///
/// Propagates netlist-construction failures.
pub fn transform_sequenced(
    name: &str,
    data_width: usize,
    op: TransformOp,
) -> Result<Netlist, HdlError> {
    let entity = Entity::builder(name)
        .group("input iterator")
        .port("in_done", PortDir::In, 1)?
        .port("in_data", PortDir::In, data_width)?
        .port("in_req", PortDir::Out, 1)?
        .group("output iterator")
        .port("out_done", PortDir::In, 1)?
        .port("out_req", PortDir::Out, 1)?
        .port("out_data", PortDir::Out, data_width)?
        .build()?;
    let mut nl = Netlist::new(entity);
    let in_done = nl.add_net("in_done", 1)?;
    let in_data = nl.add_net("in_data", data_width)?;
    let in_req = nl.add_net("in_req", 1)?;
    let out_done = nl.add_net("out_done", 1)?;
    let out_req = nl.add_net("out_req", 1)?;
    let out_data = nl.add_net("out_data", data_width)?;
    for (p, n) in [
        ("in_done", in_done),
        ("in_data", in_data),
        ("in_req", in_req),
        ("out_done", out_done),
        ("out_req", out_req),
        ("out_data", out_data),
    ] {
        nl.bind_port(p, n)?;
    }
    let mut rtl = Rtl::new(&mut nl);
    // FSM: Fetch(0) / Store(1) / Gap(2) — the Gap state drops the
    // store strobe for one cycle so the container sees a clean edge.
    // Inputs: in_done, out_done. Outputs: in_req, out_req, latch_en.
    let (_s, outs) = lower_fsm(&mut rtl, 3, 0, &[in_done, out_done], 3, |s, ins| {
        let (ind, outd) = (ins[0] == 1, ins[1] == 1);
        const IN_REQ: u64 = 1;
        const OUT_REQ: u64 = 2;
        const LATCH: u64 = 4;
        match s {
            0 if ind => (1, LATCH),
            0 => (0, IN_REQ),
            1 if outd => (2, 0),
            1 => (1, OUT_REQ),
            _ => (0, 0),
        }
    })?;
    let fetch_req = rtl.slice(outs, 0, 1)?;
    let store_req = rtl.slice(outs, 1, 1)?;
    let latch = rtl.slice(outs, 2, 1)?;
    let held = rtl.reg(in_data, Some(latch), 0)?;
    let transformed = op.emit(&mut rtl, held, data_width)?;
    rtl.buf_into(in_req, fetch_req)?;
    rtl.buf_into(out_req, store_req)?;
    rtl.buf_into(out_data, transformed)?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

/// Generates the blur convolution datapath: per column, the vertical
/// sum `top + 2*mid + bot` is computed and shifted through two column
/// registers; the horizontal combination `(left + 2*centre + right)
/// >> 4` yields one pixel per column once two columns of the line
/// > > have passed — "ideally a new filtered pixel can be generated at
/// > > each clock cycle" (§4).
///
/// Ports: `col_valid`, `top`, `mid`, `bot` in; `out_valid`,
/// `out_data` out.
///
/// # Errors
///
/// Propagates netlist-construction failures.
pub fn blur_datapath(
    name: &str,
    line_width: usize,
    data_width: usize,
) -> Result<Netlist, HdlError> {
    let entity = Entity::builder(name)
        .group("column iterator")
        .port("col_valid", PortDir::In, 1)?
        .port("top", PortDir::In, data_width)?
        .port("mid", PortDir::In, data_width)?
        .port("bot", PortDir::In, data_width)?
        .group("output")
        .port("out_valid", PortDir::Out, 1)?
        .port("out_data", PortDir::Out, data_width)?
        .build()?;
    let mut nl = Netlist::new(entity);
    let col_valid = nl.add_net("col_valid", 1)?;
    let top = nl.add_net("top", data_width)?;
    let mid = nl.add_net("mid", data_width)?;
    let bot = nl.add_net("bot", data_width)?;
    let out_valid = nl.add_net("out_valid", 1)?;
    let out_data = nl.add_net("out_data", data_width)?;
    for (p, n) in [
        ("col_valid", col_valid),
        ("top", top),
        ("mid", mid),
        ("bot", bot),
        ("out_valid", out_valid),
        ("out_data", out_data),
    ] {
        nl.bind_port(p, n)?;
    }
    let mut rtl = Rtl::new(&mut nl);
    let sum_w = data_width + 2; // 1+2+1 weights
    let out_w = data_width + 4; // full kernel sum before >>4
                                // Vertical column sum, pipelined: stage A registers the partial
                                // sums (top+bot and mid<<1) so the path from the line buffer is a
                                // single adder; stage B completes the column sum and holds the
                                // two-deep window. One column enters and one pixel leaves per
                                // cycle, at a one-cycle latency.
    let top_w = rtl.zext(top, sum_w)?;
    let bot_w = rtl.zext(bot, sum_w)?;
    let mid_w = rtl.zext(mid, sum_w - 1)?;
    let zero1 = rtl.constant(0, 1)?;
    let mid2 = rtl.concat(&[mid_w, zero1])?; // mid << 1
    let tb = rtl.add(top_w, bot_w)?;
    // Stage A.
    let tb_r = rtl.reg(tb, Some(col_valid), 0)?;
    let mid2_r = rtl.reg(mid2, Some(col_valid), 0)?;
    let va = rtl.reg(col_valid, None, 0)?;
    // Stage B.
    let col_sum = rtl.add(tb_r, mid2_r)?;
    let centre = rtl.reg(col_sum, Some(va), 0)?;
    let left = rtl.reg(centre, Some(va), 0)?;
    // Horizontal combination: left + (centre << 1) + right.
    let left_w = rtl.zext(left, out_w)?;
    let right_w = rtl.zext(col_sum, out_w)?;
    let centre_w = rtl.zext(centre, out_w - 1)?;
    let centre2 = rtl.concat(&[centre_w, zero1])?;
    let lr = rtl.add(left_w, right_w)?;
    let full = rtl.add(lr, centre2)?;
    let pixel = rtl.slice(full, 4, data_width)?;
    rtl.buf_into(out_data, pixel)?;
    // Column position counter on the delayed stream: output valid
    // once x >= 2 within the line.
    let xw = state_bits(line_width.next_power_of_two().max(2));
    let x = rtl.wire("xpos", xw)?;
    let x_inc = rtl.inc(x)?;
    let at_end = rtl.eq_const(x, line_width as u64 - 1)?;
    let zero_x = rtl.constant(0, xw)?;
    let x_next = rtl.mux2(at_end, x_inc, zero_x)?;
    rtl.reg_into(x, x_next, Some(va), 0)?;
    let two = rtl.constant(2, xw)?;
    let window_full = rtl.cmp(CmpKind::Ge, x, two)?;
    let valid = rtl.and(va, window_full)?;
    rtl.buf_into(out_valid, valid)?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

/// Counts the combinational gate cells of a netlist (everything that
/// is not a register, macro or wrapper), a cheap structural metric
/// used in tests.
#[must_use]
pub fn logic_cell_count(nl: &Netlist) -> usize {
    nl.cells()
        .iter()
        .filter(|c| {
            !matches!(
                c.prim(),
                Prim::Reg { .. }
                    | Prim::Buf { .. }
                    | Prim::BlockRam { .. }
                    | Prim::FifoMacro { .. }
                    | Prim::LifoMacro { .. }
                    | Prim::Const { .. }
            )
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_sim::{NetlistComponent, Simulator};

    #[test]
    fn streaming_copy_is_combinational() {
        let nl = transform_streaming("copy", 8, TransformOp::Identity).unwrap();
        assert!(nl
            .cells()
            .iter()
            .all(|c| !matches!(c.prim(), Prim::Reg { .. })));
    }

    #[test]
    fn streaming_engine_forwards_when_both_ready() {
        let nl = transform_streaming("copy", 8, TransformOp::Identity).unwrap();
        let mut sim = Simulator::new();
        let in_avail = sim.add_signal("in_avail", 1).unwrap();
        let in_data = sim.add_signal("in_data", 8).unwrap();
        let out_ready = sim.add_signal("out_ready", 1).unwrap();
        let advance = sim.add_signal("advance", 1).unwrap();
        let out_data = sim.add_signal("out_data", 8).unwrap();
        let dut = NetlistComponent::new(
            "dut",
            nl,
            sim.bus(),
            &[
                ("in_avail", in_avail),
                ("in_data", in_data),
                ("out_ready", out_ready),
                ("advance", advance),
                ("out_data", out_data),
            ],
        )
        .unwrap();
        sim.add_component(dut);
        sim.poke(in_avail, 1).unwrap();
        sim.poke(in_data, 0x7E).unwrap();
        sim.poke(out_ready, 0).unwrap();
        sim.reset().unwrap();
        assert_eq!(sim.peek(advance).unwrap().to_u64(), Some(0));
        sim.poke(out_ready, 1).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.peek(advance).unwrap().to_u64(), Some(1));
        assert_eq!(sim.peek(out_data).unwrap().to_u64(), Some(0x7E));
    }

    #[test]
    fn invert_op_complements() {
        let nl = transform_streaming("inv", 8, TransformOp::Invert).unwrap();
        let mut sim = Simulator::new();
        let in_avail = sim.add_signal("in_avail", 1).unwrap();
        let in_data = sim.add_signal("in_data", 8).unwrap();
        let out_ready = sim.add_signal("out_ready", 1).unwrap();
        let advance = sim.add_signal("advance", 1).unwrap();
        let out_data = sim.add_signal("out_data", 8).unwrap();
        let dut = NetlistComponent::new(
            "dut",
            nl,
            sim.bus(),
            &[
                ("in_avail", in_avail),
                ("in_data", in_data),
                ("out_ready", out_ready),
                ("advance", advance),
                ("out_data", out_data),
            ],
        )
        .unwrap();
        sim.add_component(dut);
        sim.poke(in_avail, 1).unwrap();
        sim.poke(out_ready, 1).unwrap();
        sim.poke(in_data, 0x0F).unwrap();
        sim.reset().unwrap();
        assert_eq!(sim.peek(out_data).unwrap().to_u64(), Some(0xF0));
    }

    #[test]
    fn threshold_op_binarises() {
        let nl = transform_streaming("thr", 8, TransformOp::Threshold(100)).unwrap();
        let mut sim = Simulator::new();
        let in_avail = sim.add_signal("in_avail", 1).unwrap();
        let in_data = sim.add_signal("in_data", 8).unwrap();
        let out_ready = sim.add_signal("out_ready", 1).unwrap();
        let advance = sim.add_signal("advance", 1).unwrap();
        let out_data = sim.add_signal("out_data", 8).unwrap();
        let dut = NetlistComponent::new(
            "dut",
            nl,
            sim.bus(),
            &[
                ("in_avail", in_avail),
                ("in_data", in_data),
                ("out_ready", out_ready),
                ("advance", advance),
                ("out_data", out_data),
            ],
        )
        .unwrap();
        sim.add_component(dut);
        sim.poke(in_avail, 1).unwrap();
        sim.poke(out_ready, 1).unwrap();
        sim.poke(in_data, 99).unwrap();
        sim.reset().unwrap();
        assert_eq!(sim.peek(out_data).unwrap().to_u64(), Some(0));
        sim.poke(in_data, 100).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.peek(out_data).unwrap().to_u64(), Some(255));
    }

    #[test]
    fn sequenced_engine_has_state_and_latch() {
        let nl = transform_sequenced("copy_seq", 8, TransformOp::Identity).unwrap();
        let regs = nl
            .cells()
            .iter()
            .filter(|c| matches!(c.prim(), Prim::Reg { .. }))
            .count();
        assert!(regs >= 2, "state + data latch, found {regs}");
    }

    #[test]
    fn blur_datapath_computes_kernel() {
        // Feed three uniform columns of value 80: the kernel of a
        // uniform field returns the field.
        let nl = blur_datapath("blur", 8, 8).unwrap();
        let mut sim = Simulator::new();
        let col_valid = sim.add_signal("col_valid", 1).unwrap();
        let top = sim.add_signal("top", 8).unwrap();
        let mid = sim.add_signal("mid", 8).unwrap();
        let bot = sim.add_signal("bot", 8).unwrap();
        let out_valid = sim.add_signal("out_valid", 1).unwrap();
        let out_data = sim.add_signal("out_data", 8).unwrap();
        let dut = NetlistComponent::new(
            "dut",
            nl,
            sim.bus(),
            &[
                ("col_valid", col_valid),
                ("top", top),
                ("mid", mid),
                ("bot", bot),
                ("out_valid", out_valid),
                ("out_data", out_data),
            ],
        )
        .unwrap();
        sim.add_component(dut);
        for (s, v) in [(col_valid, 1u64), (top, 80), (mid, 80), (bot, 80)] {
            sim.poke(s, v).unwrap();
        }
        sim.reset().unwrap();
        // Columns 0 and 1 fill the window; column 2 emits one cycle
        // later (pipeline stage A).
        sim.step().unwrap(); // col 0 into stage A
        sim.step().unwrap(); // col 0 -> centre, col 1 into stage A
        sim.step().unwrap(); // col 1 -> centre, col 0 -> left
        sim.settle().unwrap();
        assert_eq!(sim.peek(out_valid).unwrap().to_u64(), Some(1));
        assert_eq!(sim.peek(out_data).unwrap().to_u64(), Some(80));
    }

    #[test]
    fn blur_matches_golden_formula_on_impulse() {
        // Columns: (0,0,0), (0,160,0), (0,0,0): centre weight 4/16.
        let nl = blur_datapath("blur", 8, 8).unwrap();
        let mut sim = Simulator::new();
        let col_valid = sim.add_signal("col_valid", 1).unwrap();
        let top = sim.add_signal("top", 8).unwrap();
        let mid = sim.add_signal("mid", 8).unwrap();
        let bot = sim.add_signal("bot", 8).unwrap();
        let out_valid = sim.add_signal("out_valid", 1).unwrap();
        let out_data = sim.add_signal("out_data", 8).unwrap();
        let dut = NetlistComponent::new(
            "dut",
            nl,
            sim.bus(),
            &[
                ("col_valid", col_valid),
                ("top", top),
                ("mid", mid),
                ("bot", bot),
                ("out_valid", out_valid),
                ("out_data", out_data),
            ],
        )
        .unwrap();
        sim.add_component(dut);
        sim.poke(col_valid, 1).unwrap();
        for (s, v) in [(top, 0u64), (mid, 0), (bot, 0)] {
            sim.poke(s, v).unwrap();
        }
        sim.reset().unwrap();
        sim.step().unwrap(); // column 0: zeros
        sim.poke(mid, 160).unwrap();
        sim.step().unwrap(); // column 1: impulse
        sim.poke(mid, 0).unwrap();
        sim.step().unwrap(); // column 2: zeros; pipeline catches up
        sim.settle().unwrap();
        // Window (0, impulse, 0) visible: out = 4*160/16 = 40.
        assert_eq!(sim.peek(out_valid).unwrap().to_u64(), Some(1));
        assert_eq!(sim.peek(out_data).unwrap().to_u64(), Some(40));
    }

    #[test]
    fn logic_cell_count_ignores_wrappers() {
        let copy = transform_streaming("copy", 8, TransformOp::Identity).unwrap();
        // copy = 1 AND gate; wrappers/bufs not counted.
        assert_eq!(logic_cell_count(&copy), 1);
    }
}
