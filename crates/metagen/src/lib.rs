//! # hdp-metagen — the metaprogramming code generator
//!
//! §3.4 of the paper: "Our solution is based on the concept of
//! metaprogramming. An automatic code generator produces customized
//! versions of containers and iterators from a code template. The
//! template includes information on the available operations, shared
//! resources and parameterized code fragments. The result is a set of
//! efficient VHDL components, ready to be synthesized."
//!
//! This crate is that generator, targeting the [`hdp_hdl`] netlist IR
//! (from which VHDL is printed):
//!
//! * [`ops`] — the operation sets of the metamodel; unused operations
//!   are pruned from the generated components ("including only those
//!   resources that are really used by the selected operations").
//! * [`fsm`] — the template engine's FSM lowering: symbolic states
//!   and guarded transitions become a state register plus truth-table
//!   next-state/output logic.
//! * [`container_gen`] — customized containers per physical target:
//!   the `rbuffer_fifo` of Figure 4, the `rbuffer_sram` of Figure 5,
//!   write buffers, stacks and vectors.
//! * [`iterator_gen`] — concrete iterators. Over single-cycle
//!   containers they are pure renaming wrappers ("no more than a
//!   wrapper that renames some signals"), dissolved by the synthesis
//!   optimizer; width adaptation generates the §3.3 multi-access
//!   iterator FSMs.
//! * [`arbiter_gen`] — arbitration logic for shared physical
//!   resources.
//! * [`cdc_gen`] — clock-domain-crossing patterns: the Gray-coded
//!   asynchronous FIFO family (two-flop synchronizers, parameterized
//!   `wr`/`rd` period ratio) plus deliberately broken variants used as
//!   CDC-lint fixtures.
//! * [`algo_gen`] — algorithm FSMs/datapaths (copy, transform, blur).
//!   The paper leaves algorithm metamodels as future work; they are
//!   implemented here as an extension so complete designs can be
//!   generated and synthesized.
//! * [`design`] — assembly of the paper's three evaluation designs
//!   (`saa2vga 1`, `saa2vga 2`, `blur`) as multi-component designs
//!   ready for `hdp-synth`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo_gen;
pub mod arbiter_gen;
pub mod assoc_gen;
pub mod cdc_gen;
pub mod container_gen;
pub mod design;
pub mod fsm;
pub mod iterator_gen;
pub mod ops;
pub mod sampler;
pub mod stack_gen;

pub use design::{Design, DesignKind};
pub use ops::{MethodOp, OpSet};
