//! Generated stack and vector containers — the remaining rows of
//! Table 1 as metamodel specialisations.

use crate::fsm::{state_bits, Rtl};
use crate::ops::{MethodOp, OpSet};
use hdp_hdl::prim::Prim;
use hdp_hdl::{Entity, HdlError, Netlist, PortDir};

/// Generates the stack container over an on-chip LIFO core: like the
/// Figure 4 wrapper, "hardly any logic" — guarded push/pop strobes
/// and result multiplexing onto `done`.
///
/// Operations: `push` (+`wdata`), `pop` (result on `data`), `empty`,
/// `full` — pruned to the requested [`OpSet`].
///
/// # Errors
///
/// Propagates netlist-construction failures; rejects an empty op set.
pub fn stack_lifo(
    params: crate::container_gen::ContainerParams,
    ops: OpSet,
) -> Result<Netlist, HdlError> {
    if ops.is_empty() {
        return Err(HdlError::Unconnected {
            context: "stack_lifo with an empty operation set".into(),
        });
    }
    let w = params.data_width;
    let mut builder = Entity::builder("stack_lifo").group("methods");
    for op in [
        MethodOp::Empty,
        MethodOp::Full,
        MethodOp::Push,
        MethodOp::Pop,
    ] {
        if ops.contains(op) {
            builder = builder.port(op.port_name(), PortDir::In, 1)?;
        }
    }
    let entity = builder
        .group("params")
        .port("wdata", PortDir::In, w)?
        .port("data", PortDir::Out, w)?
        .port("done", PortDir::Out, 1)?
        .group("implementation interface")
        .port("p_empty", PortDir::In, 1)?
        .port("p_full", PortDir::In, 1)?
        .port("p_push", PortDir::Out, 1)?
        .port("p_pop", PortDir::Out, 1)?
        .port("p_wdata", PortDir::Out, w)?
        .port("p_rdata", PortDir::In, w)?
        .build()?;
    let mut nl = Netlist::new(entity);
    let wdata = nl.add_net("wdata", w)?;
    let data = nl.add_net("data", w)?;
    let done = nl.add_net("done", 1)?;
    let p_empty = nl.add_net("p_empty", 1)?;
    let p_full = nl.add_net("p_full", 1)?;
    let p_push = nl.add_net("p_push", 1)?;
    let p_pop = nl.add_net("p_pop", 1)?;
    let p_wdata = nl.add_net("p_wdata", w)?;
    let p_rdata = nl.add_net("p_rdata", w)?;
    for (p, n) in [
        ("wdata", wdata),
        ("data", data),
        ("done", done),
        ("p_empty", p_empty),
        ("p_full", p_full),
        ("p_push", p_push),
        ("p_pop", p_pop),
        ("p_wdata", p_wdata),
        ("p_rdata", p_rdata),
    ] {
        nl.bind_port(p, n)?;
    }
    let mut rtl = Rtl::new(&mut nl);
    rtl.buf_into(p_wdata, wdata)?;
    rtl.buf_into(data, p_rdata)?;
    let not_empty = rtl.not(p_empty)?;
    let not_full = rtl.not(p_full)?;
    let zero = rtl.constant(0, 1)?;
    let mut done_expr = zero;
    let push_net = if ops.contains(MethodOp::Push) {
        let m_push = rtl.netlist().add_net("m_push", 1)?;
        rtl.netlist().bind_port("m_push", m_push)?;
        let ok = rtl.and(m_push, not_full)?;
        done_expr = rtl.or(done_expr, ok)?;
        ok
    } else {
        zero
    };
    rtl.buf_into(p_push, push_net)?;
    let pop_net = if ops.contains(MethodOp::Pop) {
        let m_pop = rtl.netlist().add_net("m_pop", 1)?;
        rtl.netlist().bind_port("m_pop", m_pop)?;
        let ok = rtl.and(m_pop, not_empty)?;
        done_expr = rtl.or(done_expr, ok)?;
        ok
    } else {
        zero
    };
    rtl.buf_into(p_pop, pop_net)?;
    if ops.contains(MethodOp::Empty) {
        let m_empty = rtl.netlist().add_net("m_empty", 1)?;
        rtl.netlist().bind_port("m_empty", m_empty)?;
        let ans = rtl.and(m_empty, p_empty)?;
        done_expr = rtl.or(done_expr, ans)?;
    }
    if ops.contains(MethodOp::Full) {
        let m_full = rtl.netlist().add_net("m_full", 1)?;
        rtl.netlist().bind_port("m_full", m_full)?;
        let ans = rtl.and(m_full, p_full)?;
        done_expr = rtl.or(done_expr, ans)?;
    }
    rtl.buf_into(done, done_expr)?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

/// Generates the vector container over on-chip block RAM with its
/// random iterator: a position register moved by `inc`/`dec`/`index`
/// and a synchronous-read block RAM accessed by `read`/`write`
/// (Table 1's fully random row).
///
/// # Errors
///
/// Propagates netlist-construction failures; rejects an empty op set.
pub fn vector_bram(
    params: crate::container_gen::ContainerParams,
    ops: OpSet,
) -> Result<Netlist, HdlError> {
    if ops.is_empty() {
        return Err(HdlError::Unconnected {
            context: "vector_bram with an empty operation set".into(),
        });
    }
    let w = params.data_width;
    let aw = state_bits(params.depth.next_power_of_two().max(2));
    let mut builder = Entity::builder("vector_bram").group("methods");
    for op in [
        MethodOp::Read,
        MethodOp::Write,
        MethodOp::Inc,
        MethodOp::Dec,
        MethodOp::Index,
    ] {
        if ops.contains(op) {
            builder = builder.port(op.port_name(), PortDir::In, 1)?;
        }
    }
    let entity = builder
        .group("params")
        .port("pos", PortDir::In, aw)?
        .port("wdata", PortDir::In, w)?
        .port("data", PortDir::Out, w)?
        .port("done", PortDir::Out, 1)?
        .build()?;
    let mut nl = Netlist::new(entity);
    let pos = nl.add_net("pos", aw)?;
    let wdata = nl.add_net("wdata", w)?;
    let data = nl.add_net("data", w)?;
    let done = nl.add_net("done", 1)?;
    for (p, n) in [
        ("pos", pos),
        ("wdata", wdata),
        ("data", data),
        ("done", done),
    ] {
        nl.bind_port(p, n)?;
    }
    let method = |nl: &mut Netlist, op: MethodOp| -> Result<Option<hdp_hdl::NetId>, HdlError> {
        if ops.contains(op) {
            let n = nl.add_net(op.port_name(), 1)?;
            nl.bind_port(op.port_name(), n)?;
            Ok(Some(n))
        } else {
            Ok(None)
        }
    };
    let m_read = method(&mut nl, MethodOp::Read)?;
    let m_write = method(&mut nl, MethodOp::Write)?;
    let m_inc = method(&mut nl, MethodOp::Inc)?;
    let m_dec = method(&mut nl, MethodOp::Dec)?;
    let m_index = method(&mut nl, MethodOp::Index)?;
    let mut rtl = Rtl::new(&mut nl);
    let zero1 = rtl.constant(0, 1)?;
    let read = m_read.unwrap_or(zero1);
    let write = m_write.unwrap_or(zero1);
    let inc = m_inc.unwrap_or(zero1);
    let dec = m_dec.unwrap_or(zero1);
    let index = m_index.unwrap_or(zero1);
    // Position register: index loads, inc/dec move (index wins).
    let cursor = rtl.wire("cursor", aw)?;
    let cursor_inc = rtl.inc(cursor)?;
    let one = rtl.constant(1, aw)?;
    let cursor_dec = rtl.sub(cursor, one)?;
    let moved = rtl.mux2(dec, cursor_inc, cursor_dec)?;
    let next = rtl.mux2(index, moved, pos)?;
    let any_move = rtl.or(inc, dec)?;
    let load = rtl.or(any_move, index)?;
    rtl.reg_into(cursor, next, Some(load), 0)?;
    // Block RAM: write at cursor; synchronous read at cursor.
    let rdata = rtl.wire("rdata", w)?;
    rtl.netlist().add_cell(
        "u_bram",
        Prim::BlockRam {
            addr_width: aw,
            data_width: w,
        },
        vec![write, cursor, wdata, cursor],
        vec![rdata],
    )?;
    rtl.buf_into(data, rdata)?;
    // done: writes and position ops complete immediately; reads one
    // cycle later (synchronous RAM) — modelled by a registered strobe.
    let read_d = rtl.reg(read, None, 0)?;
    let imm = rtl.or(write, load)?;
    let done_expr = rtl.or(imm, read_d)?;
    rtl.buf_into(done, done_expr)?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container_gen::ContainerParams;
    use hdp_sim::devices::LifoCore;
    use hdp_sim::{NetlistComponent, Simulator};

    fn all_stack_ops() -> OpSet {
        OpSet::of(&[
            MethodOp::Push,
            MethodOp::Pop,
            MethodOp::Empty,
            MethodOp::Full,
        ])
    }

    #[test]
    fn stack_generates_and_prunes() {
        let params = ContainerParams::paper_default();
        let full = stack_lifo(params, all_stack_ops()).unwrap();
        assert!(full.entity().port("m_push").is_some());
        let pruned = stack_lifo(params, OpSet::of(&[MethodOp::Push])).unwrap();
        assert!(pruned.entity().port("m_pop").is_none());
        assert!(pruned.cells().len() < full.cells().len());
    }

    #[test]
    fn generated_stack_reverses_on_a_lifo_device() {
        let params = ContainerParams {
            data_width: 8,
            depth: 8,
            addr_width: 16,
        };
        let nl = stack_lifo(params, all_stack_ops()).unwrap();
        let mut sim = Simulator::new();
        let p_push = sim.add_signal("p_push", 1).unwrap();
        let p_pop = sim.add_signal("p_pop", 1).unwrap();
        let p_wdata = sim.add_signal("p_wdata", 8).unwrap();
        let p_rdata = sim.add_signal("p_rdata", 8).unwrap();
        let p_empty = sim.add_signal("p_empty", 1).unwrap();
        let p_full = sim.add_signal("p_full", 1).unwrap();
        sim.add_component(LifoCore::new(
            "u_lifo", 8, 8, p_push, p_pop, p_wdata, p_rdata, p_empty, p_full,
        ));
        let m_push = sim.add_signal("m_push", 1).unwrap();
        let m_pop = sim.add_signal("m_pop", 1).unwrap();
        let m_empty = sim.add_signal("m_empty", 1).unwrap();
        let m_full = sim.add_signal("m_full", 1).unwrap();
        let wdata = sim.add_signal("wdata", 8).unwrap();
        let data = sim.add_signal("data", 8).unwrap();
        let done = sim.add_signal("done", 1).unwrap();
        let dut = NetlistComponent::new(
            "stack",
            nl,
            sim.bus(),
            &[
                ("m_empty", m_empty),
                ("m_full", m_full),
                ("m_push", m_push),
                ("m_pop", m_pop),
                ("wdata", wdata),
                ("data", data),
                ("done", done),
                ("p_empty", p_empty),
                ("p_full", p_full),
                ("p_push", p_push),
                ("p_pop", p_pop),
                ("p_wdata", p_wdata),
                ("p_rdata", p_rdata),
            ],
        )
        .unwrap();
        sim.add_component(dut);
        for s in [m_push, m_pop, m_empty, m_full, wdata] {
            sim.poke(s, 0).unwrap();
        }
        sim.reset().unwrap();
        for v in [1u64, 2, 3] {
            sim.poke(m_push, 1).unwrap();
            sim.poke(wdata, v).unwrap();
            sim.step().unwrap();
        }
        sim.poke(m_push, 0).unwrap();
        sim.poke(m_pop, 1).unwrap();
        let mut seen = Vec::new();
        for _ in 0..3 {
            sim.settle().unwrap();
            assert_eq!(sim.peek(done).unwrap().to_u64(), Some(1));
            seen.push(sim.peek(data).unwrap().to_u64().unwrap());
            sim.step().unwrap();
        }
        assert_eq!(seen, vec![3, 2, 1]);
    }

    #[test]
    fn generated_vector_random_access() {
        let params = ContainerParams {
            data_width: 8,
            depth: 16,
            addr_width: 16,
        };
        let nl = vector_bram(
            params,
            OpSet::of(&[
                MethodOp::Read,
                MethodOp::Write,
                MethodOp::Inc,
                MethodOp::Dec,
                MethodOp::Index,
            ]),
        )
        .unwrap();
        let mut sim = Simulator::new();
        let mut sig = |n: &str, w: usize| sim.add_signal(n, w).unwrap();
        let m_read = sig("m_read", 1);
        let m_write = sig("m_write", 1);
        let m_inc = sig("m_inc", 1);
        let m_dec = sig("m_dec", 1);
        let m_index = sig("m_index", 1);
        let pos = sig("pos", 4);
        let wdata = sig("wdata", 8);
        let data = sig("data", 8);
        let done = sig("done", 1);
        let dut = NetlistComponent::new(
            "vec",
            nl,
            sim.bus(),
            &[
                ("m_read", m_read),
                ("m_write", m_write),
                ("m_inc", m_inc),
                ("m_dec", m_dec),
                ("m_index", m_index),
                ("pos", pos),
                ("wdata", wdata),
                ("data", data),
                ("done", done),
            ],
        )
        .unwrap();
        sim.add_component(dut);
        for s in [m_read, m_write, m_inc, m_dec, m_index, pos, wdata] {
            sim.poke(s, 0).unwrap();
        }
        sim.reset().unwrap();
        // index 5; write 0xAB; index 2; index 5; read -> 0xAB.
        sim.poke(m_index, 1).unwrap();
        sim.poke(pos, 5).unwrap();
        sim.step().unwrap();
        sim.poke(m_index, 0).unwrap();
        sim.poke(m_write, 1).unwrap();
        sim.poke(wdata, 0xAB).unwrap();
        sim.step().unwrap();
        sim.poke(m_write, 0).unwrap();
        sim.poke(m_index, 1).unwrap();
        sim.poke(pos, 2).unwrap();
        sim.step().unwrap();
        sim.poke(pos, 5).unwrap();
        sim.step().unwrap();
        sim.poke(m_index, 0).unwrap();
        sim.poke(m_read, 1).unwrap();
        sim.step().unwrap(); // synchronous read completes at this edge
        assert_eq!(sim.peek(done).unwrap().to_u64(), Some(1));
        assert_eq!(sim.peek(data).unwrap().to_u64(), Some(0xAB));
        sim.poke(m_read, 0).unwrap();
    }

    #[test]
    fn vector_inc_moves_cursor() {
        let params = ContainerParams {
            data_width: 8,
            depth: 8,
            addr_width: 16,
        };
        let nl = vector_bram(
            params,
            OpSet::of(&[
                MethodOp::Read,
                MethodOp::Write,
                MethodOp::Inc,
                MethodOp::Index,
            ]),
        )
        .unwrap();
        // dec pruned away.
        assert!(nl.entity().port("m_dec").is_none());
        let mut sim = Simulator::new();
        let mut sig = |n: &str, w: usize| sim.add_signal(n, w).unwrap();
        let m_read = sig("m_read", 1);
        let m_write = sig("m_write", 1);
        let m_inc = sig("m_inc", 1);
        let m_index = sig("m_index", 1);
        let pos = sig("pos", 3);
        let wdata = sig("wdata", 8);
        let data = sig("data", 8);
        let done = sig("done", 1);
        let dut = NetlistComponent::new(
            "vec",
            nl,
            sim.bus(),
            &[
                ("m_read", m_read),
                ("m_write", m_write),
                ("m_inc", m_inc),
                ("m_index", m_index),
                ("pos", pos),
                ("wdata", wdata),
                ("data", data),
                ("done", done),
            ],
        )
        .unwrap();
        sim.add_component(dut);
        for s in [m_read, m_write, m_inc, m_index, pos, wdata] {
            sim.poke(s, 0).unwrap();
        }
        sim.reset().unwrap();
        // Write 10 at 0, inc, write 11 at 1; index 0; read 10; inc; read 11.
        sim.poke(m_write, 1).unwrap();
        sim.poke(wdata, 10).unwrap();
        sim.step().unwrap();
        sim.poke(m_write, 0).unwrap();
        sim.poke(m_inc, 1).unwrap();
        sim.step().unwrap();
        sim.poke(m_inc, 0).unwrap();
        sim.poke(m_write, 1).unwrap();
        sim.poke(wdata, 11).unwrap();
        sim.step().unwrap();
        sim.poke(m_write, 0).unwrap();
        sim.poke(m_index, 1).unwrap();
        sim.poke(pos, 0).unwrap();
        sim.step().unwrap();
        sim.poke(m_index, 0).unwrap();
        sim.poke(m_read, 1).unwrap();
        sim.step().unwrap();
        sim.poke(m_read, 0).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.peek(data).unwrap().to_u64(), Some(10));
        sim.poke(m_inc, 1).unwrap();
        sim.step().unwrap();
        sim.poke(m_inc, 0).unwrap();
        sim.poke(m_read, 1).unwrap();
        sim.step().unwrap();
        sim.poke(m_read, 0).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.peek(data).unwrap().to_u64(), Some(11));
    }
}
