//! Assembly of the paper's three evaluation designs (Table 3).
//!
//! Each design exists in two styles:
//!
//! * [`Style::Pattern`] — generated from the component library: the
//!   container metamodels (pruned to the operations the copy/blur
//!   algorithms use), the iterator wrappers and the generated
//!   algorithm engines, composed exactly as the Figure 3 model
//!   dictates.
//! * [`Style::Custom`] — the ad-hoc baseline a designer would write
//!   directly against the device cores: the same datapath with the
//!   wrapper layers omitted and, for the SRAM design, the three
//!   control FSMs fused into one.
//!
//! The paper's claim is that after synthesis the two styles cost the
//! same ("there is a negligible overhead for the pattern-based
//! implementation ... iterators ... are only wrappers that will be
//! dissolved at the time of synthesizing the design", §4) — the
//! `table3` experiment in `hdp-bench` measures exactly that.

use crate::fsm::{lower_fsm, state_bits, Rtl};
use hdp_hdl::prim::{CmpKind, Prim};
use hdp_hdl::{Entity, EntityBuilder, HdlError, NetId, Netlist, PortDir};

/// The communication protocol the generator selects between a
/// container and its physical device — "transparent selection of the
/// communication protocol between components. Here transparency refers
/// to the model, not to the designer" (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Free-running strobe interface: operations complete in the same
    /// cycle (on-chip stream cores and registered RAM).
    FreeRunning,
    /// Four-phase request/acknowledge handshake: operations span a
    /// transaction (external memory behind a controller).
    ReqAck,
}

/// The protocol the generator selects for a physical target.
///
/// # Example
///
/// ```
/// use hdp_core::spec::PhysicalTarget;
/// use hdp_metagen::design::{protocol_for, Protocol};
///
/// assert_eq!(protocol_for(PhysicalTarget::FifoCore), Protocol::FreeRunning);
/// assert_eq!(
///     protocol_for(PhysicalTarget::ExternalSram { latency: 2 }),
///     Protocol::ReqAck
/// );
/// ```
#[must_use]
pub fn protocol_for(target: hdp_core::spec::PhysicalTarget) -> Protocol {
    use hdp_core::spec::PhysicalTarget;
    match target {
        PhysicalTarget::FifoCore
        | PhysicalTarget::LifoCore
        | PhysicalTarget::BlockRam
        | PhysicalTarget::LineBuffer3 { .. } => Protocol::FreeRunning,
        PhysicalTarget::ExternalSram { .. } => Protocol::ReqAck,
    }
}

/// Which of the Table 3 designs to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignKind {
    /// Video in → copy → video out, containers over FIFO cores
    /// ("maximum performance at the highest cost").
    Saa2vga1,
    /// The same model with both containers over external SRAM
    /// ("much smaller, but performance will depend on memory access
    /// times").
    Saa2vga2,
    /// Video in → 3-line buffer → 3×3 blur → video out.
    Blur,
}

impl DesignKind {
    /// All Table 3 rows in order.
    pub const ALL: [DesignKind; 3] = [DesignKind::Saa2vga1, DesignKind::Saa2vga2, DesignKind::Blur];

    /// The Table 3 row label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DesignKind::Saa2vga1 => "saa2vga 1",
            DesignKind::Saa2vga2 => "saa2vga 2",
            DesignKind::Blur => "blur",
        }
    }
}

/// Implementation style: library-generated or hand-written baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Style {
    /// Generated through the iterator pattern and component library.
    Pattern,
    /// Ad-hoc implementation directly over the device cores.
    Custom,
}

/// Generation parameters for the Table 3 designs.
#[derive(Debug, Clone, Copy)]
pub struct DesignParams {
    /// Pixel width in bits.
    pub data_width: usize,
    /// FIFO/circular-buffer capacity in elements.
    pub depth: usize,
    /// Video line width in pixels (blur only).
    pub line_width: usize,
    /// External address bus width (SRAM design only).
    pub addr_width: usize,
}

impl DesignParams {
    /// The configuration of the paper's experiments: 8-bit pixels,
    /// 512-element buffers, 16-bit external address bus; a 512-pixel
    /// line for the blur (so each line store fills one 4-kbit block
    /// RAM, matching the "2 block RAM" column).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            data_width: 8,
            depth: 512,
            line_width: 512,
            addr_width: 16,
        }
    }

    /// A scaled-down configuration for fast functional simulation.
    #[must_use]
    pub fn small(line_width: usize) -> Self {
        Self {
            data_width: 8,
            depth: 64,
            line_width,
            addr_width: 16,
        }
    }
}

/// A generated design: one flat netlist plus its identity.
#[derive(Debug, Clone)]
pub struct Design {
    /// Which Table 3 row this is.
    pub kind: DesignKind,
    /// Pattern-based or custom.
    pub style: Style,
    /// The flat netlist (device macros included).
    pub netlist: Netlist,
}

/// Generates one Table 3 design.
///
/// # Errors
///
/// Propagates netlist-construction failures.
pub fn generate(kind: DesignKind, style: Style, params: DesignParams) -> Result<Design, HdlError> {
    let netlist = match kind {
        DesignKind::Saa2vga1 => saa2vga_fifo(style, params)?,
        DesignKind::Saa2vga2 => saa2vga_sram(style, params)?,
        DesignKind::Blur => blur(style, params)?,
    };
    Ok(Design {
        kind,
        style,
        netlist,
    })
}

fn stream_entity(name: &str, data_width: usize) -> EntityBuilder {
    Entity::builder(name)
        .group("video in")
        .port("vid_valid", PortDir::In, 1)
        .expect("static port")
        .port("vid_data", PortDir::In, data_width)
        .expect("static port")
        .group("video out")
        .port("vga_valid", PortDir::Out, 1)
        .expect("static port")
        .port("vga_data", PortDir::Out, data_width)
        .expect("static port")
}

struct StreamNets {
    vid_valid: NetId,
    vid_data: NetId,
    vga_valid: NetId,
    vga_data: NetId,
}

fn bind_stream(nl: &mut Netlist, data_width: usize) -> Result<StreamNets, HdlError> {
    let vid_valid = nl.add_net("vid_valid", 1)?;
    let vid_data = nl.add_net("vid_data", data_width)?;
    let vga_valid = nl.add_net("vga_valid", 1)?;
    let vga_data = nl.add_net("vga_data", data_width)?;
    nl.bind_port("vid_valid", vid_valid)?;
    nl.bind_port("vid_data", vid_data)?;
    nl.bind_port("vga_valid", vga_valid)?;
    nl.bind_port("vga_data", vga_data)?;
    Ok(StreamNets {
        vid_valid,
        vid_data,
        vga_valid,
        vga_data,
    })
}

/// Instantiates a FIFO core macro and returns `(rdata, empty, full)`.
fn fifo_macro(
    rtl: &mut Rtl<'_>,
    name: &str,
    depth: usize,
    width: usize,
    push: NetId,
    pop: NetId,
    wdata: NetId,
) -> Result<(NetId, NetId, NetId), HdlError> {
    let rdata = rtl.wire(&format!("{name}_rdata"), width)?;
    let empty = rtl.wire(&format!("{name}_empty"), 1)?;
    let full = rtl.wire(&format!("{name}_full"), 1)?;
    rtl.netlist().add_cell(
        name,
        Prim::FifoMacro { depth, width },
        vec![push, pop, wdata],
        vec![rdata, empty, full],
    )?;
    Ok((rdata, empty, full))
}

/// The `saa2vga 1` design: two on-chip FIFO cores and the streaming
/// copy engine.
fn saa2vga_fifo(style: Style, p: DesignParams) -> Result<Netlist, HdlError> {
    let name = match style {
        Style::Pattern => "saa2vga1_pattern",
        Style::Custom => "saa2vga1_custom",
    };
    let entity = stream_entity(name, p.data_width).build()?;
    let mut nl = Netlist::new(entity);
    let s = bind_stream(&mut nl, p.data_width)?;
    let mut rtl = Rtl::new(&mut nl);
    let w = p.data_width;
    // Input synchroniser (the decoder lives on its own clock; both
    // styles need it).
    let vid_v1 = rtl.reg(s.vid_valid, None, 0)?;
    let vid_d1 = rtl.reg(s.vid_data, None, 0)?;
    // rbuffer over a FIFO core.
    let pop_in = rtl.wire("pop_in", 1)?;
    let (in_rdata, in_empty, _in_full) = fifo_macro(
        &mut rtl,
        "u_rbuffer_fifo",
        p.depth,
        w,
        vid_v1,
        pop_in,
        vid_d1,
    )?;
    // wbuffer over a FIFO core.
    let push_out = rtl.wire("push_out", 1)?;
    let out_wdata = rtl.wire("out_wdata", w)?;
    let drain = rtl.wire("drain", 1)?;
    let (out_rdata, out_empty, out_full) = fifo_macro(
        &mut rtl,
        "u_wbuffer_fifo",
        p.depth,
        w,
        push_out,
        drain,
        out_wdata,
    )?;
    let avail = rtl.not(in_empty)?;
    let ready = rtl.not(out_full)?;
    let go = rtl.and(avail, ready)?;
    match style {
        Style::Pattern => {
            // Iterator wrappers: pure renamings of the container
            // methods ("no more than a wrapper that renames some
            // signals") plus the copy engine between them.
            let it_in_data = rtl.buf(in_rdata)?; // rbuffer_it data path
            let it_in_pop = rtl.buf(go)?; // copy drives it_inc+it_read
            let it_out_push = rtl.buf(go)?; // wbuffer_it write+inc
            let it_out_data = rtl.buf(it_in_data)?; // copy: out <= in
            rtl.buf_into(pop_in, it_in_pop)?;
            rtl.buf_into(push_out, it_out_push)?;
            rtl.buf_into(out_wdata, it_out_data)?;
        }
        Style::Custom => {
            // Ad-hoc: drive the cores directly.
            rtl.buf_into(pop_in, go)?;
            rtl.buf_into(push_out, go)?;
            rtl.buf_into(out_wdata, in_rdata)?;
        }
    }
    // VGA drain: one pixel per cycle whenever available.
    let out_avail = rtl.not(out_empty)?;
    rtl.buf_into(drain, out_avail)?;
    rtl.buf_into(s.vga_valid, out_avail)?;
    rtl.buf_into(s.vga_data, out_rdata)?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

/// Nets of one external SRAM master port on the design entity.
struct MemNets {
    req: NetId,
    we: NetId,
    addr: NetId,
    wdata: NetId,
    ack: NetId,
    rdata: NetId,
}

fn bind_mem(nl: &mut Netlist, prefix: &str, aw: usize, dw: usize) -> Result<MemNets, HdlError> {
    let req = nl.add_net(format!("{prefix}_req"), 1)?;
    let we = nl.add_net(format!("{prefix}_we"), 1)?;
    let addr = nl.add_net(format!("{prefix}_addr"), aw)?;
    let wdata = nl.add_net(format!("{prefix}_wdata"), dw)?;
    let ack = nl.add_net(format!("{prefix}_ack"), 1)?;
    let rdata = nl.add_net(format!("{prefix}_rdata"), dw)?;
    for (port, net) in [
        (format!("{prefix}_req"), req),
        (format!("{prefix}_we"), we),
        (format!("{prefix}_addr"), addr),
        (format!("{prefix}_wdata"), wdata),
        (format!("{prefix}_ack"), ack),
        (format!("{prefix}_rdata"), rdata),
    ] {
        nl.bind_port(&port, net)?;
    }
    Ok(MemNets {
        req,
        we,
        addr,
        wdata,
        ack,
        rdata,
    })
}

fn mem_ports(builder: EntityBuilder, prefix: &str, aw: usize, dw: usize) -> EntityBuilder {
    builder
        .group(format!("{prefix} sram"))
        .port(&format!("{prefix}_req"), PortDir::Out, 1)
        .expect("static port")
        .port(&format!("{prefix}_we"), PortDir::Out, 1)
        .expect("static port")
        .port(&format!("{prefix}_addr"), PortDir::Out, aw)
        .expect("static port")
        .port(&format!("{prefix}_wdata"), PortDir::Out, dw)
        .expect("static port")
        .port(&format!("{prefix}_ack"), PortDir::In, 1)
        .expect("static port")
        .port(&format!("{prefix}_rdata"), PortDir::In, dw)
        .expect("static port")
}

/// Circular-buffer pointer datapath shared by the SRAM containers:
/// head/tail/count registers plus the address mux.
struct PointerNets {
    count_zero: NetId,
    addr: NetId,
}

fn pointer_datapath(
    rtl: &mut Rtl<'_>,
    hint: &str,
    pw: usize,
    aw: usize,
    commit_w: NetId,
    commit_r: NetId,
    sel_tail: NetId,
) -> Result<PointerNets, HdlError> {
    let head = rtl.wire(&format!("{hint}_head"), pw)?;
    let tail = rtl.wire(&format!("{hint}_tail"), pw)?;
    let count = rtl.wire(&format!("{hint}_count"), pw + 1)?;
    let head_next = rtl.inc(head)?;
    rtl.reg_into(head, head_next, Some(commit_r), 0)?;
    let tail_next = rtl.inc(tail)?;
    rtl.reg_into(tail, tail_next, Some(commit_w), 0)?;
    let count_up = rtl.inc(count)?;
    let one = rtl.constant(1, pw + 1)?;
    let count_down = rtl.sub(count, one)?;
    let count_delta = rtl.mux2(commit_w, count_down, count_up)?;
    let count_change = rtl.or(commit_w, commit_r)?;
    rtl.reg_into(count, count_delta, Some(count_change), 0)?;
    let count_zero = rtl.eq_const(count, 0)?;
    let ptr = rtl.mux2(sel_tail, head, tail)?;
    let addr = rtl.zext(ptr, aw)?;
    Ok(PointerNets { count_zero, addr })
}

/// The `saa2vga 2` design: both streams through separate external
/// static RAMs.
fn saa2vga_sram(style: Style, p: DesignParams) -> Result<Netlist, HdlError> {
    let name = match style {
        Style::Pattern => "saa2vga2_pattern",
        Style::Custom => "saa2vga2_custom",
    };
    let (w, aw) = (p.data_width, p.addr_width);
    let pw = state_bits(p.depth.next_power_of_two().max(2));
    let builder = stream_entity(name, w);
    let builder = mem_ports(builder, "im", aw, w);
    let builder = mem_ports(builder, "om", aw, w);
    let entity = builder.build()?;
    let mut nl = Netlist::new(entity);
    let s = bind_stream(&mut nl, w)?;
    let im = bind_mem(&mut nl, "im", aw, w)?;
    let om = bind_mem(&mut nl, "om", aw, w)?;
    let mut rtl = Rtl::new(&mut nl);
    // Input synchroniser and skid register (both styles).
    let vid_v1 = rtl.reg(s.vid_valid, None, 0)?;
    let vid_d1 = rtl.reg(s.vid_data, None, 0)?;
    let skid_valid = rtl.wire("skid_valid", 1)?;
    let skid_data = rtl.reg(vid_d1, Some(vid_v1), 0)?;
    rtl.buf_into(im.wdata, skid_data)?;
    match style {
        Style::Pattern => {
            // --- rbuffer_sram (generated, pruned to pop/done) ---
            let pop_req = rtl.wire("pop_req", 1)?;
            let in_count_zero = rtl.wire("in_count_zero", 1)?;
            let (_st, in_outs) = lower_fsm(
                &mut rtl,
                4,
                0,
                &[skid_valid, pop_req, im.ack, in_count_zero],
                6,
                rbuffer_fsm_logic,
            )?;
            let in_req = rtl.slice(in_outs, 0, 1)?;
            let in_we = rtl.slice(in_outs, 1, 1)?;
            let in_sel_tail = rtl.slice(in_outs, 2, 1)?;
            let in_commit_w = rtl.slice(in_outs, 3, 1)?;
            let in_commit_r = rtl.slice(in_outs, 4, 1)?;
            let pop_done = rtl.slice(in_outs, 5, 1)?;
            rtl.buf_into(im.req, in_req)?;
            rtl.buf_into(im.we, in_we)?;
            let in_ptrs = pointer_datapath(
                &mut rtl,
                "rb",
                pw,
                aw,
                in_commit_w,
                in_commit_r,
                in_sel_tail,
            )?;
            rtl.buf_into(in_count_zero, in_ptrs.count_zero)?;
            rtl.buf_into(im.addr, in_ptrs.addr)?;
            let fetched = rtl.reg(im.rdata, Some(in_commit_r), 0)?;
            // --- iterator wrappers ---
            // `done` is registered (Moore) so the container FSM and
            // the engine FSM never form a combinational cycle.
            let it_in_data = rtl.buf(fetched)?;
            let pop_done_r = rtl.reg(pop_done, None, 0)?;
            let it_in_done = rtl.buf(pop_done_r)?;
            // --- generated sequenced copy engine ---
            let out_done = rtl.wire("out_done", 1)?;
            let (_cs, copy_outs) = lower_fsm(
                &mut rtl,
                3,
                0,
                &[it_in_done, out_done],
                3,
                copy_sequenced_logic,
            )?;
            let fetch_req = rtl.slice(copy_outs, 0, 1)?;
            let store_req = rtl.slice(copy_outs, 1, 1)?;
            let latch = rtl.slice(copy_outs, 2, 1)?;
            rtl.buf_into(pop_req, fetch_req)?;
            let held = rtl.reg(it_in_data, Some(latch), 0)?;
            // --- wbuffer_sram (generated, pruned to push/done) ---
            let it_out_data = rtl.buf(held)?;
            let it_out_req = rtl.buf(store_req)?;
            rtl.buf_into(om.wdata, it_out_data)?;
            let out_count_zero = rtl.wire("out_count_zero", 1)?;
            let (_wst, out_outs) = lower_fsm(
                &mut rtl,
                4,
                0,
                &[it_out_req, out_count_zero, om.ack],
                6,
                wbuffer_fsm_logic,
            )?;
            let o_req = rtl.slice(out_outs, 0, 1)?;
            let o_we = rtl.slice(out_outs, 1, 1)?;
            let o_sel_tail = rtl.slice(out_outs, 2, 1)?;
            let o_commit_w = rtl.slice(out_outs, 3, 1)?;
            let o_commit_d = rtl.slice(out_outs, 4, 1)?;
            let push_done = rtl.slice(out_outs, 5, 1)?;
            rtl.buf_into(om.req, o_req)?;
            rtl.buf_into(om.we, o_we)?;
            let out_ptrs =
                pointer_datapath(&mut rtl, "wb", pw, aw, o_commit_w, o_commit_d, o_sel_tail)?;
            rtl.buf_into(out_count_zero, out_ptrs.count_zero)?;
            rtl.buf_into(om.addr, out_ptrs.addr)?;
            let push_done_r = rtl.reg(push_done, None, 0)?;
            rtl.buf_into(out_done, push_done_r)?;
            // VGA side: register the drained element.
            let vga_v = rtl.reg(o_commit_d, None, 0)?;
            let vga_d = rtl.reg(om.rdata, Some(o_commit_d), 0)?;
            rtl.buf_into(s.vga_valid, vga_v)?;
            rtl.buf_into(s.vga_data, vga_d)?;
            // Skid-valid flag, cleared by the input commit.
            let not_cw = rtl.not(in_commit_w)?;
            let held_flag = rtl.and(skid_valid, not_cw)?;
            let skid_next = rtl.or(held_flag, vid_v1)?;
            rtl.reg_into(skid_valid, skid_next, None, 0)?;
        }
        Style::Custom => {
            // Ad-hoc: one fused FSM runs the whole pixel path.
            // States: Idle(0) WrA(1) RelA(2) RdA(3) RelB(4) WrB(5)
            //         RelC(6) RdB(7) RelD(8).
            // Inputs: skid_valid, im.ack, om.ack, cntA_zero, cntB_zero.
            // Outputs: ia_req, ia_we, ia_sel_tail, ia_commit_w,
            //          ia_commit_r, ob_req, ob_we, ob_sel_tail,
            //          ob_commit_w, ob_commit_d, latch (11 bits).
            let cnt_a_zero = rtl.wire("cnt_a_zero", 1)?;
            let cnt_b_zero = rtl.wire("cnt_b_zero", 1)?;
            let (_st, outs) = lower_fsm(
                &mut rtl,
                9,
                0,
                &[skid_valid, im.ack, om.ack, cnt_a_zero, cnt_b_zero],
                11,
                custom_sram_fsm_logic,
            )?;
            let ia_req = rtl.slice(outs, 0, 1)?;
            let ia_we = rtl.slice(outs, 1, 1)?;
            let ia_sel_tail = rtl.slice(outs, 2, 1)?;
            let ia_commit_w = rtl.slice(outs, 3, 1)?;
            let ia_commit_r = rtl.slice(outs, 4, 1)?;
            let ob_req = rtl.slice(outs, 5, 1)?;
            let ob_we = rtl.slice(outs, 6, 1)?;
            let ob_sel_tail = rtl.slice(outs, 7, 1)?;
            let ob_commit_w = rtl.slice(outs, 8, 1)?;
            let ob_commit_d = rtl.slice(outs, 9, 1)?;
            let latch = rtl.slice(outs, 10, 1)?;
            rtl.buf_into(im.req, ia_req)?;
            rtl.buf_into(im.we, ia_we)?;
            rtl.buf_into(om.req, ob_req)?;
            rtl.buf_into(om.we, ob_we)?;
            let a_ptrs = pointer_datapath(
                &mut rtl,
                "ra",
                pw,
                aw,
                ia_commit_w,
                ia_commit_r,
                ia_sel_tail,
            )?;
            rtl.buf_into(cnt_a_zero, a_ptrs.count_zero)?;
            rtl.buf_into(im.addr, a_ptrs.addr)?;
            let b_ptrs = pointer_datapath(
                &mut rtl,
                "rb",
                pw,
                aw,
                ob_commit_w,
                ob_commit_d,
                ob_sel_tail,
            )?;
            rtl.buf_into(cnt_b_zero, b_ptrs.count_zero)?;
            rtl.buf_into(om.addr, b_ptrs.addr)?;
            let held = rtl.reg(im.rdata, Some(latch), 0)?;
            rtl.buf_into(om.wdata, held)?;
            let vga_v = rtl.reg(ob_commit_d, None, 0)?;
            let vga_d = rtl.reg(om.rdata, Some(ob_commit_d), 0)?;
            rtl.buf_into(s.vga_valid, vga_v)?;
            rtl.buf_into(s.vga_data, vga_d)?;
            let not_cw = rtl.not(ia_commit_w)?;
            let held_flag = rtl.and(skid_valid, not_cw)?;
            let skid_next = rtl.or(held_flag, vid_v1)?;
            rtl.reg_into(skid_valid, skid_next, None, 0)?;
        }
    }
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

/// FSM logic of the generated SRAM read buffer (also used by the
/// standalone Figure 5 component).
fn rbuffer_fsm_logic(s: u64, ins: &[u64]) -> (u64, u64) {
    let (skid, pop, ack, zero) = (ins[0] == 1, ins[1] == 1, ins[2] == 1, ins[3] == 1);
    const REQ: u64 = 1;
    const WE: u64 = 2;
    const SEL_TAIL: u64 = 4;
    const COMMIT_W: u64 = 8;
    const COMMIT_R: u64 = 16;
    const POP_DONE: u64 = 32;
    match s {
        0 if skid => (1, 0),
        0 if pop && !zero => (2, 0),
        0 => (0, 0),
        1 if ack => (3, REQ | WE | SEL_TAIL | COMMIT_W),
        1 => (1, REQ | WE | SEL_TAIL),
        2 if ack => (3, REQ | COMMIT_R | POP_DONE),
        2 => (2, REQ),
        _ => (0, 0),
    }
}

/// FSM logic of the generated SRAM write buffer.
fn wbuffer_fsm_logic(s: u64, ins: &[u64]) -> (u64, u64) {
    let (push, zero, ack) = (ins[0] == 1, ins[1] == 1, ins[2] == 1);
    const REQ: u64 = 1;
    const WE: u64 = 2;
    const SEL_TAIL: u64 = 4;
    const COMMIT_W: u64 = 8;
    const COMMIT_D: u64 = 16;
    const PUSH_DONE: u64 = 32;
    match s {
        0 if push => (1, 0),
        0 if !zero => (2, 0),
        0 => (0, 0),
        // Write transaction (iterator push) at the tail.
        1 if ack => (3, REQ | WE | SEL_TAIL | COMMIT_W | PUSH_DONE),
        1 => (1, REQ | WE | SEL_TAIL),
        // Drain transaction (read the head for the VGA).
        2 if ack => (3, REQ | COMMIT_D),
        2 => (2, REQ),
        _ => (0, 0),
    }
}

/// FSM logic of the generated sequenced copy engine.
fn copy_sequenced_logic(s: u64, ins: &[u64]) -> (u64, u64) {
    let (ind, outd) = (ins[0] == 1, ins[1] == 1);
    const IN_REQ: u64 = 1;
    const OUT_REQ: u64 = 2;
    const LATCH: u64 = 4;
    match s {
        0 if ind => (1, LATCH),
        0 => (0, IN_REQ),
        1 if outd => (2, 0),
        1 => (1, OUT_REQ),
        _ => (0, 0),
    }
}

/// FSM logic of the fused custom SRAM design.
fn custom_sram_fsm_logic(s: u64, ins: &[u64]) -> (u64, u64) {
    let (skid, ack_a, ack_b, a_zero, b_zero) = (
        ins[0] == 1,
        ins[1] == 1,
        ins[2] == 1,
        ins[3] == 1,
        ins[4] == 1,
    );
    const IA_REQ: u64 = 1;
    const IA_WE: u64 = 2;
    const IA_SEL_TAIL: u64 = 4;
    const IA_COMMIT_W: u64 = 8;
    const IA_COMMIT_R: u64 = 16;
    const OB_REQ: u64 = 32;
    const OB_WE: u64 = 64;
    const OB_SEL_TAIL: u64 = 128;
    const OB_COMMIT_W: u64 = 256;
    const OB_COMMIT_D: u64 = 512;
    const LATCH: u64 = 1024;
    match s {
        // Idle: commit input pixel first, then move one element along
        // the pipeline, then drain to the VGA.
        0 if skid => (1, 0),
        0 if !a_zero => (3, 0),
        0 if !b_zero => (7, 0),
        0 => (0, 0),
        // Write incoming pixel to RAM A.
        1 if ack_a => (2, IA_REQ | IA_WE | IA_SEL_TAIL | IA_COMMIT_W),
        1 => (1, IA_REQ | IA_WE | IA_SEL_TAIL),
        2 => (0, 0),
        // Read RAM A head (the "copy" fetch).
        3 if ack_a => (4, IA_REQ | IA_COMMIT_R | LATCH),
        3 => (3, IA_REQ),
        4 => (5, 0),
        // Write to RAM B (the "copy" store).
        5 if ack_b => (6, OB_REQ | OB_WE | OB_SEL_TAIL | OB_COMMIT_W),
        5 => (5, OB_REQ | OB_WE | OB_SEL_TAIL),
        6 => (0, 0),
        // Drain RAM B head to the VGA.
        7 if ack_b => (8, OB_REQ | OB_COMMIT_D),
        7 => (7, OB_REQ),
        _ => (0, 0),
    }
}

/// The `blur` design: 3-line buffer from two cascaded FIFO cores plus
/// the convolution datapath.
fn blur(style: Style, p: DesignParams) -> Result<Netlist, HdlError> {
    let name = match style {
        Style::Pattern => "blur_pattern",
        Style::Custom => "blur_custom",
    };
    let entity = stream_entity(name, p.data_width).build()?;
    let mut nl = Netlist::new(entity);
    let s = bind_stream(&mut nl, p.data_width)?;
    let mut rtl = Rtl::new(&mut nl);
    let w = p.data_width;
    let lw = p.line_width;
    // Input synchroniser.
    let vid_v1 = rtl.reg(s.vid_valid, None, 0)?;
    let vid_d1 = rtl.reg(s.vid_data, None, 0)?;
    // 3-line buffer as two cascaded line FIFOs ("a special [FIFO]
    // ... structured to provide 3 pixels in a column for each
    // access"). bot = incoming pixel, mid = one line ago, top = two
    // lines ago.
    let f1_pop = rtl.wire("f1_pop", 1)?;
    let (mid_raw, _f1_empty, f1_full) =
        fifo_macro(&mut rtl, "u_line1", lw, w, vid_v1, f1_pop, vid_d1)?;
    let f2_push = rtl.wire("f2_push", 1)?;
    let f2_pop = rtl.wire("f2_pop", 1)?;
    let (top_raw, _f2_empty, f2_full) =
        fifo_macro(&mut rtl, "u_line2", lw, w, f2_push, f2_pop, mid_raw)?;
    let shift1 = rtl.and(vid_v1, f1_full)?;
    rtl.buf_into(f1_pop, shift1)?;
    rtl.buf_into(f2_push, shift1)?;
    let both_full = rtl.and(f1_full, f2_full)?;
    let col_valid_raw = rtl.and(vid_v1, both_full)?;
    rtl.buf_into(f2_pop, col_valid_raw)?;
    // Column iterator (pattern style wraps it, custom uses it raw).
    let (col_valid, top, mid, bot) = match style {
        Style::Pattern => (
            rtl.buf(col_valid_raw)?,
            rtl.buf(top_raw)?,
            rtl.buf(mid_raw)?,
            rtl.buf(vid_d1)?,
        ),
        Style::Custom => (col_valid_raw, top_raw, mid_raw, vid_d1),
    };
    // Convolution datapath (shared structure with
    // `algo_gen::blur_datapath`): pipelined so that "ideally a new
    // filtered pixel can be generated at each clock cycle" at the
    // system clock. Stage A registers the partial vertical sums,
    // stage B holds the column-sum window.
    let sum_w = w + 2;
    let out_w = w + 4;
    let top_w = rtl.zext(top, sum_w)?;
    let bot_w = rtl.zext(bot, sum_w)?;
    let mid_w = rtl.zext(mid, sum_w - 1)?;
    let zero1 = rtl.constant(0, 1)?;
    let mid2 = rtl.concat(&[mid_w, zero1])?;
    let tb = rtl.add(top_w, bot_w)?;
    // Stage A.
    let tb_r = rtl.reg(tb, Some(col_valid), 0)?;
    let mid2_r = rtl.reg(mid2, Some(col_valid), 0)?;
    let va = rtl.reg(col_valid, None, 0)?;
    // Stage B: the right column sum and the two-deep window.
    let col_sum = rtl.add(tb_r, mid2_r)?;
    let centre = rtl.reg(col_sum, Some(va), 0)?;
    let left = rtl.reg(centre, Some(va), 0)?;
    let left_w = rtl.zext(left, out_w)?;
    let right_w = rtl.zext(col_sum, out_w)?;
    let centre_w = rtl.zext(centre, out_w - 1)?;
    let centre2 = rtl.concat(&[centre_w, zero1])?;
    let lr = rtl.add(left_w, right_w)?;
    let full_sum = rtl.add(lr, centre2)?;
    let pixel = rtl.slice(full_sum, 4, w)?;
    // Column position counter, running on the delayed column stream.
    let xw = state_bits(lw.next_power_of_two().max(2));
    let x = rtl.wire("xpos", xw)?;
    let x_inc = rtl.inc(x)?;
    let at_end = rtl.eq_const(x, lw as u64 - 1)?;
    let zero_x = rtl.constant(0, xw)?;
    let x_next = rtl.mux2(at_end, x_inc, zero_x)?;
    rtl.reg_into(x, x_next, Some(va), 0)?;
    let two = rtl.constant(2, xw)?;
    let window_full = rtl.cmp(CmpKind::Ge, x, two)?;
    let blur_valid = rtl.and(va, window_full)?;
    // Output wbuffer FIFO and VGA drain.
    let drain = rtl.wire("drain", 1)?;
    let (push, wdata) = match style {
        Style::Pattern => (rtl.buf(blur_valid)?, rtl.buf(pixel)?),
        Style::Custom => (blur_valid, pixel),
    };
    let (out_rdata, out_empty, _out_full) =
        fifo_macro(&mut rtl, "u_wbuffer_fifo", 16, w, push, drain, wdata)?;
    let out_avail = rtl.not(out_empty)?;
    rtl.buf_into(drain, out_avail)?;
    rtl.buf_into(s.vga_valid, out_avail)?;
    rtl.buf_into(s.vga_data, out_rdata)?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_designs_generate_and_validate() {
        for kind in DesignKind::ALL {
            for style in [Style::Pattern, Style::Custom] {
                let d = generate(kind, style, DesignParams::paper_default())
                    .unwrap_or_else(|e| panic!("{kind:?}/{style:?}: {e}"));
                assert_eq!(d.kind, kind);
                hdp_hdl::validate::check(&d.netlist).unwrap();
            }
        }
    }

    #[test]
    fn pattern_has_wrappers_custom_does_not() {
        let p = generate(
            DesignKind::Saa2vga1,
            Style::Pattern,
            DesignParams::paper_default(),
        )
        .unwrap();
        let c = generate(
            DesignKind::Saa2vga1,
            Style::Custom,
            DesignParams::paper_default(),
        )
        .unwrap();
        let bufs = |nl: &Netlist| {
            nl.cells()
                .iter()
                .filter(|cell| matches!(cell.prim(), Prim::Buf { .. }))
                .count()
        };
        assert!(
            bufs(&p.netlist) > bufs(&c.netlist),
            "pattern wrappers should add buffer cells"
        );
    }

    #[test]
    fn fifo_design_uses_two_block_ram_macros() {
        let d = generate(
            DesignKind::Saa2vga1,
            Style::Pattern,
            DesignParams::paper_default(),
        )
        .unwrap();
        let fifos = d
            .netlist
            .cells()
            .iter()
            .filter(|c| matches!(c.prim(), Prim::FifoMacro { .. }))
            .count();
        assert_eq!(fifos, 2);
    }

    #[test]
    fn sram_design_has_no_block_ram() {
        let d = generate(
            DesignKind::Saa2vga2,
            Style::Pattern,
            DesignParams::paper_default(),
        )
        .unwrap();
        let macros = d
            .netlist
            .cells()
            .iter()
            .filter(|c| {
                matches!(
                    c.prim(),
                    Prim::FifoMacro { .. } | Prim::BlockRam { .. } | Prim::LifoMacro { .. }
                )
            })
            .count();
        assert_eq!(macros, 0);
    }

    #[test]
    fn sram_design_exposes_two_memory_ports() {
        let d = generate(
            DesignKind::Saa2vga2,
            Style::Custom,
            DesignParams::paper_default(),
        )
        .unwrap();
        let e = d.netlist.entity();
        assert!(e.port("im_req").is_some());
        assert!(e.port("om_req").is_some());
        assert_eq!(e.port("im_addr").unwrap().width(), 16);
    }

    #[test]
    fn blur_uses_three_fifo_macros() {
        // Two line stores plus the output buffer.
        let d = generate(
            DesignKind::Blur,
            Style::Pattern,
            DesignParams::paper_default(),
        )
        .unwrap();
        let fifos = d
            .netlist
            .cells()
            .iter()
            .filter(|c| matches!(c.prim(), Prim::FifoMacro { .. }))
            .count();
        assert_eq!(fifos, 3);
    }

    #[test]
    fn labels_match_table3_rows() {
        assert_eq!(DesignKind::Saa2vga1.label(), "saa2vga 1");
        assert_eq!(DesignKind::Saa2vga2.label(), "saa2vga 2");
        assert_eq!(DesignKind::Blur.label(), "blur");
    }
}
