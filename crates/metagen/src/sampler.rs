//! Seeded sampling of the metamodel design space.
//!
//! The differential conformance engine (`hdp-conform`) needs
//! random-but-valid points of the design space the paper spans:
//! container kind × width/depth × operation subset × iterator kind ×
//! physical target. This module provides that sampler, plus the two
//! *closed* container specialisations it needs — [`queue_fifo`] and
//! [`stack_lifo_closed`] embed their FIFO/LIFO macro inside the
//! component (with guarded strobes), so the emitted VHDL contains
//! `fifo_core`/`lifo_core` instantiations and exercises the
//! interpreter's component-instance path.
//!
//! Sampling is deterministic: the same [`StdRng`] seed yields the
//! same sequence of designs, which is what makes fuzz failures
//! reproducible from a single `--seed` value.

use crate::container_gen::{rbuffer_fifo, rbuffer_sram, wbuffer_fifo, ContainerParams};
use crate::iterator_gen::{
    forward_iterator, read_width_adapter, stack_iterators, write_width_adapter,
};
use crate::ops::{MethodOp, OpSet};
use crate::stack_gen::{stack_lifo, vector_bram};
use hdp_hdl::prim::Prim;
use hdp_hdl::{Entity, HdlError, Netlist, PortDir};
use rand::rngs::StdRng;
use rand::Rng;

/// Generates the queue container with its FIFO core *embedded*: the
/// closed form of the Figure 4 wrapper, where the physical target
/// lives inside the component instead of behind a `p_*` interface.
///
/// Push/pop strobes are guarded by the core's `full`/`empty` flags,
/// so the component never violates the core's protocol regardless of
/// stimulus. Operations: `push` (+`wdata`), `pop` (head on `data`),
/// `empty`, `full` — pruned to the requested [`OpSet`].
///
/// # Errors
///
/// Propagates netlist-construction failures; rejects an empty op set.
pub fn queue_fifo(params: ContainerParams, ops: OpSet) -> Result<Netlist, HdlError> {
    closed_core("queue_fifo", params, ops, false)
}

/// Generates the stack container with its LIFO core embedded — the
/// closed counterpart of [`stack_lifo`], same guarded interface with
/// `lifo_core` inside.
///
/// # Errors
///
/// Propagates netlist-construction failures; rejects an empty op set.
pub fn stack_lifo_closed(params: ContainerParams, ops: OpSet) -> Result<Netlist, HdlError> {
    closed_core("stack_lifo_closed", params, ops, true)
}

fn closed_core(
    name: &str,
    params: ContainerParams,
    ops: OpSet,
    lifo: bool,
) -> Result<Netlist, HdlError> {
    if ops.is_empty() {
        return Err(HdlError::Unconnected {
            context: format!("{name} with an empty operation set"),
        });
    }
    let w = params.data_width;
    let depth = params.depth;
    let mut builder = Entity::builder(name).group("methods");
    for op in [
        MethodOp::Empty,
        MethodOp::Full,
        MethodOp::Push,
        MethodOp::Pop,
    ] {
        if ops.contains(op) {
            builder = builder.port(op.port_name(), PortDir::In, 1)?;
        }
    }
    let entity = builder
        .group("params")
        .port("wdata", PortDir::In, w)?
        .port("data", PortDir::Out, w)?
        .port("done", PortDir::Out, 1)?
        .build()?;
    let mut nl = Netlist::new(entity);
    let wdata = nl.add_net("wdata", w)?;
    let data = nl.add_net("data", w)?;
    let done = nl.add_net("done", 1)?;
    for (p, n) in [("wdata", wdata), ("data", data), ("done", done)] {
        nl.bind_port(p, n)?;
    }
    let mut rtl = crate::fsm::Rtl::new(&mut nl);
    let empty = rtl.wire("empty", 1)?;
    let full = rtl.wire("full", 1)?;
    let rdata = rtl.wire("rdata", w)?;
    let not_empty = rtl.not(empty)?;
    let not_full = rtl.not(full)?;
    let zero = rtl.constant(0, 1)?;
    let mut done_expr = zero;
    let push_net = if ops.contains(MethodOp::Push) {
        let m_push = rtl.netlist().add_net("m_push", 1)?;
        rtl.netlist().bind_port("m_push", m_push)?;
        let ok = rtl.and(m_push, not_full)?;
        done_expr = rtl.or(done_expr, ok)?;
        ok
    } else {
        zero
    };
    let pop_net = if ops.contains(MethodOp::Pop) {
        let m_pop = rtl.netlist().add_net("m_pop", 1)?;
        rtl.netlist().bind_port("m_pop", m_pop)?;
        let ok = rtl.and(m_pop, not_empty)?;
        done_expr = rtl.or(done_expr, ok)?;
        ok
    } else {
        zero
    };
    if ops.contains(MethodOp::Empty) {
        let m_empty = rtl.netlist().add_net("m_empty", 1)?;
        rtl.netlist().bind_port("m_empty", m_empty)?;
        let ans = rtl.and(m_empty, empty)?;
        done_expr = rtl.or(done_expr, ans)?;
    }
    if ops.contains(MethodOp::Full) {
        let m_full = rtl.netlist().add_net("m_full", 1)?;
        rtl.netlist().bind_port("m_full", m_full)?;
        let ans = rtl.and(m_full, full)?;
        done_expr = rtl.or(done_expr, ans)?;
    }
    rtl.buf_into(data, rdata)?;
    rtl.buf_into(done, done_expr)?;
    let prim = if lifo {
        Prim::LifoMacro { depth, width: w }
    } else {
        Prim::FifoMacro { depth, width: w }
    };
    rtl.netlist().add_cell(
        "u_core",
        prim,
        vec![push_net, pop_net, wdata],
        vec![rdata, empty, full],
    )?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

/// One sampled point of the design space.
#[derive(Debug)]
pub struct SampledDesign {
    /// The re-instantiable specification this design came from.
    pub spec: DesignSpec,
    /// Human-readable description, e.g. `queue_fifo w=3 d=4 ops=push+pop`.
    pub label: String,
    /// The container-kind axis (`read_buffer`, `write_buffer`,
    /// `queue`, `stack`, `vector`, `assoc_array`, or `iterator` for
    /// the standalone iterator components).
    pub kind: &'static str,
    /// The physical-target axis (`fifo_core`, `lifo_core`, `sram`,
    /// `block_ram`, `registers` for iterator wrappers, or
    /// `async_fifo` for the clock-domain-crossing queue).
    pub target: &'static str,
    /// The generated, validated netlist.
    pub netlist: Netlist,
}

/// The `(kind, target)` families the sampler draws from — every
/// Table 1 container row mapped onto its physical target, plus the
/// standalone iterator components.
pub const FAMILIES: [(&str, &str); 12] = [
    ("read_buffer", "fifo_core"),
    ("read_buffer", "sram"),
    ("write_buffer", "fifo_core"),
    ("stack", "lifo_core"),
    ("stack", "lifo_core"), // closed form, core embedded
    ("queue", "fifo_core"),
    ("vector", "block_ram"),
    ("assoc_array", "block_ram"),
    ("iterator", "registers"), // forward wrapper
    ("iterator", "registers"), // stack iterator pair
    ("iterator", "registers"), // width adapters
    ("queue", "async_fifo"),   // Gray-coded clock-domain crossing
];

/// The `wr:rd` integer period ratios the sampler draws for the
/// `async_fifo` family — both directions of 1:1, 1:2 and 1:3, plus
/// the coprime 2:3 pair, so the conformance sweep exercises every
/// interleaving class the deterministic multi-domain scheduler
/// distinguishes.
pub const RATIOS: [(u64, u64); 7] = [(1, 1), (1, 2), (2, 1), (1, 3), (3, 1), (2, 3), (3, 2)];

/// A point of the design space as parameters, separate from the
/// netlist it instantiates — so the conformance shrinker can mutate
/// depth/width and re-generate, and so reproducers can be stored as
/// plain data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSpec {
    /// Index into [`FAMILIES`].
    pub family: usize,
    /// Element width in bits (1–16 for containers; the narrow side of
    /// width adapters).
    pub data_width: usize,
    /// Capacity in elements.
    pub depth: usize,
    /// External address-bus width (`rbuffer_sram` only).
    pub addr_width: usize,
    /// Key width (`assoc_bram` only).
    pub key_width: usize,
    /// Wide-side width (width adapters only; a multiple of
    /// `data_width`).
    pub wide: usize,
    /// Width adapters: write-side FSM instead of read-side.
    pub write_side: bool,
    /// The operation subset (container families only).
    pub ops: OpSet,
    /// Write-domain period in base steps (`async_fifo` only; 1
    /// elsewhere).
    pub wr_period: u64,
    /// Read-domain period in base steps (`async_fifo` only; 1
    /// elsewhere).
    pub rd_period: u64,
}

impl DesignSpec {
    /// The container-kind axis label.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        FAMILIES[self.family].0
    }

    /// The physical-target axis label.
    #[must_use]
    pub fn target(&self) -> &'static str {
        FAMILIES[self.family].1
    }

    /// A short human-readable description.
    #[must_use]
    pub fn label(&self) -> String {
        let w = self.data_width;
        let d = self.depth;
        let ops = ops_suffix(self.ops);
        match self.family {
            0 => format!("rbuffer_fifo w={w} ops={ops}"),
            1 => format!("rbuffer_sram w={w} d={d} aw={} ops={ops}", self.addr_width),
            2 => format!("wbuffer_fifo w={w} ops={ops}"),
            3 => format!("stack_lifo w={w} ops={ops}"),
            4 => format!("stack_lifo_closed w={w} d={d} ops={ops}"),
            5 => format!("queue_fifo w={w} d={d} ops={ops}"),
            6 => format!("vector_bram w={w} d={d} ops={ops}"),
            7 => format!("assoc_bram w={w} d={d} k={} ops={ops}", self.key_width),
            8 => format!("forward_iterator w={w}"),
            9 => format!("stack_iterators w={w}"),
            10 => {
                let side = if self.write_side { "write" } else { "read" };
                format!("{side}_width_adapter {}->{w}", self.wide)
            }
            _ => format!(
                "async_fifo w={w} d={d} ratio={}:{}",
                self.wr_period, self.rd_period
            ),
        }
    }

    /// Generates the netlist for this specification.
    ///
    /// # Errors
    ///
    /// Propagates generator failures — not expected for specs built
    /// by [`sample_spec`]; a failure here is itself a conformance
    /// finding.
    pub fn instantiate(&self) -> Result<Netlist, HdlError> {
        let params = ContainerParams {
            data_width: self.data_width,
            depth: self.depth,
            addr_width: self.addr_width,
        };
        let w = self.data_width;
        match self.family {
            0 => rbuffer_fifo(params, self.ops),
            1 => rbuffer_sram(params, self.ops),
            2 => wbuffer_fifo(params, self.ops),
            3 => stack_lifo(params, self.ops),
            4 => stack_lifo_closed(params, self.ops),
            5 => queue_fifo(params, self.ops),
            6 => vector_bram(params, self.ops),
            7 => crate::assoc_gen::assoc_bram(params, self.key_width, self.ops),
            8 => forward_iterator("fwd_it", w),
            9 => stack_iterators("stack_it", w),
            10 => {
                if self.write_side {
                    write_width_adapter("wr_adapt", self.wide, w)
                } else {
                    read_width_adapter("rd_adapt", self.wide, w)
                }
            }
            _ => crate::cdc_gen::async_fifo(&crate::cdc_gen::AsyncFifoParams {
                data_width: w,
                addr_width: crate::fsm::state_bits(self.depth.max(2)),
                wr_period: self.wr_period,
                rd_period: self.rd_period,
            }),
        }
    }
}

/// Picks a non-empty random subset of `pool`.
fn sample_ops(rng: &mut StdRng, pool: &[MethodOp]) -> OpSet {
    let mut set = OpSet::new();
    for &op in pool {
        if rng.gen_range(0..2u32) == 1 {
            set = set.with(op);
        }
    }
    if set.is_empty() {
        set = set.with(pool[rng.gen_range(0..pool.len())]);
    }
    set
}

fn ops_suffix(ops: OpSet) -> String {
    ops.iter()
        .map(|op| &op.port_name()[2..])
        .collect::<Vec<_>>()
        .join("+")
}

/// Samples one random-but-valid design specification.
///
/// Every family in [`FAMILIES`] is drawn with equal probability;
/// widths span 1–16 bits and depths 2–8 elements, with each family's
/// structural constraints (e.g. the associative array's key width)
/// respected by construction.
pub fn sample_spec(rng: &mut StdRng) -> DesignSpec {
    let family = rng.gen_range(0..FAMILIES.len());
    sample_spec_in(rng, family)
}

/// Samples the non-family axes of a specification for a *fixed*
/// family — the stratified form of [`sample_spec`] used by the
/// characterisation sweep, which round-robins the family axis to
/// guarantee even coverage instead of leaving it to chance.
///
/// Draws exactly the random values [`sample_spec`] draws after its
/// family pick, so `sample_spec` delegates here and fixed-seed
/// sequences are unchanged.
///
/// # Panics
///
/// When `family` is not an index into [`FAMILIES`].
pub fn sample_spec_in(rng: &mut StdRng, family: usize) -> DesignSpec {
    assert!(
        family < FAMILIES.len(),
        "family {family} out of range (< {})",
        FAMILIES.len()
    );
    let data_width = rng.gen_range(1..=16usize);
    let depth = rng.gen_range(2..=8usize);
    let addr_width = rng.gen_range(8..=16usize);
    let ops = match family {
        0 | 1 => sample_ops(rng, &[MethodOp::Empty, MethodOp::Size, MethodOp::Pop]),
        2 => sample_ops(rng, &[MethodOp::Full, MethodOp::Push]),
        3..=5 => sample_ops(
            rng,
            &[
                MethodOp::Empty,
                MethodOp::Full,
                MethodOp::Push,
                MethodOp::Pop,
            ],
        ),
        6 => sample_ops(
            rng,
            &[
                MethodOp::Read,
                MethodOp::Write,
                MethodOp::Inc,
                MethodOp::Dec,
                MethodOp::Index,
            ],
        ),
        7 => sample_ops(rng, &[MethodOp::Read, MethodOp::Write]),
        _ => OpSet::new(),
    };
    let aw = crate::fsm::state_bits(depth.next_power_of_two().max(2));
    let key_width = rng.gen_range(aw..=16usize);
    let (data_width, wide) = if family == 10 {
        let narrow = rng.gen_range(1..=8usize);
        (narrow, narrow * rng.gen_range(2..=4usize))
    } else {
        (data_width, 0)
    };
    // The CDC queue constrains depth to a power of two (its pointers
    // carry exactly one wrap bit) and draws a period ratio for its
    // `wr`/`rd` domain pair.
    let (depth, (wr_period, rd_period)) = if family == 11 {
        (
            [2usize, 4, 8][rng.gen_range(0..3usize)],
            RATIOS[rng.gen_range(0..RATIOS.len())],
        )
    } else {
        (depth, (1, 1))
    };
    DesignSpec {
        family,
        data_width,
        depth,
        addr_width,
        key_width,
        wide,
        write_side: rng.gen_range(0..2u32) == 1,
        ops,
        wr_period,
        rd_period,
    }
}

/// Samples one random-but-valid design: [`sample_spec`] plus
/// instantiation.
///
/// # Errors
///
/// Propagates generator failures (see [`DesignSpec::instantiate`]).
pub fn sample_design(rng: &mut StdRng) -> Result<SampledDesign, HdlError> {
    let spec = sample_spec(rng);
    let netlist = spec.instantiate()?;
    Ok(SampledDesign {
        label: spec.label(),
        kind: spec.kind(),
        target: spec.target(),
        netlist,
        spec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    #[test]
    fn sampling_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..40 {
            let da = sample_design(&mut a).unwrap();
            let db = sample_design(&mut b).unwrap();
            assert_eq!(da.label, db.label);
            assert_eq!(da.netlist.cells().len(), db.netlist.cells().len());
        }
    }

    #[test]
    fn stratified_sampling_matches_the_family_draw() {
        // `sample_spec` must equal "draw the family, then delegate" —
        // this pins the split point so fixed-seed conformance
        // sequences survive the stratified refactor.
        let mut a = StdRng::seed_from_u64(97);
        let mut b = StdRng::seed_from_u64(97);
        for _ in 0..50 {
            let spec = sample_spec(&mut a);
            let family = b.gen_range(0..FAMILIES.len());
            assert_eq!(spec, sample_spec_in(&mut b, family));
        }
    }

    #[test]
    fn stratified_sampling_covers_every_family_in_one_round() {
        let mut rng = StdRng::seed_from_u64(1);
        for family in 0..FAMILIES.len() {
            let spec = sample_spec_in(&mut rng, family);
            assert_eq!(spec.family, family);
            spec.instantiate().unwrap();
        }
    }

    #[test]
    fn samples_cover_all_kinds_and_targets() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut kinds = BTreeSet::new();
        let mut targets = BTreeSet::new();
        for _ in 0..200 {
            let d = sample_design(&mut rng).unwrap();
            kinds.insert(d.kind);
            targets.insert(d.target);
        }
        for kind in [
            "read_buffer",
            "write_buffer",
            "queue",
            "stack",
            "vector",
            "assoc_array",
        ] {
            assert!(kinds.contains(kind), "kind {kind} never sampled");
        }
        for target in ["fifo_core", "lifo_core", "sram", "block_ram", "async_fifo"] {
            assert!(targets.contains(target), "target {target} never sampled");
        }
    }

    #[test]
    fn sampled_async_fifos_pass_the_cdc_lint() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut seen = 0;
        while seen < 5 {
            let d = sample_design(&mut rng).unwrap();
            if d.spec.family != 11 {
                continue;
            }
            seen += 1;
            assert!(d.netlist.is_multi_domain(), "{}", d.label);
            let violations = hdp_hdl::cdc::lint(&d.netlist);
            assert!(violations.is_empty(), "{}: {violations:?}", d.label);
        }
    }

    #[test]
    fn sampled_designs_emit_vhdl() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..60 {
            let d = sample_design(&mut rng).unwrap();
            let text = hdp_hdl::vhdl::emit_component(&d.netlist, "generated").unwrap();
            assert!(text.contains("entity"), "{}", d.label);
        }
    }

    #[test]
    fn closed_queue_round_trips_data() {
        use hdp_sim::{NetlistComponent, Simulator};
        let params = ContainerParams {
            data_width: 8,
            depth: 4,
            addr_width: 16,
        };
        let ops = OpSet::of(&[
            MethodOp::Push,
            MethodOp::Pop,
            MethodOp::Empty,
            MethodOp::Full,
        ]);
        let nl = queue_fifo(params, ops).unwrap();
        let mut sim = Simulator::new();
        let mut sig = |n: &str, w: usize| sim.add_signal(n, w).unwrap();
        let m_push = sig("m_push", 1);
        let m_pop = sig("m_pop", 1);
        let m_empty = sig("m_empty", 1);
        let m_full = sig("m_full", 1);
        let wdata = sig("wdata", 8);
        let data = sig("data", 8);
        let done = sig("done", 1);
        let dut = NetlistComponent::new(
            "q",
            nl,
            sim.bus(),
            &[
                ("m_empty", m_empty),
                ("m_full", m_full),
                ("m_push", m_push),
                ("m_pop", m_pop),
                ("wdata", wdata),
                ("data", data),
                ("done", done),
            ],
        )
        .unwrap();
        sim.add_component(dut);
        for s in [m_push, m_pop, m_empty, m_full, wdata] {
            sim.poke(s, 0).unwrap();
        }
        sim.reset().unwrap();
        for v in [5u64, 6, 7] {
            sim.poke(m_push, 1).unwrap();
            sim.poke(wdata, v).unwrap();
            sim.step().unwrap();
        }
        sim.poke(m_push, 0).unwrap();
        sim.poke(m_pop, 1).unwrap();
        let mut seen = Vec::new();
        for _ in 0..3 {
            sim.settle().unwrap();
            assert_eq!(sim.peek(done).unwrap().to_u64(), Some(1));
            seen.push(sim.peek(data).unwrap().to_u64().unwrap());
            sim.step().unwrap();
        }
        // FIFO order, unlike the stack's reversal.
        assert_eq!(seen, vec![5, 6, 7]);
    }

    #[test]
    fn closed_stack_guards_against_overflow() {
        use hdp_sim::{NetlistComponent, Simulator};
        let params = ContainerParams {
            data_width: 4,
            depth: 2,
            addr_width: 16,
        };
        let nl = stack_lifo_closed(params, OpSet::of(&[MethodOp::Push, MethodOp::Full])).unwrap();
        let mut sim = Simulator::new();
        let mut sig = |n: &str, w: usize| sim.add_signal(n, w).unwrap();
        let m_push = sig("m_push", 1);
        let m_full = sig("m_full", 1);
        let wdata = sig("wdata", 4);
        let data = sig("data", 4);
        let done = sig("done", 1);
        let dut = NetlistComponent::new(
            "s",
            nl,
            sim.bus(),
            &[
                ("m_full", m_full),
                ("m_push", m_push),
                ("wdata", wdata),
                ("data", data),
                ("done", done),
            ],
        )
        .unwrap();
        sim.add_component(dut);
        for s in [m_push, m_full, wdata] {
            sim.poke(s, 0).unwrap();
        }
        sim.reset().unwrap();
        // Push past capacity: the guard drops the extra pushes, and
        // done deasserts, instead of a core protocol violation.
        sim.poke(m_push, 1).unwrap();
        for v in 0..4u64 {
            sim.poke(wdata, v).unwrap();
            sim.settle().unwrap();
            let expect_ok = v < 2;
            assert_eq!(
                sim.peek(done).unwrap().to_u64(),
                Some(u64::from(expect_ok)),
                "push #{v}"
            );
            sim.step().unwrap();
        }
        sim.poke(m_push, 0).unwrap();
        sim.poke(m_full, 1).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.peek(done).unwrap().to_u64(), Some(1));
    }
}
