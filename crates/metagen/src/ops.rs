//! Operation sets: the "available operations" of the metamodel.

use std::fmt;

/// A container/iterator method the metamodel can generate logic for.
///
/// These are the method ports of the generated entities — `m_pop`,
/// `m_empty` and `m_size` in Figure 4 — plus the remaining Table 2
/// operations. The generator only materialises the ports and logic of
/// the operations actually selected (§3.4: "including only those
/// resources that are really used by the selected operations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodOp {
    /// Query: is the container empty? (`m_empty`)
    Empty,
    /// Query: element count. (`m_size`)
    Size,
    /// Consume the head/top element. (`m_pop`)
    Pop,
    /// Append/push an element. (`m_push`)
    Push,
    /// Query: is the container full? (`m_full`)
    Full,
    /// Iterator: get the element at the current position.
    Read,
    /// Iterator: put the element at the current position.
    Write,
    /// Iterator: move forward.
    Inc,
    /// Iterator: move backwards.
    Dec,
    /// Iterator: set the current position.
    Index,
}

impl MethodOp {
    /// All operations.
    pub const ALL: [MethodOp; 10] = [
        MethodOp::Empty,
        MethodOp::Size,
        MethodOp::Pop,
        MethodOp::Push,
        MethodOp::Full,
        MethodOp::Read,
        MethodOp::Write,
        MethodOp::Inc,
        MethodOp::Dec,
        MethodOp::Index,
    ];

    /// The method-port name (`m_pop`, `m_empty`, ...).
    #[must_use]
    pub fn port_name(self) -> &'static str {
        match self {
            MethodOp::Empty => "m_empty",
            MethodOp::Size => "m_size",
            MethodOp::Pop => "m_pop",
            MethodOp::Push => "m_push",
            MethodOp::Full => "m_full",
            MethodOp::Read => "m_read",
            MethodOp::Write => "m_write",
            MethodOp::Inc => "m_inc",
            MethodOp::Dec => "m_dec",
            MethodOp::Index => "m_index",
        }
    }
}

impl fmt::Display for MethodOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.port_name())
    }
}

/// A set of selected operations.
///
/// # Example
///
/// ```
/// use hdp_metagen::{MethodOp, OpSet};
///
/// let ops = OpSet::of(&[MethodOp::Pop, MethodOp::Empty]);
/// assert!(ops.contains(MethodOp::Pop));
/// assert!(!ops.contains(MethodOp::Size));
/// assert_eq!(ops.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpSet(u16);

impl OpSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        Self(0)
    }

    /// A set holding exactly the given operations.
    #[must_use]
    pub fn of(ops: &[MethodOp]) -> Self {
        let mut set = Self::new();
        for &op in ops {
            set = set.with(op);
        }
        set
    }

    /// The Figure 4 read-buffer set: `empty`, `size`, `pop`.
    #[must_use]
    pub fn figure4() -> Self {
        Self::of(&[MethodOp::Empty, MethodOp::Size, MethodOp::Pop])
    }

    fn bit(op: MethodOp) -> u16 {
        1 << MethodOp::ALL
            .iter()
            .position(|&o| o == op)
            .expect("op in ALL")
    }

    /// Returns the set with `op` added.
    #[must_use]
    pub fn with(self, op: MethodOp) -> Self {
        Self(self.0 | Self::bit(op))
    }

    /// Whether `op` is selected.
    #[must_use]
    pub fn contains(self, op: MethodOp) -> bool {
        self.0 & Self::bit(op) != 0
    }

    /// Number of selected operations.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if no operations are selected.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the selected operations in [`MethodOp::ALL`]
    /// order.
    pub fn iter(self) -> impl Iterator<Item = MethodOp> {
        MethodOp::ALL
            .into_iter()
            .filter(move |&op| self.contains(op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set() {
        let s = OpSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        for op in MethodOp::ALL {
            assert!(!s.contains(op));
        }
    }

    #[test]
    fn with_and_contains() {
        let s = OpSet::new().with(MethodOp::Read).with(MethodOp::Inc);
        assert!(s.contains(MethodOp::Read));
        assert!(s.contains(MethodOp::Inc));
        assert!(!s.contains(MethodOp::Write));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn with_is_idempotent() {
        let s = OpSet::of(&[MethodOp::Pop]);
        assert_eq!(s.with(MethodOp::Pop), s);
    }

    #[test]
    fn figure4_set() {
        let s = OpSet::figure4();
        assert!(s.contains(MethodOp::Empty));
        assert!(s.contains(MethodOp::Size));
        assert!(s.contains(MethodOp::Pop));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iter_respects_order() {
        let s = OpSet::of(&[MethodOp::Inc, MethodOp::Empty]);
        let ops: Vec<MethodOp> = s.iter().collect();
        assert_eq!(ops, vec![MethodOp::Empty, MethodOp::Inc]);
    }

    #[test]
    fn port_names_are_m_prefixed() {
        for op in MethodOp::ALL {
            assert!(op.port_name().starts_with("m_"), "{op}");
        }
    }
}
