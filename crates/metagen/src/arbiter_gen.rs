//! Generated arbitration logic for shared physical resources.
//!
//! "\[Metaprogramming\] allows automatic generation of arbitration
//! logic for shared physical resources (e.g. RAM)." (§3.4)

use crate::fsm::{lower_fsm, Rtl};
use hdp_hdl::{Entity, HdlError, NetId, Netlist, PortDir};

/// Grant policy of the generated arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Lowest-index master wins.
    FixedPriority,
    /// Rotating priority (bounded fairness).
    RoundRobin,
}

/// Generates an `n`-master arbiter for one req/ack memory port.
///
/// Per-master ports: `mI_req`, `mI_we`, `mI_addr`, `mI_wdata` in,
/// `mI_ack`, `mI_rdata` out. Downstream: `s_req`, `s_we`, `s_addr`,
/// `s_wdata` out, `s_ack`, `s_rdata` in. A grant is held for the
/// whole four-phase transaction.
///
/// # Errors
///
/// Returns [`HdlError::InvalidWidth`] for `n` outside `2..=4` (the
/// FSM table grows as `2^n`; wider arbiters would cascade), plus
/// netlist-construction failures.
pub fn arbiter(
    name: &str,
    n: usize,
    addr_width: usize,
    data_width: usize,
    policy: Policy,
) -> Result<Netlist, HdlError> {
    if !(2..=4).contains(&n) {
        return Err(HdlError::InvalidWidth { width: n });
    }
    let mut builder = Entity::builder(name);
    for i in 0..n {
        builder = builder
            .group(format!("master {i}"))
            .port(&format!("m{i}_req"), PortDir::In, 1)?
            .port(&format!("m{i}_we"), PortDir::In, 1)?
            .port(&format!("m{i}_addr"), PortDir::In, addr_width)?
            .port(&format!("m{i}_wdata"), PortDir::In, data_width)?
            .port(&format!("m{i}_ack"), PortDir::Out, 1)?
            .port(&format!("m{i}_rdata"), PortDir::Out, data_width)?;
    }
    let entity = builder
        .group("memory port")
        .port("s_req", PortDir::Out, 1)?
        .port("s_we", PortDir::Out, 1)?
        .port("s_addr", PortDir::Out, addr_width)?
        .port("s_wdata", PortDir::Out, data_width)?
        .port("s_ack", PortDir::In, 1)?
        .port("s_rdata", PortDir::In, data_width)?
        .build()?;
    let mut nl = Netlist::new(entity);
    let mut m_req = Vec::new();
    let mut m_we = Vec::new();
    let mut m_addr = Vec::new();
    let mut m_wdata = Vec::new();
    let mut m_ack = Vec::new();
    let mut m_rdata = Vec::new();
    for i in 0..n {
        let req = nl.add_net(format!("m{i}_req"), 1)?;
        let we = nl.add_net(format!("m{i}_we"), 1)?;
        let addr = nl.add_net(format!("m{i}_addr"), addr_width)?;
        let wdata = nl.add_net(format!("m{i}_wdata"), data_width)?;
        let ack = nl.add_net(format!("m{i}_ack"), 1)?;
        let rdata = nl.add_net(format!("m{i}_rdata"), data_width)?;
        for (p, net) in [
            (format!("m{i}_req"), req),
            (format!("m{i}_we"), we),
            (format!("m{i}_addr"), addr),
            (format!("m{i}_wdata"), wdata),
            (format!("m{i}_ack"), ack),
            (format!("m{i}_rdata"), rdata),
        ] {
            nl.bind_port(&p, net)?;
        }
        m_req.push(req);
        m_we.push(we);
        m_addr.push(addr);
        m_wdata.push(wdata);
        m_ack.push(ack);
        m_rdata.push(rdata);
    }
    let s_req = nl.add_net("s_req", 1)?;
    let s_we = nl.add_net("s_we", 1)?;
    let s_addr = nl.add_net("s_addr", addr_width)?;
    let s_wdata = nl.add_net("s_wdata", data_width)?;
    let s_ack = nl.add_net("s_ack", 1)?;
    let s_rdata = nl.add_net("s_rdata", data_width)?;
    for (p, net) in [
        ("s_req", s_req),
        ("s_we", s_we),
        ("s_addr", s_addr),
        ("s_wdata", s_wdata),
        ("s_ack", s_ack),
        ("s_rdata", s_rdata),
    ] {
        nl.bind_port(p, net)?;
    }
    let mut rtl = Rtl::new(&mut nl);
    // Grant FSM. States: for fixed priority, Idle(0) and Granted_i
    // (1+i). For round robin, Idle_last(i) (0..n) paired with
    // Granted_i (n+i): the idle state remembers the last grantee.
    // Outputs: one-hot grant vector (n bits).
    let n_states = match policy {
        Policy::FixedPriority => 1 + n,
        Policy::RoundRobin => 2 * n,
    };
    let reqs: Vec<NetId> = m_req.clone();
    let (_state, grant_vec) = lower_fsm(
        &mut rtl,
        n_states,
        match policy {
            Policy::FixedPriority => 0,
            // Idle with last = n-1, so master 0 is first in rotation.
            Policy::RoundRobin => (n - 1) as u64,
        },
        &reqs,
        n,
        |s, ins| {
            let requesting = |i: usize| ins[i] == 1;
            match policy {
                Policy::FixedPriority => {
                    if s == 0 {
                        // Idle: grant the lowest requester.
                        for i in 0..n {
                            if requesting(i) {
                                return (1 + i as u64, 0);
                            }
                        }
                        (0, 0)
                    } else {
                        let i = (s - 1) as usize;
                        if requesting(i) {
                            (s, 1 << i)
                        } else {
                            (0, 0)
                        }
                    }
                }
                Policy::RoundRobin => {
                    if s < n as u64 {
                        // Idle, last grantee was s: rotate.
                        let last = s as usize;
                        for offset in 1..=n {
                            let i = (last + offset) % n;
                            if requesting(i) {
                                return ((n + i) as u64, 0);
                            }
                        }
                        (s, 0)
                    } else {
                        let i = (s as usize) - n;
                        if requesting(i) {
                            (s, 1 << i)
                        } else {
                            (i as u64, 0) // idle, remembering last = i
                        }
                    }
                }
            }
        },
    )?;
    // Downstream command muxing and per-master response gating.
    let mut req_any = rtl.constant(0, 1)?;
    let mut we_any = rtl.constant(0, 1)?;
    let mut addr_mux = rtl.constant(0, addr_width)?;
    let mut wdata_mux = rtl.constant(0, data_width)?;
    for i in 0..n {
        let g = rtl.slice(grant_vec, i, 1)?;
        let gated_req = rtl.and(g, m_req[i])?;
        req_any = rtl.or(req_any, gated_req)?;
        let gated_we = rtl.and(g, m_we[i])?;
        we_any = rtl.or(we_any, gated_we)?;
        addr_mux = rtl.mux2(g, addr_mux, m_addr[i])?;
        wdata_mux = rtl.mux2(g, wdata_mux, m_wdata[i])?;
        let ack_i = rtl.and(g, s_ack)?;
        rtl.buf_into(m_ack[i], ack_i)?;
        rtl.buf_into(m_rdata[i], s_rdata)?;
    }
    rtl.buf_into(s_req, req_any)?;
    rtl.buf_into(s_we, we_any)?;
    rtl.buf_into(s_addr, addr_mux)?;
    rtl.buf_into(s_wdata, wdata_mux)?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_sim::{NetlistComponent, SignalId, Simulator};

    struct Rig {
        sim: Simulator,
        m_req: Vec<SignalId>,
        m_we: Vec<SignalId>,
        m_addr: Vec<SignalId>,
        m_wdata: Vec<SignalId>,
        m_ack: Vec<SignalId>,
        m_rdata: Vec<SignalId>,
    }

    fn rig(n: usize, policy: Policy, latency: u32) -> Rig {
        let nl = arbiter("arb", n, 16, 8, policy).unwrap();
        let mut sim = Simulator::new();
        let mut map: Vec<(String, SignalId)> = Vec::new();
        let mut m_req = Vec::new();
        let mut m_we = Vec::new();
        let mut m_addr = Vec::new();
        let mut m_wdata = Vec::new();
        let mut m_ack = Vec::new();
        let mut m_rdata = Vec::new();
        for i in 0..n {
            let req = sim.add_signal(format!("m{i}_req"), 1).unwrap();
            let we = sim.add_signal(format!("m{i}_we"), 1).unwrap();
            let addr = sim.add_signal(format!("m{i}_addr"), 16).unwrap();
            let wdata = sim.add_signal(format!("m{i}_wdata"), 8).unwrap();
            let ack = sim.add_signal(format!("m{i}_ack"), 1).unwrap();
            let rdata = sim.add_signal(format!("m{i}_rdata"), 8).unwrap();
            for (name, s) in [
                (format!("m{i}_req"), req),
                (format!("m{i}_we"), we),
                (format!("m{i}_addr"), addr),
                (format!("m{i}_wdata"), wdata),
                (format!("m{i}_ack"), ack),
                (format!("m{i}_rdata"), rdata),
            ] {
                map.push((name, s));
            }
            for s in [req, we, addr, wdata] {
                sim.poke(s, 0).unwrap();
            }
            m_req.push(req);
            m_we.push(we);
            m_addr.push(addr);
            m_wdata.push(wdata);
            m_ack.push(ack);
            m_rdata.push(rdata);
        }
        let s_req = sim.add_signal("s_req", 1).unwrap();
        let s_we = sim.add_signal("s_we", 1).unwrap();
        let s_addr = sim.add_signal("s_addr", 16).unwrap();
        let s_wdata = sim.add_signal("s_wdata", 8).unwrap();
        let s_ack = sim.add_signal("s_ack", 1).unwrap();
        let s_rdata = sim.add_signal("s_rdata", 8).unwrap();
        for (name, s) in [
            ("s_req", s_req),
            ("s_we", s_we),
            ("s_addr", s_addr),
            ("s_wdata", s_wdata),
            ("s_ack", s_ack),
            ("s_rdata", s_rdata),
        ] {
            map.push((name.to_owned(), s));
        }
        sim.add_component(hdp_sim::devices::Sram::new(
            "u_sram", 16, 8, latency, s_req, s_we, s_addr, s_wdata, s_ack, s_rdata,
        ));
        let map_refs: Vec<(&str, SignalId)> = map.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        let dut = NetlistComponent::new("arb", nl, sim.bus(), &map_refs).unwrap();
        sim.add_component(dut);
        sim.reset().unwrap();
        Rig {
            sim,
            m_req,
            m_we,
            m_addr,
            m_wdata,
            m_ack,
            m_rdata,
        }
    }

    fn write(r: &mut Rig, i: usize, addr: u64, value: u64) {
        r.sim.poke(r.m_req[i], 1).unwrap();
        r.sim.poke(r.m_we[i], 1).unwrap();
        r.sim.poke(r.m_addr[i], addr).unwrap();
        r.sim.poke(r.m_wdata[i], value).unwrap();
        for _ in 0..40 {
            r.sim.step().unwrap();
            if r.sim.peek(r.m_ack[i]).unwrap().to_u64() == Some(1) {
                r.sim.poke(r.m_req[i], 0).unwrap();
                r.sim.poke(r.m_we[i], 0).unwrap();
                r.sim.step().unwrap();
                return;
            }
        }
        panic!("master {i} never acked");
    }

    fn read(r: &mut Rig, i: usize, addr: u64) -> u64 {
        r.sim.poke(r.m_req[i], 1).unwrap();
        r.sim.poke(r.m_we[i], 0).unwrap();
        r.sim.poke(r.m_addr[i], addr).unwrap();
        for _ in 0..40 {
            r.sim.step().unwrap();
            if r.sim.peek(r.m_ack[i]).unwrap().to_u64() == Some(1) {
                let v = r.sim.peek(r.m_rdata[i]).unwrap().to_u64().unwrap();
                r.sim.poke(r.m_req[i], 0).unwrap();
                r.sim.step().unwrap();
                return v;
            }
        }
        panic!("master {i} never acked");
    }

    #[test]
    fn generated_arbiter_shares_memory() {
        let mut r = rig(2, Policy::FixedPriority, 2);
        write(&mut r, 0, 5, 0xA1);
        write(&mut r, 1, 6, 0xB2);
        assert_eq!(read(&mut r, 1, 5), 0xA1);
        assert_eq!(read(&mut r, 0, 6), 0xB2);
    }

    #[test]
    fn generated_round_robin_works() {
        let mut r = rig(2, Policy::RoundRobin, 1);
        write(&mut r, 0, 1, 10);
        write(&mut r, 1, 2, 20);
        write(&mut r, 0, 3, 30);
        assert_eq!(read(&mut r, 0, 2), 20);
    }

    #[test]
    fn three_master_arbiter_generates() {
        let nl = arbiter("arb3", 3, 16, 8, Policy::RoundRobin).unwrap();
        assert!(nl.entity().port("m2_req").is_some());
    }

    #[test]
    fn master_count_bounds() {
        assert!(arbiter("a", 1, 16, 8, Policy::FixedPriority).is_err());
        assert!(arbiter("a", 5, 16, 8, Policy::FixedPriority).is_err());
    }

    #[test]
    fn simultaneous_requests_never_double_ack() {
        let mut r = rig(3, Policy::RoundRobin, 2);
        for i in 0..3 {
            r.sim.poke(r.m_req[i], 1).unwrap();
            r.sim.poke(r.m_we[i], 1).unwrap();
            r.sim.poke(r.m_addr[i], i as u64).unwrap();
            r.sim.poke(r.m_wdata[i], i as u64).unwrap();
        }
        for _ in 0..40 {
            r.sim.step().unwrap();
            let acks = (0..3)
                .filter(|&i| r.sim.peek(r.m_ack[i]).unwrap().to_u64() == Some(1))
                .count();
            assert!(acks <= 1);
            for i in 0..3 {
                if r.sim.peek(r.m_ack[i]).unwrap().to_u64() == Some(1) {
                    r.sim.poke(r.m_req[i], 0).unwrap();
                }
            }
        }
    }
}
