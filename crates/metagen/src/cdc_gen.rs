//! Clock-domain-crossing generators: the `async_fifo` family.
//!
//! The asynchronous FIFO is the canonical hardware design pattern for
//! moving data between two clock domains: binary read/write pointers
//! are Gray-coded before crossing (so at most one bit is in flight per
//! edge) and resynchronized through two-flop synchronizer chains. The
//! generator here produces the textbook structure — Gray-coded
//! pointers, 2-flop synchronizers, a register-file data array — over a
//! `wr`/`rd` domain pair with parameterized integer periods, matching
//! the structural patterns [`hdp_hdl::cdc::lint`] accepts.
//!
//! Three deliberately *broken* variants accompany the clean one, each
//! tripping exactly one lint class: a binary-coded pointer crossing
//! ([`hdp_hdl::cdc::CdcViolation::UnsynchronizedMultiBit`]),
//! combinational logic inside a crossing
//! ([`hdp_hdl::cdc::CdcViolation::CombinationalCrossing`]), and a
//! single-flop synchronizer
//! ([`hdp_hdl::cdc::CdcViolation::MissingSynchronizer`]).

use crate::fsm::Rtl;
use hdp_hdl::prim::CmpKind;
use hdp_hdl::{Entity, HdlError, NetId, Netlist, PortDir};

/// Parameters of one [`async_fifo`] instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncFifoParams {
    /// Payload width in bits (at least 1).
    pub data_width: usize,
    /// Address width: the FIFO holds `2^addr_width` entries (at
    /// least 1, so pointers are at least 2 bits wide).
    pub addr_width: usize,
    /// Integer period of the write-side `wr` domain in base steps.
    pub wr_period: u64,
    /// Integer period of the read-side `rd` domain in base steps.
    pub rd_period: u64,
}

/// Which synchronizer structure to build — the clean pattern or one
/// of the hand-broken lint fixtures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    Clean,
    /// The read pointer crosses binary-coded (not Gray).
    BinarySync,
    /// An inverter sits between the write pointer and its first
    /// synchronizer flop.
    CombCrossing,
    /// The read-pointer crossing has a single flop whose output feeds
    /// combinational logic directly.
    MissingSync,
}

/// The textbook Gray encoder `g = x ^ (x >> 1)`, built exactly in the
/// shape the CDC lint recognises: an XOR of `x` against the
/// concatenation of a 1-bit zero with `x`'s upper bits.
fn gray_encode(rtl: &mut Rtl<'_>, x: NetId, width: usize) -> Result<NetId, HdlError> {
    let hi = rtl.slice(x, 1, width - 1)?;
    let zero = rtl.constant(0, 1)?;
    let shifted = rtl.concat(&[zero, hi])?;
    rtl.xor(x, shifted)
}

#[allow(clippy::too_many_lines)]
fn build(params: &AsyncFifoParams, variant: Variant) -> Result<Netlist, HdlError> {
    let AsyncFifoParams {
        data_width: dw,
        addr_width: aw,
        wr_period,
        rd_period,
    } = *params;
    if dw == 0 {
        return Err(HdlError::InvalidWidth { width: dw });
    }
    if aw == 0 {
        return Err(HdlError::InvalidWidth { width: aw });
    }
    let pw = aw + 1; // pointer width: one wrap bit above the address
    let depth = 1usize << aw;
    let entity = Entity::builder("async_fifo")
        .port("push", PortDir::In, 1)?
        .port("wdata", PortDir::In, dw)?
        .port("pop", PortDir::In, 1)?
        .port("full", PortDir::Out, 1)?
        .port("empty", PortDir::Out, 1)?
        .port("rdata", PortDir::Out, dw)?
        .build()?;
    let mut nl = Netlist::new(entity);
    let wr_dom = nl.add_domain("wr", wr_period)?;
    let rd_dom = nl.add_domain("rd", rd_period)?;

    let push = nl.add_net("push", 1)?;
    let wdata = nl.add_net("wdata", dw)?;
    let pop = nl.add_net("pop", 1)?;
    let mut rtl = Rtl::new(&mut nl);

    // Pointer state and the synchronizer stage outputs. `rq*` live in
    // the write domain (resynchronized read pointer), `wq*` in the
    // read domain (resynchronized write pointer).
    let wbin = rtl.wire("wbin", pw)?;
    let wgray = rtl.wire("wgray", pw)?;
    let rbin = rtl.wire("rbin", pw)?;
    let rgray = rtl.wire("rgray", pw)?;
    let rq1 = rtl.wire("rq1", pw)?;
    let wq1 = rtl.wire("wq1", pw)?;

    // ---- read pointer, resynchronized into the write domain ----
    // The clean and broken variants differ only in what crosses and
    // through how many flops.
    let rq_synced = match variant {
        Variant::Clean | Variant::CombCrossing => {
            let rq2 = rtl.wire("rq2", pw)?;
            rtl.reg_into_in_domain(rq1, rgray, None, 0, wr_dom)?;
            rtl.reg_into_in_domain(rq2, rq1, None, 0, wr_dom)?;
            rq2
        }
        Variant::BinarySync => {
            // Broken: the *binary* pointer crosses; multiple bits can
            // flip per read-domain edge.
            let rq2 = rtl.wire("rq2", pw)?;
            rtl.reg_into_in_domain(rq1, rbin, None, 0, wr_dom)?;
            rtl.reg_into_in_domain(rq2, rq1, None, 0, wr_dom)?;
            rq2
        }
        Variant::MissingSync => {
            // Broken: one flop, its output consumed combinationally.
            rtl.reg_into_in_domain(rq1, rgray, None, 0, wr_dom)?;
            rq1
        }
    };

    // ---- write side (wr domain) ----
    let waddr = rtl.slice(wbin, 0, aw)?;
    let wbin_next = rtl.inc(wbin)?;
    let wgray_next = gray_encode(&mut rtl, wbin_next, pw)?;
    // Full when the write pointer equals the synchronized read
    // pointer with its two top (Gray) bits inverted — the Gray-code
    // image of "write pointer one full wrap ahead".
    let full_net = match variant {
        Variant::BinarySync => {
            // The crossing carries a binary pointer here, so compare
            // occupancy directly: full when wbin - rq2 == depth.
            let occ = rtl.sub(wbin, rq_synced)?;
            rtl.eq_const(occ, depth as u64)?
        }
        _ => {
            let top_mask = rtl.constant(0b11 << (pw - 2), pw)?;
            let inverted = rtl.xor(rq_synced, top_mask)?;
            rtl.cmp(CmpKind::Eq, wgray, inverted)?
        }
    };
    let not_full = rtl.not(full_net)?;
    let ok_push = rtl.and(push, not_full)?;
    rtl.reg_into_in_domain(wbin, wbin_next, Some(ok_push), 0, wr_dom)?;
    rtl.reg_into_in_domain(wgray, wgray_next, Some(ok_push), 0, wr_dom)?;

    // The data array: one write-enabled register per slot, decoded
    // off the binary write address.
    let mut slots = Vec::with_capacity(depth);
    for i in 0..depth {
        let here = rtl.eq_const(waddr, i as u64)?;
        let wen = rtl.and(ok_push, here)?;
        slots.push(rtl.reg_in_domain(wdata, Some(wen), 0, wr_dom)?);
    }

    // ---- write pointer, resynchronized into the read domain ----
    let wq2 = rtl.wire("wq2", pw)?;
    match variant {
        Variant::CombCrossing => {
            // Broken: an inverter mangles the Gray pointer before the
            // first flop — the crossing passes through combinational
            // logic.
            let mangled = rtl.not(wgray)?;
            rtl.reg_into_in_domain(wq1, mangled, None, 0, rd_dom)?;
        }
        _ => rtl.reg_into_in_domain(wq1, wgray, None, 0, rd_dom)?,
    }
    rtl.reg_into_in_domain(wq2, wq1, None, 0, rd_dom)?;

    // ---- read side (rd domain) ----
    let raddr = rtl.slice(rbin, 0, aw)?;
    let rbin_next = rtl.inc(rbin)?;
    let rgray_next = gray_encode(&mut rtl, rbin_next, pw)?;
    let empty_net = rtl.cmp(CmpKind::Eq, rgray, wq2)?;
    let not_empty = rtl.not(empty_net)?;
    let ok_pop = rtl.and(pop, not_empty)?;
    rtl.reg_into_in_domain(rbin, rbin_next, Some(ok_pop), 0, rd_dom)?;
    rtl.reg_into_in_domain(rgray, rgray_next, Some(ok_pop), 0, rd_dom)?;
    let rdata = rtl.mux(raddr, &slots)?;

    nl.bind_port("push", push)?;
    nl.bind_port("wdata", wdata)?;
    nl.bind_port("pop", pop)?;
    nl.bind_port("full", full_net)?;
    nl.bind_port("empty", empty_net)?;
    nl.bind_port("rdata", rdata)?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

/// The clean asynchronous FIFO: Gray-coded pointers and two-flop
/// synchronizers in both directions. Passes [`hdp_hdl::cdc::lint`].
///
/// # Errors
///
/// Returns [`HdlError::InvalidWidth`] for zero `data_width` or
/// `addr_width`, [`HdlError::InvalidDomain`] for zero periods, plus
/// ordinary netlist errors.
pub fn async_fifo(params: &AsyncFifoParams) -> Result<Netlist, HdlError> {
    build(params, Variant::Clean)
}

/// Broken variant: the read pointer crosses binary-coded instead of
/// Gray-coded. The CDC lint flags the crossing as
/// [`hdp_hdl::cdc::CdcViolation::UnsynchronizedMultiBit`].
///
/// # Errors
///
/// As [`async_fifo`].
pub fn async_fifo_binary_sync(params: &AsyncFifoParams) -> Result<Netlist, HdlError> {
    build(params, Variant::BinarySync)
}

/// Broken variant: an inverter sits between the write-side Gray
/// pointer and its first read-domain synchronizer flop. The CDC lint
/// flags it as
/// [`hdp_hdl::cdc::CdcViolation::CombinationalCrossing`].
///
/// # Errors
///
/// As [`async_fifo`].
pub fn async_fifo_comb_crossing(params: &AsyncFifoParams) -> Result<Netlist, HdlError> {
    build(params, Variant::CombCrossing)
}

/// Broken variant: the read-pointer crossing is sampled by a single
/// flop whose output feeds the full-flag logic directly. The CDC lint
/// flags it as
/// [`hdp_hdl::cdc::CdcViolation::MissingSynchronizer`].
///
/// # Errors
///
/// As [`async_fifo`].
pub fn async_fifo_missing_sync(params: &AsyncFifoParams) -> Result<Netlist, HdlError> {
    build(params, Variant::MissingSync)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_hdl::cdc::{lint, CdcViolation};
    use hdp_sim::{SignalId, Simulator};

    fn params(aw: usize, wr: u64, rd: u64) -> AsyncFifoParams {
        AsyncFifoParams {
            data_width: 8,
            addr_width: aw,
            wr_period: wr,
            rd_period: rd,
        }
    }

    #[test]
    fn clean_async_fifo_passes_cdc_lint() {
        for (aw, wr, rd) in [(1, 1, 1), (2, 1, 2), (3, 3, 2)] {
            let nl = async_fifo(&params(aw, wr, rd)).unwrap();
            let violations = lint(&nl);
            assert!(
                violations.is_empty(),
                "aw={aw}: unexpected violations {violations:?}"
            );
        }
    }

    #[test]
    fn binary_sync_variant_is_flagged_multi_bit() {
        let nl = async_fifo_binary_sync(&params(2, 1, 2)).unwrap();
        let violations = lint(&nl);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, CdcViolation::UnsynchronizedMultiBit { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn comb_crossing_variant_is_flagged() {
        let nl = async_fifo_comb_crossing(&params(2, 1, 2)).unwrap();
        let violations = lint(&nl);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, CdcViolation::CombinationalCrossing { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn missing_sync_variant_is_flagged() {
        let nl = async_fifo_missing_sync(&params(2, 1, 2)).unwrap();
        let violations = lint(&nl);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, CdcViolation::MissingSynchronizer { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn zero_widths_are_rejected() {
        assert!(async_fifo(&params(0, 1, 1)).is_err());
        let mut p = params(1, 1, 1);
        p.data_width = 0;
        assert!(async_fifo(&p).is_err());
    }

    struct Dut {
        sim: Simulator,
        push: SignalId,
        wdata: SignalId,
        pop: SignalId,
        full: SignalId,
        empty: SignalId,
        rdata: SignalId,
    }

    fn bring_up(p: &AsyncFifoParams) -> Dut {
        let nl = async_fifo(p).unwrap();
        let mut sim = Simulator::new();
        let push = sim.add_signal("push", 1).unwrap();
        let wdata = sim.add_signal("wdata", p.data_width).unwrap();
        let pop = sim.add_signal("pop", 1).unwrap();
        let full = sim.add_signal("full", 1).unwrap();
        let empty = sim.add_signal("empty", 1).unwrap();
        let rdata = sim.add_signal("rdata", p.data_width).unwrap();
        let dut = hdp_sim::NetlistComponent::new(
            "fifo",
            nl,
            sim.bus(),
            &[
                ("push", push),
                ("wdata", wdata),
                ("pop", pop),
                ("full", full),
                ("empty", empty),
                ("rdata", rdata),
            ],
        )
        .unwrap();
        sim.add_component(dut);
        Dut {
            sim,
            push,
            wdata,
            pop,
            full,
            empty,
            rdata,
        }
    }

    fn flag(sim: &mut Simulator, s: SignalId) -> u64 {
        sim.settle().unwrap();
        sim.peek(s).unwrap().to_u64().unwrap()
    }

    /// Push three words at the fast write clock, watch them drain in
    /// order at the half-rate read clock (wr period 1, rd period 2:
    /// the read domain only fires on even base steps).
    #[test]
    fn async_fifo_round_trips_data_across_a_period_ratio() {
        let mut dut = bring_up(&AsyncFifoParams {
            data_width: 8,
            addr_width: 2,
            wr_period: 1,
            rd_period: 2,
        });
        dut.sim.poke(dut.push, 1).unwrap();
        dut.sim.poke(dut.pop, 1).unwrap();
        dut.sim.poke(dut.wdata, 0xA1).unwrap();
        dut.sim.reset().unwrap();
        assert_eq!(flag(&mut dut.sim, dut.empty), 1);
        assert_eq!(flag(&mut dut.sim, dut.full), 0);
        dut.sim.step().unwrap(); // t=0: both domains; 0xA1 -> slot 0
        dut.sim.poke(dut.wdata, 0xB2).unwrap();
        dut.sim.step().unwrap(); // t=1: wr only; 0xB2 -> slot 1
        dut.sim.poke(dut.wdata, 0xC3).unwrap();
        dut.sim.step().unwrap(); // t=2: both; 0xC3 -> slot 2
        dut.sim.poke(dut.push, 0).unwrap();
        dut.sim.step().unwrap(); // t=3: wr only, push deasserted
        dut.sim.step().unwrap(); // t=4: both; wgray now visible to rd
        assert_eq!(flag(&mut dut.sim, dut.empty), 0);
        assert_eq!(flag(&mut dut.sim, dut.rdata), 0xA1);
        dut.sim.step().unwrap(); // t=5: wr only — nothing pops
        assert_eq!(flag(&mut dut.sim, dut.rdata), 0xA1);
        dut.sim.step().unwrap(); // t=6: both; first pop lands
        assert_eq!(flag(&mut dut.sim, dut.rdata), 0xB2);
        dut.sim.step().unwrap(); // t=7
        dut.sim.step().unwrap(); // t=8: second pop
        assert_eq!(flag(&mut dut.sim, dut.rdata), 0xC3);
        assert_eq!(flag(&mut dut.sim, dut.empty), 0);
        dut.sim.step().unwrap(); // t=9
        dut.sim.step().unwrap(); // t=10: third pop drains the FIFO
        assert_eq!(flag(&mut dut.sim, dut.empty), 1);
    }

    /// A depth-2 FIFO goes full after two un-popped pushes and then
    /// refuses further writes.
    #[test]
    fn async_fifo_full_flag_blocks_writes() {
        let mut dut = bring_up(&AsyncFifoParams {
            data_width: 8,
            addr_width: 1,
            wr_period: 1,
            rd_period: 1,
        });
        dut.sim.poke(dut.push, 1).unwrap();
        dut.sim.poke(dut.pop, 0).unwrap();
        dut.sim.poke(dut.wdata, 0x11).unwrap();
        dut.sim.reset().unwrap();
        dut.sim.step().unwrap();
        assert_eq!(flag(&mut dut.sim, dut.full), 0);
        dut.sim.poke(dut.wdata, 0x22).unwrap();
        dut.sim.step().unwrap();
        assert_eq!(flag(&mut dut.sim, dut.full), 1);
        dut.sim.poke(dut.wdata, 0x33).unwrap();
        dut.sim.step().unwrap(); // blocked: slot 0 must keep 0x11
        assert_eq!(flag(&mut dut.sim, dut.full), 1);
        // Drain and check order survived the blocked write.
        dut.sim.poke(dut.push, 0).unwrap();
        dut.sim.poke(dut.pop, 1).unwrap();
        assert_eq!(flag(&mut dut.sim, dut.rdata), 0x11);
        dut.sim.step().unwrap();
        assert_eq!(flag(&mut dut.sim, dut.rdata), 0x22);
    }
}
