//! Generated associative-array container: the last Table 1 row as a
//! metamodel specialisation.
//!
//! A direct-mapped store over on-chip block RAM with a tag compare —
//! the realistic silicon form of associative access. The random
//! iterator's `pos` operand carries the key; `index`+`write` binds it,
//! `index`+`read` looks it up, with a `found` result pin beside
//! `done`.

use crate::container_gen::ContainerParams;
use crate::fsm::{state_bits, Rtl};
use crate::ops::{MethodOp, OpSet};
use hdp_hdl::prim::{CmpKind, Prim};
use hdp_hdl::{Entity, HdlError, Netlist, PortDir};

/// Generates the associative array over block RAM.
///
/// The store holds `depth` slots of `1 (valid) + key + value` bits;
/// the slot index is the key modulo the (power-of-two) depth, i.e.
/// the key's low bits — a slice, free in hardware. Writes evict any
/// previous occupant of the slot; reads compare the stored tag and
/// report hit/miss on `found`, both with the one-cycle latency of the
/// synchronous RAM.
///
/// # Errors
///
/// Propagates netlist-construction failures; rejects an op set
/// without both `read` and `write` (an associative array you can
/// neither fill nor query has no interface), and key widths that do
/// not fit the 64-bit slot word.
pub fn assoc_bram(
    params: ContainerParams,
    key_width: usize,
    ops: OpSet,
) -> Result<Netlist, HdlError> {
    if !ops.contains(MethodOp::Read) && !ops.contains(MethodOp::Write) {
        return Err(HdlError::Unconnected {
            context: "assoc_bram needs read and/or write".into(),
        });
    }
    let w = params.data_width;
    let aw = state_bits(params.depth.next_power_of_two().max(2));
    if key_width < aw || key_width + w + 1 > 64 {
        return Err(HdlError::InvalidWidth { width: key_width });
    }
    let tag_width = key_width - aw; // high key bits stored as the tag
    let slot_width = 1 + tag_width.max(1) + w; // valid + tag + value
    let mut builder = Entity::builder("assoc_bram").group("methods");
    for op in [MethodOp::Read, MethodOp::Write] {
        if ops.contains(op) {
            builder = builder.port(op.port_name(), PortDir::In, 1)?;
        }
    }
    let entity = builder
        .group("params")
        .port("key", PortDir::In, key_width)?
        .port("wdata", PortDir::In, w)?
        .port("data", PortDir::Out, w)?
        .port("found", PortDir::Out, 1)?
        .port("done", PortDir::Out, 1)?
        .build()?;
    let mut nl = Netlist::new(entity);
    let key = nl.add_net("key", key_width)?;
    let wdata = nl.add_net("wdata", w)?;
    let data = nl.add_net("data", w)?;
    let found = nl.add_net("found", 1)?;
    let done = nl.add_net("done", 1)?;
    for (p, n) in [
        ("key", key),
        ("wdata", wdata),
        ("data", data),
        ("found", found),
        ("done", done),
    ] {
        nl.bind_port(p, n)?;
    }
    let method = |nl: &mut Netlist, op: MethodOp| -> Result<Option<hdp_hdl::NetId>, HdlError> {
        if ops.contains(op) {
            let n = nl.add_net(op.port_name(), 1)?;
            nl.bind_port(op.port_name(), n)?;
            Ok(Some(n))
        } else {
            Ok(None)
        }
    };
    let m_read = method(&mut nl, MethodOp::Read)?;
    let m_write = method(&mut nl, MethodOp::Write)?;
    let mut rtl = Rtl::new(&mut nl);
    let zero1 = rtl.constant(0, 1)?;
    let read = m_read.unwrap_or(zero1);
    let write = m_write.unwrap_or(zero1);
    // Slot index: the low key bits. Tag: the high bits (or a constant
    // 0 bit when the key exactly covers the index).
    let slot = rtl.slice(key, 0, aw)?;
    let tag = if tag_width > 0 {
        rtl.slice(key, aw, tag_width)?
    } else {
        rtl.constant(0, 1)?
    };
    // Slot word to write: valid=1 & tag & value.
    let one1 = rtl.constant(1, 1)?;
    let word_in = rtl.concat(&[one1, tag, wdata])?;
    let word_out = rtl.wire("word_out", slot_width)?;
    rtl.netlist().add_cell(
        "u_bram",
        Prim::BlockRam {
            addr_width: aw,
            data_width: slot_width,
        },
        vec![write, slot, word_in, slot],
        vec![word_out],
    )?;
    // Read-side compare, one cycle after the strobe (synchronous RAM):
    // delay the looked-up tag's reference alongside.
    let stored_value = rtl.slice(word_out, 0, w)?;
    let stored_tag = rtl.slice(word_out, w, tag_width.max(1))?;
    let stored_valid = rtl.slice(word_out, w + tag_width.max(1), 1)?;
    let tag_d = rtl.reg(tag, None, 0)?;
    let read_d = rtl.reg(read, None, 0)?;
    let write_d = rtl.reg(write, None, 0)?;
    let tag_match = rtl.cmp(CmpKind::Eq, stored_tag, tag_d)?;
    let hit = rtl.and(tag_match, stored_valid)?;
    rtl.buf_into(found, hit)?;
    rtl.buf_into(data, stored_value)?;
    let done_expr = rtl.or(read_d, write_d)?;
    rtl.buf_into(done, done_expr)?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_sim::{NetlistComponent, SignalId, Simulator};

    struct Rig {
        sim: Simulator,
        m_read: SignalId,
        m_write: SignalId,
        key: SignalId,
        wdata: SignalId,
        data: SignalId,
        found: SignalId,
        done: SignalId,
    }

    fn rig(depth: usize, key_width: usize) -> Rig {
        let params = ContainerParams {
            data_width: 8,
            depth,
            addr_width: 16,
        };
        let nl = assoc_bram(
            params,
            key_width,
            OpSet::of(&[MethodOp::Read, MethodOp::Write]),
        )
        .unwrap();
        let mut sim = Simulator::new();
        let m_read = sim.add_signal("m_read", 1).unwrap();
        let m_write = sim.add_signal("m_write", 1).unwrap();
        let key = sim.add_signal("key", key_width).unwrap();
        let wdata = sim.add_signal("wdata", 8).unwrap();
        let data = sim.add_signal("data", 8).unwrap();
        let found = sim.add_signal("found", 1).unwrap();
        let done = sim.add_signal("done", 1).unwrap();
        let dut = NetlistComponent::new(
            "assoc",
            nl,
            sim.bus(),
            &[
                ("m_read", m_read),
                ("m_write", m_write),
                ("key", key),
                ("wdata", wdata),
                ("data", data),
                ("found", found),
                ("done", done),
            ],
        )
        .unwrap();
        sim.add_component(dut);
        for s in [m_read, m_write, key, wdata] {
            sim.poke(s, 0).unwrap();
        }
        sim.reset().unwrap();
        Rig {
            sim,
            m_read,
            m_write,
            key,
            wdata,
            data,
            found,
            done,
        }
    }

    fn write(r: &mut Rig, key: u64, value: u64) {
        r.sim.poke(r.m_write, 1).unwrap();
        r.sim.poke(r.key, key).unwrap();
        r.sim.poke(r.wdata, value).unwrap();
        r.sim.step().unwrap();
        r.sim.poke(r.m_write, 0).unwrap();
        r.sim.step().unwrap();
    }

    fn read(r: &mut Rig, key: u64) -> (Option<u64>, bool) {
        r.sim.poke(r.m_read, 1).unwrap();
        r.sim.poke(r.key, key).unwrap();
        r.sim.step().unwrap();
        assert_eq!(r.sim.peek(r.done).unwrap().to_u64(), Some(1));
        let hit = r.sim.peek(r.found).unwrap().to_u64() == Some(1);
        let v = r.sim.peek(r.data).unwrap().to_u64();
        r.sim.poke(r.m_read, 0).unwrap();
        r.sim.step().unwrap();
        (v, hit)
    }

    #[test]
    fn insert_and_lookup() {
        let mut r = rig(16, 8);
        write(&mut r, 0x35, 0xAB);
        let (v, hit) = read(&mut r, 0x35);
        assert!(hit);
        assert_eq!(v, Some(0xAB));
    }

    #[test]
    fn tag_mismatch_is_a_miss() {
        let mut r = rig(16, 8);
        write(&mut r, 0x35, 0xAB);
        // Same slot (low 4 bits 0x5), different tag.
        let (_, hit) = read(&mut r, 0x45);
        assert!(!hit);
    }

    #[test]
    fn eviction_matches_golden_model() {
        let mut r = rig(4, 8);
        write(&mut r, 1, 100);
        write(&mut r, 5, 200); // 5 % 4 == 1: evicts key 1
        let (_, hit1) = read(&mut r, 1);
        assert!(!hit1);
        let (v5, hit5) = read(&mut r, 5);
        assert!(hit5);
        assert_eq!(v5, Some(200));
        let mut golden = hdp_core::golden::AssocArray::new(4);
        golden.insert(1, 100);
        golden.insert(5, 200);
        assert_eq!(golden.lookup(1), None);
        assert_eq!(golden.lookup(5), Some(200));
    }

    #[test]
    fn unwritten_slot_is_a_miss() {
        let mut r = rig(16, 8);
        let (_, hit) = read(&mut r, 0x77);
        assert!(!hit);
    }

    #[test]
    fn parameter_validation() {
        let params = ContainerParams {
            data_width: 8,
            depth: 16,
            addr_width: 16,
        };
        // Key narrower than the slot index.
        assert!(assoc_bram(params, 2, OpSet::of(&[MethodOp::Read, MethodOp::Write])).is_err());
        // No operations.
        assert!(assoc_bram(params, 8, OpSet::new()).is_err());
        // Key too wide for the slot word.
        assert!(assoc_bram(params, 60, OpSet::of(&[MethodOp::Read, MethodOp::Write])).is_err());
    }
}
