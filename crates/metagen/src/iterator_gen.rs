//! Concrete iterator generation.
//!
//! "The iterators used in the previous example don't include much
//! functionality since they are extremely simple. In fact they are no
//! more than a wrapper that renames some signals and provides the
//! common interface already mentioned." (§3.4) — [`forward_iterator`]
//! is that wrapper, all buffers, dissolved by the synthesis
//! optimizer.
//!
//! The §3.3 pixel-format change produces real logic:
//! [`read_width_adapter`] and [`write_width_adapter`] generate the
//! iterator FSMs that "perform three consecutive container
//! reads/writes to get/set the whole pixel".

use crate::fsm::{lower_fsm, state_bits, Rtl};
use hdp_hdl::{Entity, HdlError, Netlist, PortDir};

/// Generates the forward input iterator wrapper (`rbuffer_it`):
/// renames the algorithm-side `it_inc`/`it_read` strobes onto the
/// container's `m_pop` method and forwards data/done unchanged.
///
/// # Errors
///
/// Propagates netlist-construction failures.
pub fn forward_iterator(name: &str, data_width: usize) -> Result<Netlist, HdlError> {
    let entity = Entity::builder(name)
        .group("iterator interface")
        .port("it_inc", PortDir::In, 1)?
        .port("it_read", PortDir::In, 1)?
        .port("it_data", PortDir::Out, data_width)?
        .port("it_done", PortDir::Out, 1)?
        .group("container interface")
        .port("m_pop", PortDir::Out, 1)?
        .port("c_data", PortDir::In, data_width)?
        .port("c_done", PortDir::In, 1)?
        .build()?;
    let mut nl = Netlist::new(entity);
    let it_inc = nl.add_net("it_inc", 1)?;
    let it_read = nl.add_net("it_read", 1)?;
    let it_data = nl.add_net("it_data", data_width)?;
    let it_done = nl.add_net("it_done", 1)?;
    let m_pop = nl.add_net("m_pop", 1)?;
    let c_data = nl.add_net("c_data", data_width)?;
    let c_done = nl.add_net("c_done", 1)?;
    for (p, n) in [
        ("it_inc", it_inc),
        ("it_read", it_read),
        ("it_data", it_data),
        ("it_done", it_done),
        ("m_pop", m_pop),
        ("c_data", c_data),
        ("c_done", c_done),
    ] {
        nl.bind_port(p, n)?;
    }
    let mut rtl = Rtl::new(&mut nl);
    // Pure renaming: inc (and read, which travels with it on a read
    // buffer) becomes the pop method; data and done pass through.
    let advance = rtl.or(it_inc, it_read)?;
    rtl.buf_into(m_pop, advance)?;
    rtl.buf_into(it_data, c_data)?;
    rtl.buf_into(it_done, c_done)?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

/// Generates the stack's pair of concrete iterators as one wrapper:
/// the Table 1 stack row admits a *forward input* iterator (push
/// side: `it_write`+`it_inc` become `m_push`) and a *backward output*
/// iterator (pop side: `it_read`+`it_dec` become `m_pop`). Like
/// [`forward_iterator`], pure renaming that dissolves in synthesis.
///
/// # Errors
///
/// Propagates netlist-construction failures.
pub fn stack_iterators(name: &str, data_width: usize) -> Result<Netlist, HdlError> {
    let entity = Entity::builder(name)
        .group("forward input iterator")
        .port("it_write", PortDir::In, 1)?
        .port("it_inc", PortDir::In, 1)?
        .port("it_wdata", PortDir::In, data_width)?
        .group("backward output iterator")
        .port("it_read", PortDir::In, 1)?
        .port("it_dec", PortDir::In, 1)?
        .port("it_data", PortDir::Out, data_width)?
        .port("it_done", PortDir::Out, 1)?
        .group("container interface")
        .port("m_push", PortDir::Out, 1)?
        .port("m_pop", PortDir::Out, 1)?
        .port("c_wdata", PortDir::Out, data_width)?
        .port("c_data", PortDir::In, data_width)?
        .port("c_done", PortDir::In, 1)?
        .build()?;
    let mut nl = Netlist::new(entity);
    let it_write = nl.add_net("it_write", 1)?;
    let it_inc = nl.add_net("it_inc", 1)?;
    let it_wdata = nl.add_net("it_wdata", data_width)?;
    let it_read = nl.add_net("it_read", 1)?;
    let it_dec = nl.add_net("it_dec", 1)?;
    let it_data = nl.add_net("it_data", data_width)?;
    let it_done = nl.add_net("it_done", 1)?;
    let m_push = nl.add_net("m_push", 1)?;
    let m_pop = nl.add_net("m_pop", 1)?;
    let c_wdata = nl.add_net("c_wdata", data_width)?;
    let c_data = nl.add_net("c_data", data_width)?;
    let c_done = nl.add_net("c_done", 1)?;
    for (p, n) in [
        ("it_write", it_write),
        ("it_inc", it_inc),
        ("it_wdata", it_wdata),
        ("it_read", it_read),
        ("it_dec", it_dec),
        ("it_data", it_data),
        ("it_done", it_done),
        ("m_push", m_push),
        ("m_pop", m_pop),
        ("c_wdata", c_wdata),
        ("c_data", c_data),
        ("c_done", c_done),
    ] {
        nl.bind_port(p, n)?;
    }
    let mut rtl = Rtl::new(&mut nl);
    // Push = write-and-advance; pop = read-and-retreat.
    let push = rtl.and(it_write, it_inc)?;
    rtl.buf_into(m_push, push)?;
    let pop = rtl.and(it_read, it_dec)?;
    rtl.buf_into(m_pop, pop)?;
    rtl.buf_into(c_wdata, it_wdata)?;
    rtl.buf_into(it_data, c_data)?;
    rtl.buf_into(it_done, c_done)?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

/// Generates the width-adapting read iterator: a wide `it_read` is
/// served by `wide/narrow` consecutive narrow container reads,
/// assembled most significant word first into a shift register.
///
/// # Errors
///
/// Returns [`HdlError::InvalidWidth`] if `narrow` does not divide
/// `wide`, plus netlist-construction failures.
pub fn read_width_adapter(name: &str, wide: usize, narrow: usize) -> Result<Netlist, HdlError> {
    if narrow == 0 || !wide.is_multiple_of(narrow) || wide == narrow {
        return Err(HdlError::InvalidWidth { width: narrow });
    }
    let factor = wide / narrow;
    let entity = Entity::builder(name)
        .group("iterator interface")
        .port("it_read", PortDir::In, 1)?
        .port("it_data", PortDir::Out, wide)?
        .port("it_done", PortDir::Out, 1)?
        .group("container interface")
        .port("m_pop", PortDir::Out, 1)?
        .port("c_data", PortDir::In, narrow)?
        .port("c_done", PortDir::In, 1)?
        .build()?;
    let mut nl = Netlist::new(entity);
    let it_read = nl.add_net("it_read", 1)?;
    let it_data = nl.add_net("it_data", wide)?;
    let it_done = nl.add_net("it_done", 1)?;
    let m_pop = nl.add_net("m_pop", 1)?;
    let c_data = nl.add_net("c_data", narrow)?;
    let c_done = nl.add_net("c_done", 1)?;
    for (p, n) in [
        ("it_read", it_read),
        ("it_data", it_data),
        ("it_done", it_done),
        ("m_pop", m_pop),
        ("c_data", c_data),
        ("c_done", c_done),
    ] {
        nl.bind_port(p, n)?;
    }
    let mut rtl = Rtl::new(&mut nl);
    let cw = state_bits(factor + 1);
    // Word counter.
    let counter = rtl.wire("wcount", cw)?;
    // Shift register assembling the wide element, MSB first.
    let shreg = rtl.wire("shreg", wide)?;
    let low = rtl.slice(shreg, 0, wide - narrow)?;
    let shifted = rtl.concat(&[low, c_data])?;
    rtl.reg_into(shreg, shifted, Some(c_done), 0)?;
    // Counter datapath: +1 on each narrow done, clear on completion.
    let counter_inc = rtl.inc(counter)?;
    let last = rtl.eq_const(counter, factor as u64 - 1)?;
    let zero_c = rtl.constant(0, cw)?;
    let counter_next = rtl.mux2(last, counter_inc, zero_c)?;
    rtl.reg_into(counter, counter_next, Some(c_done), 0)?;
    // FSM: Idle(0) / Collect(1) / Present(2). Inputs: it_read,
    // c_done, last. Outputs (Moore — `m_pop` feeds back into `c_done`
    // through the container, so it must not depend on `c_done`
    // combinationally): m_pop, it_done.
    let (_state, outs) = lower_fsm(&mut rtl, 3, 0, &[it_read, c_done, last], 2, |s, ins| {
        let (read, done, last) = (ins[0] == 1, ins[1] == 1, ins[2] == 1);
        const POP: u64 = 1;
        const DONE: u64 = 2;
        let output = match s {
            1 => POP,
            2 => DONE,
            _ => 0,
        };
        let next = match s {
            0 if read => 1,
            1 if done && last => 2,
            // Present: hold it_done until the strobe drops, then
            // accept the next wide read.
            2 if !read => 0,
            s => s,
        };
        (next, output)
    })?;
    let pop = rtl.slice(outs, 0, 1)?;
    let done_out = rtl.slice(outs, 1, 1)?;
    rtl.buf_into(m_pop, pop)?;
    rtl.buf_into(it_done, done_out)?;
    rtl.buf_into(it_data, shreg)?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

/// Generates the width-adapting write iterator: a wide `it_write` is
/// committed as `wide/narrow` consecutive narrow container writes,
/// most significant word first.
///
/// # Errors
///
/// Returns [`HdlError::InvalidWidth`] if `narrow` does not divide
/// `wide`, plus netlist-construction failures.
pub fn write_width_adapter(name: &str, wide: usize, narrow: usize) -> Result<Netlist, HdlError> {
    if narrow == 0 || !wide.is_multiple_of(narrow) || wide == narrow {
        return Err(HdlError::InvalidWidth { width: narrow });
    }
    let factor = wide / narrow;
    let entity = Entity::builder(name)
        .group("iterator interface")
        .port("it_write", PortDir::In, 1)?
        .port("it_wdata", PortDir::In, wide)?
        .port("it_done", PortDir::Out, 1)?
        .group("container interface")
        .port("m_push", PortDir::Out, 1)?
        .port("c_wdata", PortDir::Out, narrow)?
        .port("c_done", PortDir::In, 1)?
        .build()?;
    let mut nl = Netlist::new(entity);
    let it_write = nl.add_net("it_write", 1)?;
    let it_wdata = nl.add_net("it_wdata", wide)?;
    let it_done = nl.add_net("it_done", 1)?;
    let m_push = nl.add_net("m_push", 1)?;
    let c_wdata = nl.add_net("c_wdata", narrow)?;
    let c_done = nl.add_net("c_done", 1)?;
    for (p, n) in [
        ("it_write", it_write),
        ("it_wdata", it_wdata),
        ("it_done", it_done),
        ("m_push", m_push),
        ("c_wdata", c_wdata),
        ("c_done", c_done),
    ] {
        nl.bind_port(p, n)?;
    }
    let mut rtl = Rtl::new(&mut nl);
    // Holding shift register: load on accept, shift left per narrow
    // write; the top word feeds the container.
    let hold = rtl.wire("hold", wide)?;
    let top = rtl.slice(hold, wide - narrow, narrow)?;
    rtl.buf_into(c_wdata, top)?;
    let low = rtl.slice(hold, 0, wide - narrow)?;
    let zeros = rtl.constant(0, narrow)?;
    let shifted = rtl.concat(&[low, zeros])?;
    let cw = state_bits(factor + 1);
    let counter = rtl.wire("wcount", cw)?;
    let counter_inc = rtl.inc(counter)?;
    let last = rtl.eq_const(counter, factor as u64 - 1)?;
    let zero_c = rtl.constant(0, cw)?;
    let counter_next = rtl.mux2(last, counter_inc, zero_c)?;
    rtl.reg_into(counter, counter_next, Some(c_done), 0)?;
    // FSM: Idle(0) / Emit(1) / Done(2). Inputs: it_write, c_done,
    // last. Outputs: m_push, it_done, load, shift. `m_push` and
    // `it_done` are Moore (m_push feeds back through the container's
    // done; it_done must persist until the engine drops its strobe);
    // load/shift gate register enables and may be Mealy.
    let (_state, outs) = lower_fsm(&mut rtl, 3, 0, &[it_write, c_done, last], 4, |s, ins| {
        let (write, done, last) = (ins[0] == 1, ins[1] == 1, ins[2] == 1);
        const PUSH: u64 = 1;
        const DONE: u64 = 2;
        const LOAD: u64 = 4;
        const SHIFT: u64 = 8;
        let output = match s {
            0 if write => LOAD,
            1 if done && !last => PUSH | SHIFT,
            1 => PUSH,
            2 => DONE,
            _ => 0,
        };
        let next = match s {
            0 if write => 1,
            1 if done && last => 2,
            2 if !write => 0,
            s => s,
        };
        (next, output)
    })?;
    let push = rtl.slice(outs, 0, 1)?;
    let done_out = rtl.slice(outs, 1, 1)?;
    let load = rtl.slice(outs, 2, 1)?;
    let shift = rtl.slice(outs, 3, 1)?;
    let hold_next = rtl.mux2(load, shifted, it_wdata)?;
    let hold_en = rtl.or(load, shift)?;
    rtl.reg_into(hold, hold_next, Some(hold_en), 0)?;
    rtl.buf_into(m_push, push)?;
    rtl.buf_into(it_done, done_out)?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_hdl::prim::Prim;

    #[test]
    fn forward_iterator_is_all_wrappers() {
        let nl = forward_iterator("rbuffer_it", 8).unwrap();
        // Only buffers and a single OR gate: the paper's "no more
        // than a wrapper".
        for cell in nl.cells() {
            assert!(
                matches!(cell.prim(), Prim::Buf { .. } | Prim::Gate { .. }),
                "unexpected logic {:?}",
                cell.prim()
            );
        }
        assert!(nl.cells().len() <= 4);
    }

    #[test]
    fn stack_iterators_are_pure_renaming() {
        let nl = stack_iterators("stack_it", 8).unwrap();
        for cell in nl.cells() {
            assert!(
                matches!(cell.prim(), Prim::Buf { .. } | Prim::Gate { .. }),
                "unexpected logic {:?}",
                cell.prim()
            );
        }
        assert!(nl.entity().port("it_dec").is_some());
        assert!(nl.entity().port("m_push").is_some());
    }

    #[test]
    fn adapters_reject_bad_ratios() {
        assert!(read_width_adapter("a", 24, 7).is_err());
        assert!(read_width_adapter("a", 8, 8).is_err());
        assert!(write_width_adapter("a", 24, 0).is_err());
    }

    #[test]
    fn read_adapter_contains_shift_register() {
        let nl = read_width_adapter("rb_it24", 24, 8).unwrap();
        let reg_bits: usize = nl
            .cells()
            .iter()
            .filter_map(|c| match c.prim() {
                Prim::Reg { width, .. } => Some(width),
                _ => None,
            })
            .sum();
        // 24-bit shift register plus counter and FSM state.
        assert!(reg_bits >= 24 + 2, "register bits {reg_bits}");
    }

    #[test]
    fn adapters_emit_vhdl() {
        for nl in [
            read_width_adapter("rb_it24", 24, 8).unwrap(),
            write_width_adapter("wb_it24", 24, 8).unwrap(),
        ] {
            let text = hdp_hdl::vhdl::emit_component(&nl, "generated").unwrap();
            assert!(text.contains("process")); // the FSM case process
        }
    }

    // Functional checks of the generated adapters run in the
    // integration tests, where they are wired to generated containers
    // and simulated end to end.
}
