//! Customized container components, one per (container, target) pair.
//!
//! "The physical entity of a container implemented over a static RAM
//! ... will include a port for each operation and each parameter from
//! the functional interface (read, empty ...), in addition to all the
//! ports related to the SRAM interface (p_addr, p_data ...)." (§3.4)
//!
//! [`rbuffer_fifo`] reproduces the paper's Figure 4 and
//! [`rbuffer_sram`] its Figure 5. Operation pruning is real: only the
//! method ports in the requested [`OpSet`] appear in the entity, and
//! only their logic appears in the architecture.

use crate::fsm::{lower_fsm, Rtl};
use crate::ops::{MethodOp, OpSet};
use hdp_hdl::{Entity, HdlError, Netlist, PortDir};

/// Parameters common to all generated containers.
#[derive(Debug, Clone, Copy)]
pub struct ContainerParams {
    /// Element width in bits.
    pub data_width: usize,
    /// Capacity in elements (rounded up to a power of two for
    /// pointer arithmetic).
    pub depth: usize,
    /// Address width of the physical memory interface (Figure 5 uses
    /// 16 bits).
    pub addr_width: usize,
}

impl ContainerParams {
    /// The paper's running configuration: 8-bit pixels, 512-element
    /// buffers, 16-bit external address bus.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            data_width: 8,
            depth: 512,
            addr_width: 16,
        }
    }

    fn pointer_width(&self) -> usize {
        crate::fsm::state_bits(self.depth.next_power_of_two().max(2))
    }
}

/// Generates the Figure 4 component: `rbuffer_fifo`, a read buffer
/// over a FIFO core device.
///
/// The entity matches the figure port for port (for
/// [`OpSet::figure4`]); the architecture "is simply a wrapper of the
/// FIFO core, and hardly includes any logic" — a guarded pop strobe
/// and result multiplexing onto `done`:
///
/// * `m_pop` pops and presents the head on `data`; `done` confirms.
/// * `m_empty` answers on `done` (high = empty).
/// * `m_size` answers on `done` (high = non-empty; the 1-bit `done`
///   port carries a size-nonzero flag, the only size query the copy
///   algorithm needs).
///
/// # Errors
///
/// Propagates netlist-construction failures; returns
/// [`HdlError::Unconnected`] if `ops` is empty (a container with no
/// operations has no interface).
pub fn rbuffer_fifo(params: ContainerParams, ops: OpSet) -> Result<Netlist, HdlError> {
    if ops.is_empty() {
        return Err(HdlError::Unconnected {
            context: "rbuffer_fifo with an empty operation set".into(),
        });
    }
    let w = params.data_width;
    let mut builder = Entity::builder("rbuffer_fifo").group("methods");
    for op in [MethodOp::Empty, MethodOp::Size, MethodOp::Pop] {
        if ops.contains(op) {
            builder = builder.port(op.port_name(), PortDir::In, 1)?;
        }
    }
    builder = builder
        .group("params")
        .port("data", PortDir::Out, w)?
        .port("done", PortDir::Out, 1)?
        .group("implementation interface")
        .port("p_empty", PortDir::In, 1)?
        .port("p_read", PortDir::Out, 1)?
        .port("p_data", PortDir::In, w)?;
    let entity = builder.build()?;
    let mut nl = Netlist::new(entity.clone());
    let p_empty = nl.add_net("p_empty", 1)?;
    let p_read = nl.add_net("p_read", 1)?;
    let p_data = nl.add_net("p_data", w)?;
    let data = nl.add_net("data", w)?;
    let done = nl.add_net("done", 1)?;
    nl.bind_port("p_empty", p_empty)?;
    nl.bind_port("p_read", p_read)?;
    nl.bind_port("p_data", p_data)?;
    nl.bind_port("data", data)?;
    nl.bind_port("done", done)?;
    let mut rtl = Rtl::new(&mut nl);
    // data is a pure wrapper of the device data bus.
    rtl.buf_into(data, p_data)?;
    let not_empty = rtl.not(p_empty)?;
    // Guarded pop strobe, and the done/result mux per selected op.
    let zero = rtl.constant(0, 1)?;
    let (pop_net, mut done_expr) = if ops.contains(MethodOp::Pop) {
        let m_pop = rtl.netlist().add_net("m_pop", 1)?;
        rtl.netlist().bind_port("m_pop", m_pop)?;
        let pop_ok = rtl.and(m_pop, not_empty)?;
        (pop_ok, pop_ok)
    } else {
        (zero, zero)
    };
    rtl.buf_into(p_read, pop_net)?;
    if ops.contains(MethodOp::Empty) {
        let m_empty = rtl.netlist().add_net("m_empty", 1)?;
        rtl.netlist().bind_port("m_empty", m_empty)?;
        let empty_ans = rtl.and(m_empty, p_empty)?;
        done_expr = rtl.or(done_expr, empty_ans)?;
    }
    if ops.contains(MethodOp::Size) {
        let m_size = rtl.netlist().add_net("m_size", 1)?;
        rtl.netlist().bind_port("m_size", m_size)?;
        let size_ans = rtl.and(m_size, not_empty)?;
        done_expr = rtl.or(done_expr, size_ans)?;
    }
    rtl.buf_into(done, done_expr)?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

/// Generates the Figure 5 component: `rbuffer_sram`, a read buffer
/// over external static RAM.
///
/// The entity keeps the Figure 4 functional interface but swaps the
/// implementation interface for the Figure 5 pins: `p_addr`,
/// `p_data`, `req`, `ack` (plus the write-side pins the circular
/// buffer needs to commit incoming stream data: `s_valid`/`s_data`
/// upstream and `p_we`/`p_wdata` towards the controller). The
/// architecture is the paper's "little finite state machine that
/// controls memory access, as well as a few registers to store the
/// begin and end pointers of the queue (implemented as a circular
/// buffer)".
///
/// # Errors
///
/// Propagates netlist-construction failures; rejects an empty op set.
pub fn rbuffer_sram(params: ContainerParams, ops: OpSet) -> Result<Netlist, HdlError> {
    if ops.is_empty() {
        return Err(HdlError::Unconnected {
            context: "rbuffer_sram with an empty operation set".into(),
        });
    }
    let w = params.data_width;
    let aw = params.addr_width;
    let pw = params.pointer_width();
    let mut builder = Entity::builder("rbuffer_sram").group("methods");
    for op in [MethodOp::Empty, MethodOp::Size, MethodOp::Pop] {
        if ops.contains(op) {
            builder = builder.port(op.port_name(), PortDir::In, 1)?;
        }
    }
    let entity = builder
        .group("params")
        .port("data", PortDir::Out, w)?
        .port("done", PortDir::Out, 1)?
        .group("stream interface")
        .port("s_valid", PortDir::In, 1)?
        .port("s_data", PortDir::In, w)?
        .group("implementation interface")
        .port("p_addr", PortDir::Out, aw)?
        .port("p_data", PortDir::In, w)?
        .port("p_we", PortDir::Out, 1)?
        .port("p_wdata", PortDir::Out, w)?
        .port("req", PortDir::Out, 1)?
        .port("ack", PortDir::In, 1)?
        .build()?;
    let mut nl = Netlist::new(entity);
    let data = nl.add_net("data", w)?;
    let done = nl.add_net("done", 1)?;
    let s_valid = nl.add_net("s_valid", 1)?;
    let s_data = nl.add_net("s_data", w)?;
    let p_addr = nl.add_net("p_addr", aw)?;
    let p_data = nl.add_net("p_data", w)?;
    let p_we = nl.add_net("p_we", 1)?;
    let p_wdata = nl.add_net("p_wdata", w)?;
    let req = nl.add_net("req", 1)?;
    let ack = nl.add_net("ack", 1)?;
    for (p, n) in [
        ("data", data),
        ("done", done),
        ("s_valid", s_valid),
        ("s_data", s_data),
        ("p_addr", p_addr),
        ("p_data", p_data),
        ("p_we", p_we),
        ("p_wdata", p_wdata),
        ("req", req),
        ("ack", ack),
    ] {
        nl.bind_port(p, n)?;
    }
    let pop_in = if ops.contains(MethodOp::Pop) {
        let m_pop = nl.add_net("m_pop", 1)?;
        nl.bind_port("m_pop", m_pop)?;
        Some(m_pop)
    } else {
        None
    };
    let empty_in = if ops.contains(MethodOp::Empty) {
        let m_empty = nl.add_net("m_empty", 1)?;
        nl.bind_port("m_empty", m_empty)?;
        Some(m_empty)
    } else {
        None
    };
    let size_in = if ops.contains(MethodOp::Size) {
        let m_size = nl.add_net("m_size", 1)?;
        nl.bind_port("m_size", m_size)?;
        Some(m_size)
    } else {
        None
    };
    let mut rtl = Rtl::new(&mut nl);
    // Begin/end pointer and count registers of the circular buffer.
    let head = rtl.wire("head", pw)?;
    let tail = rtl.wire("tail", pw)?;
    let count = rtl.wire("count", pw + 1)?;
    // Skid register absorbing one stream element during a transaction.
    let skid_valid = rtl.wire("skid_valid", 1)?;
    let skid_data = rtl.reg(s_data, Some(s_valid), 0)?;
    let count_zero = rtl.eq_const(count, 0)?;
    let pop_req = match pop_in {
        Some(p) => p,
        None => rtl.constant(0, 1)?,
    };
    // FSM: Idle(0) -> Write(1)/Read(2) -> Release(3) -> Idle.
    // Inputs: skid_valid, pop_req, ack, count_zero.
    // Outputs (LSB first): req, we, sel_tail, commit_w, commit_r, pop_done.
    let (_state, outs) = lower_fsm(
        &mut rtl,
        4,
        0,
        &[skid_valid, pop_req, ack, count_zero],
        6,
        |s, ins| {
            let (skid, pop, ack, zero) = (ins[0] == 1, ins[1] == 1, ins[2] == 1, ins[3] == 1);
            const REQ: u64 = 1;
            const WE: u64 = 2;
            const SEL_TAIL: u64 = 4;
            const COMMIT_W: u64 = 8;
            const COMMIT_R: u64 = 16;
            const POP_DONE: u64 = 32;
            match s {
                // Idle: writes (stream commits) take priority.
                0 if skid => (1, 0),
                0 if pop && !zero => (2, 0),
                0 => (0, 0),
                // Write transaction at the tail pointer.
                1 if ack => (3, REQ | WE | SEL_TAIL | COMMIT_W),
                1 => (1, REQ | WE | SEL_TAIL),
                // Read transaction at the head pointer.
                2 if ack => (3, REQ | COMMIT_R | POP_DONE),
                2 => (2, REQ),
                // Release: wait for ack to drop.
                _ => (0, 0),
            }
        },
    )?;
    let fsm_req = rtl.slice(outs, 0, 1)?;
    let fsm_we = rtl.slice(outs, 1, 1)?;
    let sel_tail = rtl.slice(outs, 2, 1)?;
    let commit_w = rtl.slice(outs, 3, 1)?;
    let commit_r = rtl.slice(outs, 4, 1)?;
    let pop_done = rtl.slice(outs, 5, 1)?;
    rtl.buf_into(req, fsm_req)?;
    rtl.buf_into(p_we, fsm_we)?;
    rtl.buf_into(p_wdata, skid_data)?;
    // Pointer datapath.
    let head_next = rtl.inc(head)?;
    rtl.reg_into(head, head_next, Some(commit_r), 0)?;
    let tail_next = rtl.inc(tail)?;
    rtl.reg_into(tail, tail_next, Some(commit_w), 0)?;
    let count_up = rtl.inc(count)?;
    let one_w = rtl.constant(1, pw + 1)?;
    let count_down = rtl.sub(count, one_w)?;
    let count_delta = rtl.mux2(commit_w, count_down, count_up)?;
    let count_change = rtl.or(commit_w, commit_r)?;
    rtl.reg_into(count, count_delta, Some(count_change), 0)?;
    // Skid-valid flag: set on s_valid, cleared on commit_w.
    let not_commit_w = rtl.not(commit_w)?;
    let held = rtl.and(skid_valid, not_commit_w)?;
    let skid_next = rtl.or(held, s_valid)?;
    rtl.reg_into(skid_valid, skid_next, None, 0)?;
    // Address mux, zero-extended onto the 16-bit external bus.
    let ptr = rtl.mux2(sel_tail, head, tail)?;
    let addr = rtl.zext(ptr, aw)?;
    rtl.buf_into(p_addr, addr)?;
    // Fetched-element register and done/result outputs.
    let fetched = rtl.reg(p_data, Some(commit_r), 0)?;
    rtl.buf_into(data, fetched)?;
    let mut done_expr = pop_done;
    if let Some(m_empty) = empty_in {
        let empty_ans = rtl.and(m_empty, count_zero)?;
        done_expr = rtl.or(done_expr, empty_ans)?;
    }
    if let Some(m_size) = size_in {
        let nonzero = rtl.not(count_zero)?;
        let size_ans = rtl.and(m_size, nonzero)?;
        done_expr = rtl.or(done_expr, size_ans)?;
    }
    rtl.buf_into(done, done_expr)?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

/// Generates a write buffer over a FIFO core device: the mirror image
/// of Figure 4 with `m_push`/`wdata` replacing `m_pop`/`data`.
///
/// # Errors
///
/// Propagates netlist-construction failures; rejects an empty op set.
pub fn wbuffer_fifo(params: ContainerParams, ops: OpSet) -> Result<Netlist, HdlError> {
    if ops.is_empty() {
        return Err(HdlError::Unconnected {
            context: "wbuffer_fifo with an empty operation set".into(),
        });
    }
    let w = params.data_width;
    let mut builder = Entity::builder("wbuffer_fifo").group("methods");
    for op in [MethodOp::Full, MethodOp::Push] {
        if ops.contains(op) {
            builder = builder.port(op.port_name(), PortDir::In, 1)?;
        }
    }
    let entity = builder
        .group("params")
        .port("wdata", PortDir::In, w)?
        .port("done", PortDir::Out, 1)?
        .group("implementation interface")
        .port("p_full", PortDir::In, 1)?
        .port("p_write", PortDir::Out, 1)?
        .port("p_data", PortDir::Out, w)?
        .build()?;
    let mut nl = Netlist::new(entity);
    let wdata = nl.add_net("wdata", w)?;
    let done = nl.add_net("done", 1)?;
    let p_full = nl.add_net("p_full", 1)?;
    let p_write = nl.add_net("p_write", 1)?;
    let p_data = nl.add_net("p_data", w)?;
    for (p, n) in [
        ("wdata", wdata),
        ("done", done),
        ("p_full", p_full),
        ("p_write", p_write),
        ("p_data", p_data),
    ] {
        nl.bind_port(p, n)?;
    }
    let mut rtl = Rtl::new(&mut nl);
    rtl.buf_into(p_data, wdata)?;
    let not_full = rtl.not(p_full)?;
    let zero = rtl.constant(0, 1)?;
    let (push_net, mut done_expr) = if ops.contains(MethodOp::Push) {
        let m_push = rtl.netlist().add_net("m_push", 1)?;
        rtl.netlist().bind_port("m_push", m_push)?;
        let push_ok = rtl.and(m_push, not_full)?;
        (push_ok, push_ok)
    } else {
        (zero, zero)
    };
    rtl.buf_into(p_write, push_net)?;
    if ops.contains(MethodOp::Full) {
        let m_full = rtl.netlist().add_net("m_full", 1)?;
        rtl.netlist().bind_port("m_full", m_full)?;
        let full_ans = rtl.and(m_full, p_full)?;
        done_expr = rtl.or(done_expr, full_ans)?;
    }
    rtl.buf_into(done, done_expr)?;
    hdp_hdl::validate::check(&nl)?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_hdl::prim::Prim;
    use hdp_hdl::vhdl;

    #[test]
    fn figure4_entity_matches_paper() {
        let nl = rbuffer_fifo(ContainerParams::paper_default(), OpSet::figure4()).unwrap();
        let text = vhdl::emit_entity(nl.entity());
        let expected = "\
entity rbuffer_fifo is
  port (
    -- methods
    m_empty : in std_logic;
    m_size : in std_logic;
    m_pop : in std_logic;
    -- params
    data : out std_logic_vector(7 downto 0);
    done : out std_logic;
    -- implementation interface
    p_empty : in std_logic;
    p_read : out std_logic;
    p_data : in std_logic_vector(7 downto 0)
  );
end rbuffer_fifo;
";
        assert_eq!(text, expected);
    }

    #[test]
    fn pruning_removes_unused_method_ports() {
        let nl = rbuffer_fifo(
            ContainerParams::paper_default(),
            OpSet::of(&[MethodOp::Pop]),
        )
        .unwrap();
        assert!(nl.entity().port("m_pop").is_some());
        assert!(nl.entity().port("m_empty").is_none());
        assert!(nl.entity().port("m_size").is_none());
        // And the pruned variant is strictly smaller.
        let full = rbuffer_fifo(ContainerParams::paper_default(), OpSet::figure4()).unwrap();
        assert!(nl.cells().len() < full.cells().len());
    }

    #[test]
    fn empty_op_set_is_rejected() {
        assert!(rbuffer_fifo(ContainerParams::paper_default(), OpSet::new()).is_err());
        assert!(rbuffer_sram(ContainerParams::paper_default(), OpSet::new()).is_err());
        assert!(wbuffer_fifo(ContainerParams::paper_default(), OpSet::new()).is_err());
    }

    #[test]
    fn figure5_entity_has_sram_pins() {
        let nl = rbuffer_sram(ContainerParams::paper_default(), OpSet::figure4()).unwrap();
        let e = nl.entity();
        assert_eq!(e.name(), "rbuffer_sram");
        assert_eq!(e.port("p_addr").unwrap().width(), 16);
        assert_eq!(e.port("p_data").unwrap().width(), 8);
        assert!(e.port("req").is_some());
        assert!(e.port("ack").is_some());
        // No FIFO pins.
        assert!(e.port("p_empty").is_none());
        assert!(e.port("p_read").is_none());
    }

    #[test]
    fn figure5_architecture_has_pointer_registers() {
        let nl = rbuffer_sram(ContainerParams::paper_default(), OpSet::figure4()).unwrap();
        let regs: usize = nl
            .cells()
            .iter()
            .filter(|c| matches!(c.prim(), Prim::Reg { .. }))
            .count();
        // head, tail, count, skid data, skid valid, fetched, fsm state.
        assert!(regs >= 7, "expected pointer registers, found {regs}");
    }

    #[test]
    fn fifo_wrapper_is_nearly_free() {
        // The paper: the FIFO-backed container is "simply a wrapper
        // of the FIFO core, and hardly includes any logic". Compare
        // cell counts.
        let fifo = rbuffer_fifo(ContainerParams::paper_default(), OpSet::figure4()).unwrap();
        let sram = rbuffer_sram(ContainerParams::paper_default(), OpSet::figure4()).unwrap();
        assert!(
            fifo.cells().len() * 3 < sram.cells().len(),
            "wrapper ({}) should be far smaller than the SRAM FSM ({})",
            fifo.cells().len(),
            sram.cells().len()
        );
    }

    #[test]
    fn generated_components_emit_vhdl() {
        for nl in [
            rbuffer_fifo(ContainerParams::paper_default(), OpSet::figure4()).unwrap(),
            rbuffer_sram(ContainerParams::paper_default(), OpSet::figure4()).unwrap(),
            wbuffer_fifo(
                ContainerParams::paper_default(),
                OpSet::of(&[MethodOp::Push, MethodOp::Full]),
            )
            .unwrap(),
        ] {
            let text = vhdl::emit_component(&nl, "generated").unwrap();
            assert!(text.contains("library ieee;"));
            assert!(text.contains(&format!("entity {} is", nl.entity().name())));
        }
    }

    #[test]
    fn wbuffer_prunes_full_query() {
        let nl = wbuffer_fifo(
            ContainerParams::paper_default(),
            OpSet::of(&[MethodOp::Push]),
        )
        .unwrap();
        assert!(nl.entity().port("m_push").is_some());
        assert!(nl.entity().port("m_full").is_none());
    }
}
