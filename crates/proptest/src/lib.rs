//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! vendors the subset of the `proptest 1.x` API the workspace test
//! suites use: [`Strategy`] with `prop_map` / `prop_flat_map`,
//! `any::<T>()`, integer-range and tuple strategies, a `[chars]{n}`
//! regex-literal string strategy, `prop::collection::vec`,
//! `prop::sample::select`, `prop_oneof!`, and the [`proptest!`] test
//! macro.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs and the
//!   deterministic case number instead of a minimised example.
//! * **Deterministic seeding** — cases are derived from the test name
//!   and case index, so failures reproduce exactly across runs.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case, derived from a test-name hash and the
    /// case index.
    #[must_use]
    pub fn for_case(name_hash: u64, case: u64) -> Self {
        TestRng {
            state: name_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample from empty range");
        self.next_u64() % n
    }
}

/// FNV-1a hash of a test name, used as the base seed.
#[doc(hidden)]
#[must_use]
pub fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between several strategies (see [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Builds the union; `options` must be non-empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (see [`Arbitrary`]).
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The strategy of arbitrary values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                start + (if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) }) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// String strategy from a `[charset]{n}` regex literal.
///
/// Supports exactly the character-class-with-repetition form
/// (`"[01XZ]{8}"`, ranges like `a-z` allowed inside the class); any
/// other pattern panics, loudly, at generation time.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (charset, count) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported regex pattern `{self}` (want `[chars]{{n}}`)"));
        (0..count)
            .map(|_| charset[rng.below(charset.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut charset = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            for c in lo..=hi {
                charset.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            charset.push(class[i]);
            i += 1;
        }
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((charset, 1));
    }
    let count: usize = tail.strip_prefix('{')?.strip_suffix('}')?.parse().ok()?;
    Some((charset, count))
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Element-count specification: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.below(span.max(1)) as usize).min(span as usize);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy choosing uniformly from a fixed list.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// Everything a proptest-based test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body
/// runs for `ProptestConfig::cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed = $crate::name_hash(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(__seed, u64::from(__case));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = {
                    let mut __s = String::new();
                    $(__s.push_str(&format!("{} = {:?}; ", stringify!($arg), &$arg));)+
                    __s
                };
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest `{}` failed at case {}/{} with inputs: {}",
                        stringify!($name), __case, __config.cases, __inputs
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_any_sample_in_bounds() {
        let mut rng = crate::TestRng::for_case(1, 0);
        for _ in 0..200 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (2usize..=5).generate(&mut rng);
            assert!((2..=5).contains(&w));
        }
    }

    #[test]
    fn string_pattern_generates_from_class() {
        let mut rng = crate::TestRng::for_case(2, 0);
        let s = "[01XZ]{8}".generate(&mut rng);
        assert_eq!(s.len(), 8);
        assert!(s.chars().all(|c| "01XZ".contains(c)));
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::for_case(3, 0);
        for _ in 0..100 {
            let v = prop::collection::vec(any::<u8>(), 1..120).generate(&mut rng);
            assert!((1..120).contains(&v.len()));
            let w = prop::collection::vec(any::<u8>(), 4).generate(&mut rng);
            assert_eq!(w.len(), 4);
        }
    }

    #[test]
    fn oneof_map_flat_map_and_select_compose() {
        #[derive(Debug, Clone, Copy, PartialEq)]
        enum Op {
            Push(u8),
            Pop,
        }
        let strat = prop_oneof![any::<u8>().prop_map(Op::Push), Just(Op::Pop)];
        let nested = (2usize..=5).prop_flat_map(|n| prop::collection::vec(0u64..n as u64, n));
        let mut rng = crate::TestRng::for_case(4, 0);
        let mut seen_push = false;
        let mut seen_pop = false;
        for _ in 0..100 {
            match strat.generate(&mut rng) {
                Op::Push(_) => seen_push = true,
                Op::Pop => seen_pop = true,
            }
            let v = nested.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < v.len() as u64));
            let c = prop::sample::select(vec![1usize, 2, 3]).generate(&mut rng);
            assert!((1..=3).contains(&c));
        }
        assert!(seen_push && seen_pop);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: bindings, tuples and assertions.
        #[test]
        fn macro_generates_cases(pair in (0u8..10, 0u8..10), flag in any::<bool>()) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
