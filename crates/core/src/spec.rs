//! Container specifications and their mapping onto physical targets.
//!
//! In the paper, "containers may be mapped to several physical
//! devices" and "metaprogramming defers until the last moment the
//! selection of the proper implementation of a container" (§3.4). A
//! [`ContainerSpec`] is the target-independent part of that decision;
//! [`PhysicalTarget`] is the deferred choice.

use crate::classify::ContainerKind;
use crate::CoreError;
use std::fmt;

/// A physical device a container may be implemented over (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhysicalTarget {
    /// On-chip FIFO core (built from block RAM plus pointer logic).
    FifoCore,
    /// On-chip LIFO core.
    LifoCore,
    /// On-chip block RAM, directly addressed.
    BlockRam,
    /// External static RAM behind a req/ack controller with the given
    /// access latency in cycles.
    ExternalSram {
        /// Access latency in clock cycles (at least 1).
        latency: u32,
    },
    /// The special 3-line buffer of the blur example, which presents
    /// three vertically adjacent pixels per access (§4).
    LineBuffer3 {
        /// Pixels per video line.
        line_width: usize,
    },
}

impl PhysicalTarget {
    /// Whether the target is on-chip (consumes FPGA block RAM) or an
    /// external part.
    #[must_use]
    pub fn is_on_chip(self) -> bool {
        !matches!(self, PhysicalTarget::ExternalSram { .. })
    }
}

impl fmt::Display for PhysicalTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysicalTarget::FifoCore => f.write_str("fifo core"),
            PhysicalTarget::LifoCore => f.write_str("lifo core"),
            PhysicalTarget::BlockRam => f.write_str("block ram"),
            PhysicalTarget::ExternalSram { latency } => {
                write!(f, "external sram (latency {latency})")
            }
            PhysicalTarget::LineBuffer3 { line_width } => {
                write!(f, "3-line buffer (line {line_width})")
            }
        }
    }
}

/// A target-independent container instance: kind, element width and
/// capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerSpec {
    kind: ContainerKind,
    data_width: usize,
    capacity: usize,
}

impl ContainerSpec {
    /// Describes a container holding `capacity` elements of
    /// `data_width` bits.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a zero capacity or
    /// a width outside `1..=64`.
    pub fn new(kind: ContainerKind, data_width: usize, capacity: usize) -> Result<Self, CoreError> {
        if data_width == 0 || data_width > 64 {
            return Err(CoreError::InvalidParameter {
                name: "data_width",
                message: format!("{data_width} bits (must be 1..=64)"),
            });
        }
        if capacity == 0 {
            return Err(CoreError::InvalidParameter {
                name: "capacity",
                message: "capacity must be positive".into(),
            });
        }
        Ok(Self {
            kind,
            data_width,
            capacity,
        })
    }

    /// The container kind.
    #[must_use]
    pub fn kind(&self) -> ContainerKind {
        self.kind
    }

    /// Element width in bits.
    #[must_use]
    pub fn data_width(&self) -> usize {
        self.data_width
    }

    /// Capacity in elements.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The physical targets able to implement this container.
    ///
    /// Following §3.4: every container "can be implemented in any kind
    /// of RAM memory"; sequential containers additionally map onto the
    /// matching stream core — queues and read/write buffers onto FIFO
    /// cores, stacks onto LIFO cores — and a read buffer may use the
    /// special 3-line buffer for convolution workloads.
    #[must_use]
    pub fn allowed_targets(&self) -> Vec<PhysicalTarget> {
        let ram = [
            PhysicalTarget::BlockRam,
            PhysicalTarget::ExternalSram { latency: 1 },
        ];
        let mut targets: Vec<PhysicalTarget> = Vec::new();
        match self.kind {
            ContainerKind::Queue | ContainerKind::WriteBuffer => {
                targets.push(PhysicalTarget::FifoCore);
            }
            ContainerKind::ReadBuffer => {
                targets.push(PhysicalTarget::FifoCore);
                targets.push(PhysicalTarget::LineBuffer3 { line_width: 0 });
            }
            ContainerKind::Stack => {
                targets.push(PhysicalTarget::LifoCore);
            }
            ContainerKind::Vector | ContainerKind::AssocArray => {}
        }
        targets.extend(ram);
        targets
    }

    /// Checks that `target` can implement this container.
    ///
    /// Latency and line-width parameters are not compared — only the
    /// target family matters for legality.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IncompatibleTarget`] for an illegal pair
    /// (e.g. a vector over a FIFO core, which cannot provide random
    /// access).
    pub fn check_target(&self, target: PhysicalTarget) -> Result<(), CoreError> {
        let ok = self
            .allowed_targets()
            .iter()
            .any(|t| std::mem::discriminant(t) == std::mem::discriminant(&target));
        if ok {
            Ok(())
        } else {
            Err(CoreError::IncompatibleTarget {
                container: self.kind.to_string(),
                target: target.to_string(),
            })
        }
    }
}

impl fmt::Display for ContainerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} x {} bits)",
            self.kind, self.capacity, self.data_width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validates_parameters() {
        assert!(ContainerSpec::new(ContainerKind::Queue, 0, 16).is_err());
        assert!(ContainerSpec::new(ContainerKind::Queue, 65, 16).is_err());
        assert!(ContainerSpec::new(ContainerKind::Queue, 8, 0).is_err());
        assert!(ContainerSpec::new(ContainerKind::Queue, 8, 16).is_ok());
    }

    #[test]
    fn queue_maps_to_fifo_and_rams() {
        let spec = ContainerSpec::new(ContainerKind::Queue, 8, 64).unwrap();
        spec.check_target(PhysicalTarget::FifoCore).unwrap();
        spec.check_target(PhysicalTarget::BlockRam).unwrap();
        spec.check_target(PhysicalTarget::ExternalSram { latency: 3 })
            .unwrap();
        assert!(spec.check_target(PhysicalTarget::LifoCore).is_err());
    }

    #[test]
    fn stack_maps_to_lifo_not_fifo() {
        let spec = ContainerSpec::new(ContainerKind::Stack, 8, 64).unwrap();
        spec.check_target(PhysicalTarget::LifoCore).unwrap();
        assert!(spec.check_target(PhysicalTarget::FifoCore).is_err());
    }

    #[test]
    fn vector_needs_random_access_device() {
        let spec = ContainerSpec::new(ContainerKind::Vector, 8, 256).unwrap();
        spec.check_target(PhysicalTarget::BlockRam).unwrap();
        spec.check_target(PhysicalTarget::ExternalSram { latency: 2 })
            .unwrap();
        assert!(spec.check_target(PhysicalTarget::FifoCore).is_err());
        assert!(spec
            .check_target(PhysicalTarget::LineBuffer3 { line_width: 64 })
            .is_err());
    }

    #[test]
    fn read_buffer_admits_line_buffer() {
        let spec = ContainerSpec::new(ContainerKind::ReadBuffer, 8, 64).unwrap();
        spec.check_target(PhysicalTarget::LineBuffer3 { line_width: 64 })
            .unwrap();
        spec.check_target(PhysicalTarget::FifoCore).unwrap();
    }

    #[test]
    fn latency_does_not_affect_legality() {
        let spec = ContainerSpec::new(ContainerKind::WriteBuffer, 8, 64).unwrap();
        for latency in [1, 2, 10] {
            spec.check_target(PhysicalTarget::ExternalSram { latency })
                .unwrap();
        }
    }

    #[test]
    fn on_chip_classification() {
        assert!(PhysicalTarget::FifoCore.is_on_chip());
        assert!(PhysicalTarget::BlockRam.is_on_chip());
        assert!(!PhysicalTarget::ExternalSram { latency: 1 }.is_on_chip());
    }

    #[test]
    fn display_is_informative() {
        let spec = ContainerSpec::new(ContainerKind::ReadBuffer, 8, 512).unwrap();
        assert_eq!(spec.to_string(), "read buffer (512 x 8 bits)");
        assert_eq!(
            PhysicalTarget::ExternalSram { latency: 2 }.to_string(),
            "external sram (latency 2)"
        );
    }
}
