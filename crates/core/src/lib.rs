//! # hdp-core — model reuse through hardware design patterns
//!
//! The primary contribution of *"Model Reuse through Hardware Design
//! Patterns"* (Rincón, Moya, Barba, López — DATE 2005): a hardware
//! version of the GoF **Iterator** behavioural pattern and the
//! STL-inspired **Basic Component Library** built on it, which
//! decouples algorithms from the data structures they traverse so that
//! retargeting a design (FIFO → external SRAM, 8-bit grayscale →
//! 24-bit RGB) never touches the algorithm.
//!
//! The crate is organised around the paper's three concept families
//! (§3.2):
//!
//! * **Containers** — [`classify`] encodes the Table 1 taxonomy
//!   (access × traversal); [`spec`] describes concrete container
//!   instances and their mapping onto physical targets; [`hw`] holds
//!   cycle-accurate realisations over each target (FIFO core, LIFO
//!   core, block RAM, external SRAM, 3-line buffer).
//! * **Iterators** — [`classify`] encodes the Table 2 operation set
//!   (`inc`, `dec`, `read`, `write`, `index`); [`iface`] defines the
//!   hardware iterator interface as signal bundles; each container in
//!   [`hw`] implements the interface for its traversal class.
//! * **Algorithms** — [`algo`] holds engines written *only* against
//!   the iterator interface: `copy`, pixel-wise transforms, and the
//!   3×3 blur convolution of the paper's evaluation; [`golden`] holds
//!   the bit-exact behavioural models they are verified against.
//!
//! [`model`] ties everything together: a [`model::VideoPipelineModel`] is the
//! retargetable design description of the paper's Figure 3 —
//! containers, iterators and algorithms bound by name, with physical
//! targets chosen per container and changeable without touching the
//! rest of the model.
//!
//! ## Example: Table 2 conformance
//!
//! ```
//! use hdp_core::classify::{IterKind, IterOp};
//!
//! // Forward iterators move with `inc` but cannot move backwards.
//! assert!(IterKind::Forward.supports(IterOp::Inc));
//! assert!(!IterKind::Forward.supports(IterOp::Dec));
//! // Only random iterators can set an arbitrary position.
//! assert!(IterKind::Random.supports(IterOp::Index));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod catalog;
pub mod classify;
mod error;
pub mod golden;
pub mod hw;
pub mod iface;
pub mod model;
pub mod pixel;
pub mod spec;

pub use error::CoreError;
