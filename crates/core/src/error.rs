//! Error type for model construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a pattern-based model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An iterator kind was attached to a container that does not
    /// support it (violates the Table 1 / Table 2 taxonomy).
    IncompatibleIterator {
        /// The iterator kind requested.
        iterator: String,
        /// The container kind it was attached to.
        container: String,
        /// Why the combination is illegal.
        reason: String,
    },
    /// A container was mapped onto a physical target that cannot
    /// implement it.
    IncompatibleTarget {
        /// The container kind.
        container: String,
        /// The physical target requested.
        target: String,
    },
    /// An algorithm was bound to an iterator lacking a required
    /// operation.
    MissingOperation {
        /// The algorithm name.
        algorithm: String,
        /// The iterator binding name.
        iterator: String,
        /// The operation that is missing.
        operation: String,
    },
    /// A named model element does not exist.
    UnknownElement {
        /// The element kind (`"container"`, `"iterator"`, ...).
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// A named model element was defined twice.
    DuplicateElement {
        /// The element kind.
        kind: &'static str,
        /// The duplicated name.
        name: String,
    },
    /// A parameter is out of its legal range.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// Explanation of the violated constraint.
        message: String,
    },
    /// A simulation step failed while exercising a model.
    Sim(hdp_sim::SimError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::IncompatibleIterator {
                iterator,
                container,
                reason,
            } => write!(
                f,
                "iterator `{iterator}` cannot traverse container `{container}`: {reason}"
            ),
            CoreError::IncompatibleTarget { container, target } => write!(
                f,
                "container `{container}` cannot be implemented over target `{target}`"
            ),
            CoreError::MissingOperation {
                algorithm,
                iterator,
                operation,
            } => write!(
                f,
                "algorithm `{algorithm}` needs operation `{operation}` on iterator `{iterator}`"
            ),
            CoreError::UnknownElement { kind, name } => {
                write!(f, "unknown {kind} `{name}`")
            }
            CoreError::DuplicateElement { kind, name } => {
                write!(f, "duplicate {kind} `{name}`")
            }
            CoreError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            CoreError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hdp_sim::SimError> for CoreError {
    fn from(e: hdp_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }

    #[test]
    fn messages_are_lowercase_without_period() {
        let e = CoreError::UnknownElement {
            kind: "container",
            name: "rbuffer".into(),
        };
        let text = e.to_string();
        assert!(text.starts_with("unknown"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn sim_error_is_wrapped_with_source() {
        let e = CoreError::from(hdp_sim::SimError::NoConvergence {
            limit: 64,
            oscillating: vec![],
        });
        assert!(e.source().is_some());
    }
}
