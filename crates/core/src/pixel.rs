//! Pixel formats and frames: the data the motivating example moves.

use crate::CoreError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Pixel representation, the §3.3 design parameter whose change the
/// pattern absorbs ("from 8-bit grayscale to 24-bit RGB").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PixelFormat {
    /// 8-bit grayscale.
    Gray8,
    /// 24-bit RGB, 8 bits per channel packed `0xRRGGBB`.
    Rgb24,
}

impl PixelFormat {
    /// Pixel width in bits.
    #[must_use]
    pub fn bits(self) -> usize {
        match self {
            PixelFormat::Gray8 => 8,
            PixelFormat::Rgb24 => 24,
        }
    }

    /// Largest legal pixel value.
    #[must_use]
    pub fn max_value(self) -> u64 {
        (1 << self.bits()) - 1
    }
}

impl fmt::Display for PixelFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PixelFormat::Gray8 => "gray8",
            PixelFormat::Rgb24 => "rgb24",
        })
    }
}

/// A video frame: row-major pixels of a [`PixelFormat`].
///
/// The paper's test platform captures frames from a camera; we
/// generate deterministic synthetic frames instead ([`Frame::gradient`],
/// [`Frame::noise`], [`Frame::checkerboard`]) so every experiment is
/// reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: usize,
    height: usize,
    format: PixelFormat,
    pixels: Vec<u64>,
}

impl Frame {
    /// Creates a frame from raw row-major pixels.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the dimensions are
    /// zero, do not match the pixel count, or a pixel exceeds the
    /// format's range.
    pub fn from_pixels(
        width: usize,
        height: usize,
        format: PixelFormat,
        pixels: Vec<u64>,
    ) -> Result<Self, CoreError> {
        if width == 0 || height == 0 {
            return Err(CoreError::InvalidParameter {
                name: "dimensions",
                message: format!("{width}x{height} frame is empty"),
            });
        }
        if pixels.len() != width * height {
            return Err(CoreError::InvalidParameter {
                name: "pixels",
                message: format!(
                    "expected {} pixels for {width}x{height}, got {}",
                    width * height,
                    pixels.len()
                ),
            });
        }
        if let Some(&bad) = pixels.iter().find(|&&p| p > format.max_value()) {
            return Err(CoreError::InvalidParameter {
                name: "pixels",
                message: format!("pixel value {bad:#x} exceeds {format} range"),
            });
        }
        Ok(Self {
            width,
            height,
            format,
            pixels,
        })
    }

    /// A diagonal gradient frame, cheap to eyeball in failures.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    #[must_use]
    pub fn gradient(width: usize, height: usize, format: PixelFormat) -> Self {
        let pixels = (0..width * height)
            .map(|i| {
                let x = (i % width) as u64;
                let y = (i / width) as u64;
                (x * 7 + y * 13) & format.max_value()
            })
            .collect();
        Self::from_pixels(width, height, format, pixels).expect("generated pixels are in range")
    }

    /// A deterministic pseudo-random frame.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    #[must_use]
    pub fn noise(width: usize, height: usize, format: PixelFormat, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let pixels = (0..width * height)
            .map(|_| rng.gen_range(0..=format.max_value()))
            .collect();
        Self::from_pixels(width, height, format, pixels).expect("generated pixels are in range")
    }

    /// A binary checkerboard (0 / max), useful for the labelling
    /// algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `width`, `height` or `cell` is zero.
    #[must_use]
    pub fn checkerboard(width: usize, height: usize, format: PixelFormat, cell: usize) -> Self {
        assert!(cell > 0, "cell size must be positive");
        let pixels = (0..width * height)
            .map(|i| {
                let x = (i % width) / cell;
                let y = (i / width) / cell;
                if (x + y).is_multiple_of(2) {
                    format.max_value()
                } else {
                    0
                }
            })
            .collect();
        Self::from_pixels(width, height, format, pixels).expect("generated pixels are in range")
    }

    /// Frame width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The pixel format.
    #[must_use]
    pub fn format(&self) -> PixelFormat {
        self.format
    }

    /// The row-major pixel data.
    #[must_use]
    pub fn pixels(&self) -> &[u64] {
        &self.pixels
    }

    /// The pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the frame.
    #[must_use]
    pub fn pixel(&self, x: usize, y: usize) -> u64 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Consumes the frame, returning the raw pixels.
    #[must_use]
    pub fn into_pixels(self) -> Vec<u64> {
        self.pixels
    }
}

/// Splits a pixel into `count` bus words of `bus_bits` each, **most
/// significant first** — the §3.3 scenario of a 24-bit RGB pixel
/// carried over an 8-bit memory bus in "three consecutive container
/// reads/writes".
#[must_use]
pub fn split_pixel(pixel: u64, bus_bits: usize, count: usize) -> Vec<u64> {
    (0..count)
        .rev()
        .map(|i| (pixel >> (i * bus_bits)) & ((1 << bus_bits) - 1))
        .collect()
}

/// Reassembles a pixel from bus words produced by [`split_pixel`].
#[must_use]
pub fn join_pixel(words: &[u64], bus_bits: usize) -> u64 {
    words
        .iter()
        .fold(0, |acc, &w| (acc << bus_bits) | (w & ((1 << bus_bits) - 1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_have_expected_widths() {
        assert_eq!(PixelFormat::Gray8.bits(), 8);
        assert_eq!(PixelFormat::Rgb24.bits(), 24);
        assert_eq!(PixelFormat::Gray8.max_value(), 255);
        assert_eq!(PixelFormat::Rgb24.max_value(), 0xFF_FFFF);
    }

    #[test]
    fn from_pixels_validates() {
        assert!(Frame::from_pixels(0, 4, PixelFormat::Gray8, vec![]).is_err());
        assert!(Frame::from_pixels(2, 2, PixelFormat::Gray8, vec![0; 3]).is_err());
        assert!(Frame::from_pixels(2, 2, PixelFormat::Gray8, vec![0, 1, 2, 256]).is_err());
        assert!(Frame::from_pixels(2, 2, PixelFormat::Gray8, vec![0, 1, 2, 255]).is_ok());
    }

    #[test]
    fn gradient_is_deterministic_and_in_range() {
        let a = Frame::gradient(8, 4, PixelFormat::Gray8);
        let b = Frame::gradient(8, 4, PixelFormat::Gray8);
        assert_eq!(a, b);
        assert!(a.pixels().iter().all(|&p| p <= 255));
        assert_eq!(a.pixel(1, 0), 7);
        assert_eq!(a.pixel(0, 1), 13);
    }

    #[test]
    fn noise_depends_on_seed_only() {
        let a = Frame::noise(8, 8, PixelFormat::Rgb24, 42);
        let b = Frame::noise(8, 8, PixelFormat::Rgb24, 42);
        let c = Frame::noise(8, 8, PixelFormat::Rgb24, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.pixels().iter().all(|&p| p <= 0xFF_FFFF));
    }

    #[test]
    fn checkerboard_alternates() {
        let f = Frame::checkerboard(4, 4, PixelFormat::Gray8, 2);
        assert_eq!(f.pixel(0, 0), 255);
        assert_eq!(f.pixel(2, 0), 0);
        assert_eq!(f.pixel(0, 2), 0);
        assert_eq!(f.pixel(2, 2), 255);
    }

    #[test]
    fn split_join_round_trip() {
        let pixel = 0xAABBCC;
        let words = split_pixel(pixel, 8, 3);
        assert_eq!(words, vec![0xAA, 0xBB, 0xCC]);
        assert_eq!(join_pixel(&words, 8), pixel);
    }

    #[test]
    fn split_is_msb_first() {
        assert_eq!(split_pixel(0x123456, 8, 3)[0], 0x12);
    }
}
