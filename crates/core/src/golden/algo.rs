//! Behavioural models of the library algorithms.
//!
//! The paper demonstrates two algorithms — stream `copy` and an image
//! `blur` filter — and names pixel-wise filtering and binary image
//! labelling as domain algorithms the library should grow (§3.2.3,
//! §5). All four live here as bit-exact references for the hardware
//! engines in [`crate::algo`].

use crate::pixel::{Frame, PixelFormat};
use crate::CoreError;

/// A pixel-wise transfer function, the parameter of the `transform`
/// algorithm. Each variant is implementable as pure combinational
/// hardware, which is why the set is closed rather than an arbitrary
/// closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PixelOp {
    /// Pass-through; `transform` with `Identity` *is* the paper's copy
    /// algorithm.
    Identity,
    /// Photometric negative: `max - p` per channel.
    Invert,
    /// Binarise: `p >= threshold ? max : 0` (grayscale; applied to the
    /// luma sum for RGB).
    Threshold(u64),
    /// Multiply and shift with saturation: `min(max, (p * mul) >> shift)`
    /// per channel.
    Gain {
        /// Multiplier.
        mul: u64,
        /// Right shift after multiplying.
        shift: u32,
    },
}

impl PixelOp {
    /// Applies the operation to one pixel of the given format.
    #[must_use]
    pub fn apply(self, pixel: u64, format: PixelFormat) -> u64 {
        match format {
            PixelFormat::Gray8 => self.apply_channel(pixel & 0xFF, 0xFF),
            PixelFormat::Rgb24 => {
                let r = self.apply_channel(pixel >> 16 & 0xFF, 0xFF);
                let g = self.apply_channel(pixel >> 8 & 0xFF, 0xFF);
                let b = self.apply_channel(pixel & 0xFF, 0xFF);
                r << 16 | g << 8 | b
            }
        }
    }

    fn apply_channel(self, p: u64, max: u64) -> u64 {
        match self {
            PixelOp::Identity => p,
            PixelOp::Invert => max - p,
            PixelOp::Threshold(t) => {
                if p >= t {
                    max
                } else {
                    0
                }
            }
            PixelOp::Gain { mul, shift } => ((p * mul) >> shift).min(max),
        }
    }
}

/// Applies a [`PixelOp`] to every pixel of a frame — the behavioural
/// `transform` algorithm (and, with [`PixelOp::Identity`], `copy`).
#[must_use]
pub fn pixel_map(frame: &Frame, op: PixelOp) -> Frame {
    let pixels = frame
        .pixels()
        .iter()
        .map(|&p| op.apply(p, frame.format()))
        .collect();
    Frame::from_pixels(frame.width(), frame.height(), frame.format(), pixels)
        .expect("mapped pixels stay in range")
}

/// Border policy for the blur filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlurBorder {
    /// Emit only interior pixels: the output frame is
    /// `(width-2) x (height-2)`. This matches the streaming hardware,
    /// which has no window at the borders.
    Crop,
}

/// 3×3 blur convolution with the hardware-friendly binomial kernel
///
/// ```text
/// 1 2 1
/// 2 4 2   / 16
/// 1 2 1
/// ```
///
/// (shifts and adds only — no divider), applied per channel. The
/// paper's blur example processes the decoder stream through the
/// 3-line buffer; this is its bit-exact reference.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if the frame is smaller
/// than 3×3.
pub fn blur3x3(frame: &Frame, border: BlurBorder) -> Result<Frame, CoreError> {
    let BlurBorder::Crop = border;
    let (w, h) = (frame.width(), frame.height());
    if w < 3 || h < 3 {
        return Err(CoreError::InvalidParameter {
            name: "frame",
            message: format!("{w}x{h} frame is too small for a 3x3 kernel"),
        });
    }
    const KERNEL: [[u64; 3]; 3] = [[1, 2, 1], [2, 4, 2], [1, 2, 1]];
    let channel = |x: usize, y: usize, shift: u32| -> u64 {
        let mut acc = 0;
        for (ky, row) in KERNEL.iter().enumerate() {
            for (kx, &k) in row.iter().enumerate() {
                let p = frame.pixel(x + kx - 1, y + ky - 1);
                acc += k * (p >> shift & 0xFF);
            }
        }
        acc >> 4
    };
    let mut pixels = Vec::with_capacity((w - 2) * (h - 2));
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let p = match frame.format() {
                PixelFormat::Gray8 => channel(x, y, 0),
                PixelFormat::Rgb24 => {
                    channel(x, y, 16) << 16 | channel(x, y, 8) << 8 | channel(x, y, 0)
                }
            };
            pixels.push(p);
        }
    }
    Frame::from_pixels(w - 2, h - 2, frame.format(), pixels)
}

/// Binary image labelling: assigns a distinct label to every
/// 4-connected component of nonzero pixels, in raster-scan first-touch
/// order starting from 1 (background pixels stay 0). Returns the label
/// map and the component count.
///
/// Named by the paper as a domain algorithm the library should offer
/// ("binary image labelling for image processing applications",
/// §3.2.2/§5).
#[must_use]
pub fn label(frame: &Frame) -> (Vec<u64>, usize) {
    let (w, h) = (frame.width(), frame.height());
    let fg: Vec<bool> = frame.pixels().iter().map(|&p| p != 0).collect();
    let mut labels = vec![0u64; w * h];
    let mut next = 1u64;
    // Union-find over provisional labels (two-pass algorithm, the
    // classic hardware-amenable formulation).
    let mut parent: Vec<usize> = vec![0];
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if !fg[i] {
                continue;
            }
            let left = if x > 0 && fg[i - 1] { labels[i - 1] } else { 0 };
            let up = if y > 0 && fg[i - w] { labels[i - w] } else { 0 };
            labels[i] = match (left, up) {
                (0, 0) => {
                    parent.push(next as usize);
                    let l = next;
                    next += 1;
                    l
                }
                (l, 0) | (0, l) => l,
                (l, u) => {
                    let (rl, ru) = (find(&mut parent, l as usize), find(&mut parent, u as usize));
                    if rl != ru {
                        let (lo, hi) = (rl.min(ru), rl.max(ru));
                        parent[hi] = lo;
                    }
                    l.min(u)
                }
            };
        }
    }
    // Second pass: resolve to roots and renumber densely in
    // first-touch order.
    let mut rename: Vec<u64> = vec![0; parent.len()];
    let mut count = 0usize;
    for l in labels.iter_mut() {
        if *l == 0 {
            continue;
        }
        let root = find(&mut parent, *l as usize);
        if rename[root] == 0 {
            count += 1;
            rename[root] = count as u64;
        }
        *l = rename[root];
    }
    (labels, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gray(w: usize, h: usize, pixels: Vec<u64>) -> Frame {
        Frame::from_pixels(w, h, PixelFormat::Gray8, pixels).unwrap()
    }

    #[test]
    fn identity_map_is_copy() {
        let f = Frame::noise(8, 8, PixelFormat::Gray8, 1);
        assert_eq!(pixel_map(&f, PixelOp::Identity), f);
    }

    #[test]
    fn invert_is_involutive() {
        let f = Frame::noise(8, 8, PixelFormat::Rgb24, 2);
        let ff = pixel_map(&pixel_map(&f, PixelOp::Invert), PixelOp::Invert);
        assert_eq!(ff, f);
    }

    #[test]
    fn threshold_binarises() {
        let f = gray(2, 2, vec![10, 100, 200, 99]);
        let t = pixel_map(&f, PixelOp::Threshold(100));
        assert_eq!(t.pixels(), &[0, 255, 255, 0]);
    }

    #[test]
    fn gain_saturates() {
        let f = gray(2, 1, vec![100, 200]);
        let g = pixel_map(&f, PixelOp::Gain { mul: 3, shift: 1 });
        assert_eq!(g.pixels(), &[150, 255]); // 300>>1=150, 600>>1=300 -> 255
    }

    #[test]
    fn rgb_ops_act_per_channel() {
        let f = Frame::from_pixels(1, 1, PixelFormat::Rgb24, vec![0x102030]).unwrap();
        let inv = pixel_map(&f, PixelOp::Invert);
        assert_eq!(inv.pixels()[0], 0xEFDFCF);
    }

    #[test]
    fn blur_uniform_frame_is_unchanged_in_interior() {
        let f = gray(5, 5, vec![64; 25]);
        let b = blur3x3(&f, BlurBorder::Crop).unwrap();
        assert_eq!(b.width(), 3);
        assert_eq!(b.height(), 3);
        assert!(b.pixels().iter().all(|&p| p == 64));
    }

    #[test]
    fn blur_kernel_weights() {
        // Single bright pixel at the centre of a 3x3 frame: output is
        // the centre weight 4/16 of 160 = 40.
        let mut pixels = vec![0u64; 9];
        pixels[4] = 160;
        let f = gray(3, 3, pixels);
        let b = blur3x3(&f, BlurBorder::Crop).unwrap();
        assert_eq!(b.pixels(), &[40]);
    }

    #[test]
    fn blur_rejects_tiny_frames() {
        let f = gray(2, 2, vec![0; 4]);
        assert!(blur3x3(&f, BlurBorder::Crop).is_err());
    }

    #[test]
    fn blur_rgb_channels_do_not_bleed() {
        // Pure-red frame blurs to pure red.
        let f = Frame::from_pixels(3, 3, PixelFormat::Rgb24, vec![0xFF0000; 9]).unwrap();
        let b = blur3x3(&f, BlurBorder::Crop).unwrap();
        assert_eq!(b.pixels(), &[0xFF0000]);
    }

    #[test]
    fn label_two_components() {
        // 1 0 1
        // 1 0 1
        let f = gray(3, 2, vec![9, 0, 9, 9, 0, 9]);
        let (labels, count) = label(&f);
        assert_eq!(count, 2);
        assert_eq!(labels, vec![1, 0, 2, 1, 0, 2]);
    }

    #[test]
    fn label_merges_u_shape() {
        // 1 0 1
        // 1 1 1   -> single component despite two provisional labels
        let f = gray(3, 2, vec![9, 0, 9, 9, 9, 9]);
        let (labels, count) = label(&f);
        assert_eq!(count, 1);
        assert!(labels.iter().all(|&l| l == 0 || l == 1));
    }

    #[test]
    fn label_empty_frame() {
        let f = gray(3, 3, vec![0; 9]);
        let (labels, count) = label(&f);
        assert_eq!(count, 0);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn label_checkerboard_is_all_isolated() {
        let f = Frame::checkerboard(4, 4, PixelFormat::Gray8, 1);
        let (_, count) = label(&f);
        assert_eq!(count, 8); // 8 foreground cells, none 4-connected
    }
}
