//! Bit-exact behavioural models of the basic component library.
//!
//! Every hardware container and algorithm engine in this crate is
//! verified against the models here: same operations, same results,
//! with the timing abstracted away. This is the "behavioural level
//! abstraction (algorithm)" the paper wants designers to reuse, kept
//! executable so property tests can compare hardware against it under
//! arbitrary operation interleavings.

mod algo;

pub use algo::{blur3x3, label, pixel_map, BlurBorder, PixelOp};

use crate::CoreError;
use std::collections::VecDeque;

/// Behavioural FIFO queue with a capacity, the model of the `queue`,
/// `read buffer` and `write buffer` containers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Queue {
    data: VecDeque<u64>,
    capacity: usize,
}

impl Queue {
    /// Creates a queue with the given capacity.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            data: VecDeque::new(),
            capacity,
        }
    }

    /// Appends an element.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on overflow.
    pub fn push(&mut self, value: u64) -> Result<(), CoreError> {
        if self.data.len() >= self.capacity {
            return Err(CoreError::InvalidParameter {
                name: "push",
                message: "queue overflow".into(),
            });
        }
        self.data.push_back(value);
        Ok(())
    }

    /// Removes and returns the oldest element.
    #[must_use]
    pub fn pop(&mut self) -> Option<u64> {
        self.data.pop_front()
    }

    /// The oldest element without removing it.
    #[must_use]
    pub fn front(&self) -> Option<u64> {
        self.data.front().copied()
    }

    /// Number of stored elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no elements are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True if at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.data.len() >= self.capacity
    }
}

/// Behavioural LIFO stack with a capacity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stack {
    data: Vec<u64>,
    capacity: usize,
}

impl Stack {
    /// Creates a stack with the given capacity.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            data: Vec::new(),
            capacity,
        }
    }

    /// Pushes an element.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on overflow.
    pub fn push(&mut self, value: u64) -> Result<(), CoreError> {
        if self.data.len() >= self.capacity {
            return Err(CoreError::InvalidParameter {
                name: "push",
                message: "stack overflow".into(),
            });
        }
        self.data.push(value);
        Ok(())
    }

    /// Removes and returns the newest element.
    #[must_use]
    pub fn pop(&mut self) -> Option<u64> {
        self.data.pop()
    }

    /// The newest element without removing it.
    #[must_use]
    pub fn top(&self) -> Option<u64> {
        self.data.last().copied()
    }

    /// Number of stored elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no elements are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True if at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.data.len() >= self.capacity
    }
}

/// Behavioural random-access vector with an iterator cursor, the model
/// for the `vector` container traversed by a random iterator: `index`
/// sets the cursor, `inc`/`dec` move it, `read`/`write` access the
/// element under it (Table 2 semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vector {
    data: Vec<Option<u64>>,
    cursor: usize,
}

impl Vector {
    /// Creates a vector of `capacity` uninitialised elements with the
    /// cursor at 0.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            data: vec![None; capacity],
            cursor: 0,
        }
    }

    /// Sets the cursor (`index` operation).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if out of range.
    pub fn index(&mut self, pos: usize) -> Result<(), CoreError> {
        if pos >= self.data.len() {
            return Err(CoreError::InvalidParameter {
                name: "index",
                message: format!("position {pos} out of range {}", self.data.len()),
            });
        }
        self.cursor = pos;
        Ok(())
    }

    /// Moves the cursor forward (`inc`), wrapping at the end as a
    /// hardware position counter does.
    pub fn inc(&mut self) {
        self.cursor = (self.cursor + 1) % self.data.len();
    }

    /// Moves the cursor backward (`dec`), wrapping at zero.
    pub fn dec(&mut self) {
        self.cursor = (self.cursor + self.data.len() - 1) % self.data.len();
    }

    /// Reads the element under the cursor (`read`); `None` if that
    /// position was never written.
    #[must_use]
    pub fn read(&self) -> Option<u64> {
        self.data[self.cursor]
    }

    /// Writes the element under the cursor (`write`).
    pub fn write(&mut self, value: u64) {
        self.data[self.cursor] = Some(value);
    }

    /// The current cursor position.
    #[must_use]
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// The capacity in elements.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.data.len()
    }
}

/// Behavioural direct-mapped associative array: the model of the
/// hardware `assoc. array`, which stores each key in the slot selected
/// by `key % capacity` with a tag compare, evicting any previous
/// occupant — the realistic silicon implementation rather than an
/// unbounded map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssocArray {
    slots: Vec<Option<(u64, u64)>>, // (key, value)
}

impl AssocArray {
    /// Creates an associative array with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            slots: vec![None; capacity],
        }
    }

    fn slot(&self, key: u64) -> usize {
        (key % self.slots.len() as u64) as usize
    }

    /// Inserts or replaces the binding for `key`, returning the
    /// evicted binding if the slot held a *different* key.
    pub fn insert(&mut self, key: u64, value: u64) -> Option<(u64, u64)> {
        let s = self.slot(key);
        let evicted = match self.slots[s] {
            Some((k, v)) if k != key => Some((k, v)),
            _ => None,
        };
        self.slots[s] = Some((key, value));
        evicted
    }

    /// Looks up `key`; `None` on a miss (slot empty or holding a
    /// different key).
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<u64> {
        match self.slots[self.slot(key)] {
            Some((k, v)) if k == key => Some(v),
            _ => None,
        }
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True if nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// The slot capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_fifo_order_and_overflow() {
        let mut q = Queue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!(q.is_full());
        assert!(q.push(3).is_err());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.front(), Some(2));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn stack_lifo_order_and_overflow() {
        let mut s = Stack::new(2);
        s.push(1).unwrap();
        s.push(2).unwrap();
        assert!(s.push(3).is_err());
        assert_eq!(s.top(), Some(2));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn vector_cursor_semantics() {
        let mut v = Vector::new(4);
        assert_eq!(v.read(), None);
        v.write(10);
        v.inc();
        v.write(11);
        v.index(0).unwrap();
        assert_eq!(v.read(), Some(10));
        v.inc();
        assert_eq!(v.read(), Some(11));
        v.dec();
        assert_eq!(v.cursor(), 0);
        assert!(v.index(4).is_err());
    }

    #[test]
    fn vector_cursor_wraps() {
        let mut v = Vector::new(3);
        v.index(2).unwrap();
        v.inc();
        assert_eq!(v.cursor(), 0);
        v.dec();
        assert_eq!(v.cursor(), 2);
    }

    #[test]
    fn assoc_array_direct_mapping() {
        let mut a = AssocArray::new(4);
        assert!(a.is_empty());
        assert_eq!(a.insert(1, 100), None);
        assert_eq!(a.lookup(1), Some(100));
        // Key 5 maps to the same slot as key 1 (5 % 4 == 1): eviction.
        assert_eq!(a.insert(5, 500), Some((1, 100)));
        assert_eq!(a.lookup(5), Some(500));
        assert_eq!(a.lookup(1), None);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn assoc_array_same_key_update_is_not_eviction() {
        let mut a = AssocArray::new(4);
        a.insert(2, 20);
        assert_eq!(a.insert(2, 21), None);
        assert_eq!(a.lookup(2), Some(21));
    }
}
