//! The library taxonomy: Tables 1 and 2 of the paper, as data.
//!
//! Table 1 classifies the basic containers "depending on the type of
//! memory access required (random or sequential), and the type of
//! traversal allowed (forward, backwards or both)". Table 2 lists the
//! iterator operations and the iterator kinds each applies to. Both
//! tables are encoded here verbatim so the rest of the library — and
//! the Table 1/Table 2 conformance experiments — can check models
//! against them.

use std::fmt;

/// The six basic containers of the library (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContainerKind {
    /// LIFO stack.
    Stack,
    /// FIFO queue.
    Queue,
    /// Read buffer: a stream the design consumes (the video input of
    /// the motivating example).
    ReadBuffer,
    /// Write buffer: a stream the design produces (the video output).
    WriteBuffer,
    /// Randomly addressable vector.
    Vector,
    /// Associative array keyed by arbitrary values.
    AssocArray,
}

impl ContainerKind {
    /// All container kinds, in Table 1 row order.
    pub const ALL: [ContainerKind; 6] = [
        ContainerKind::Stack,
        ContainerKind::Queue,
        ContainerKind::ReadBuffer,
        ContainerKind::WriteBuffer,
        ContainerKind::Vector,
        ContainerKind::AssocArray,
    ];

    /// The Table 1 row for this container.
    #[must_use]
    pub fn classification(self) -> Classification {
        use Traversal::{Both, Forward, None as NoTrav};
        match self {
            // stack:        random -, -   sequential F (input), B (output)
            ContainerKind::Stack => Classification {
                random_input: false,
                random_output: false,
                sequential_input: Forward,
                sequential_output: Traversal::Backward,
            },
            // queue:        random -, -   sequential F, F
            ContainerKind::Queue => Classification {
                random_input: false,
                random_output: false,
                sequential_input: Forward,
                sequential_output: Forward,
            },
            // read buffer:  random -, -   sequential F, -
            ContainerKind::ReadBuffer => Classification {
                random_input: false,
                random_output: false,
                sequential_input: Forward,
                sequential_output: NoTrav,
            },
            // write buffer: random -, -   sequential -, F
            ContainerKind::WriteBuffer => Classification {
                random_input: false,
                random_output: false,
                sequential_input: NoTrav,
                sequential_output: Forward,
            },
            // vector:       random Y, Y   sequential F+B, F+B
            ContainerKind::Vector => Classification {
                random_input: true,
                random_output: true,
                sequential_input: Both,
                sequential_output: Both,
            },
            // assoc. array: random Y, Y   sequential -, -
            ContainerKind::AssocArray => Classification {
                random_input: true,
                random_output: true,
                sequential_input: NoTrav,
                sequential_output: NoTrav,
            },
        }
    }

    /// The iterator kinds this container supports, derived from the
    /// classification: a container admits an iterator kind when the
    /// kind's movement set is covered by the container's traversal
    /// capabilities (in the input and/or output role).
    #[must_use]
    pub fn supported_iterators(self) -> Vec<IterKind> {
        let c = self.classification();
        let mut kinds = Vec::new();
        let trav = c.sequential_input.union(c.sequential_output);
        if trav.allows_forward() {
            kinds.push(IterKind::Forward);
        }
        if trav.allows_backward() {
            kinds.push(IterKind::Backward);
        }
        if trav == Traversal::Both {
            kinds.push(IterKind::Bidirectional);
        }
        if c.random_input || c.random_output {
            kinds.push(IterKind::Random);
        }
        kinds
    }

    /// Whether an *input* (reading) iterator may traverse this
    /// container at all.
    #[must_use]
    pub fn readable(self) -> bool {
        let c = self.classification();
        c.random_input || c.sequential_input != Traversal::None
    }

    /// Whether an *output* (writing) iterator may traverse this
    /// container at all.
    #[must_use]
    pub fn writable(self) -> bool {
        let c = self.classification();
        c.random_output || c.sequential_output != Traversal::None
    }
}

impl fmt::Display for ContainerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ContainerKind::Stack => "stack",
            ContainerKind::Queue => "queue",
            ContainerKind::ReadBuffer => "read buffer",
            ContainerKind::WriteBuffer => "write buffer",
            ContainerKind::Vector => "vector",
            ContainerKind::AssocArray => "assoc. array",
        })
    }
}

/// Traversal directions a sequential access role allows (a Table 1
/// cell: `-`, `F`, `B` or `F, B`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Traversal {
    /// No sequential access in this role.
    None,
    /// Forward only.
    Forward,
    /// Backward only.
    Backward,
    /// Both directions.
    Both,
}

impl Traversal {
    /// Whether forward movement is allowed.
    #[must_use]
    pub fn allows_forward(self) -> bool {
        matches!(self, Traversal::Forward | Traversal::Both)
    }

    /// Whether backward movement is allowed.
    #[must_use]
    pub fn allows_backward(self) -> bool {
        matches!(self, Traversal::Backward | Traversal::Both)
    }

    /// The union of two traversal capabilities.
    #[must_use]
    pub fn union(self, other: Traversal) -> Traversal {
        match (
            self.allows_forward() || other.allows_forward(),
            self.allows_backward() || other.allows_backward(),
        ) {
            (true, true) => Traversal::Both,
            (true, false) => Traversal::Forward,
            (false, true) => Traversal::Backward,
            (false, false) => Traversal::None,
        }
    }
}

impl fmt::Display for Traversal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Traversal::None => "-",
            Traversal::Forward => "F",
            Traversal::Backward => "B",
            Traversal::Both => "F, B",
        })
    }
}

/// One row of Table 1: the access/traversal profile of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    /// Random access in the input (reading) role.
    pub random_input: bool,
    /// Random access in the output (writing) role.
    pub random_output: bool,
    /// Sequential traversal in the input role.
    pub sequential_input: Traversal,
    /// Sequential traversal in the output role.
    pub sequential_output: Traversal,
}

/// The iterator kinds of §3.2.2 (forward, backward, bidirectional,
/// random).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IterKind {
    /// Moves forward only.
    Forward,
    /// Moves backward only.
    Backward,
    /// Moves in both directions.
    Bidirectional,
    /// Sets arbitrary positions.
    Random,
}

impl IterKind {
    /// All iterator kinds.
    pub const ALL: [IterKind; 4] = [
        IterKind::Forward,
        IterKind::Backward,
        IterKind::Bidirectional,
        IterKind::Random,
    ];

    /// Whether this iterator kind provides `op` (Table 2's
    /// applicability column).
    #[must_use]
    pub fn supports(self, op: IterOp) -> bool {
        match op {
            // "inc — move forward — F / F, B" (random iterators can
            // also advance: they subsume bidirectional movement).
            IterOp::Inc => matches!(
                self,
                IterKind::Forward | IterKind::Bidirectional | IterKind::Random
            ),
            // "dec — move backwards — B / F, B"
            IterOp::Dec => matches!(
                self,
                IterKind::Backward | IterKind::Bidirectional | IterKind::Random
            ),
            // "read/write — random / F, B": every kind can access the
            // element at the current position; whether the *container*
            // permits reading or writing is the input/output role
            // checked separately.
            IterOp::Read | IterOp::Write => true,
            // "index — set the current position — random"
            IterOp::Index => self == IterKind::Random,
        }
    }

    /// The operations this kind provides, in Table 2 order.
    #[must_use]
    pub fn operations(self) -> Vec<IterOp> {
        IterOp::ALL
            .into_iter()
            .filter(|&op| self.supports(op))
            .collect()
    }
}

impl fmt::Display for IterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IterKind::Forward => "forward",
            IterKind::Backward => "backward",
            IterKind::Bidirectional => "bidirectional",
            IterKind::Random => "random",
        })
    }
}

/// The iterator operations of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IterOp {
    /// Move forward.
    Inc,
    /// Move backwards.
    Dec,
    /// Get the element at the current position.
    Read,
    /// Put the element at the current position.
    Write,
    /// Set the current position.
    Index,
}

impl IterOp {
    /// All operations, in Table 2 row order.
    pub const ALL: [IterOp; 5] = [
        IterOp::Inc,
        IterOp::Dec,
        IterOp::Read,
        IterOp::Write,
        IterOp::Index,
    ];

    /// The "Meaning" column of Table 2.
    #[must_use]
    pub fn meaning(self) -> &'static str {
        match self {
            IterOp::Inc => "move forward",
            IterOp::Dec => "move backwards",
            IterOp::Read => "get the element",
            IterOp::Write => "put the element",
            IterOp::Index => "set the current position",
        }
    }
}

impl fmt::Display for IterOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IterOp::Inc => "inc",
            IterOp::Dec => "dec",
            IterOp::Read => "read",
            IterOp::Write => "write",
            IterOp::Index => "index",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_stack_row() {
        let c = ContainerKind::Stack.classification();
        assert!(!c.random_input && !c.random_output);
        assert_eq!(c.sequential_input, Traversal::Forward);
        assert_eq!(c.sequential_output, Traversal::Backward);
    }

    #[test]
    fn table1_queue_row() {
        let c = ContainerKind::Queue.classification();
        assert_eq!(c.sequential_input, Traversal::Forward);
        assert_eq!(c.sequential_output, Traversal::Forward);
    }

    #[test]
    fn table1_buffers_are_unidirectional() {
        let r = ContainerKind::ReadBuffer.classification();
        assert_eq!(r.sequential_input, Traversal::Forward);
        assert_eq!(r.sequential_output, Traversal::None);
        assert!(ContainerKind::ReadBuffer.readable());
        assert!(!ContainerKind::ReadBuffer.writable());

        let w = ContainerKind::WriteBuffer.classification();
        assert_eq!(w.sequential_input, Traversal::None);
        assert_eq!(w.sequential_output, Traversal::Forward);
        assert!(!ContainerKind::WriteBuffer.readable());
        assert!(ContainerKind::WriteBuffer.writable());
    }

    #[test]
    fn table1_vector_row() {
        let c = ContainerKind::Vector.classification();
        assert!(c.random_input && c.random_output);
        assert_eq!(c.sequential_input, Traversal::Both);
        assert_eq!(c.sequential_output, Traversal::Both);
    }

    #[test]
    fn table1_assoc_array_row() {
        let c = ContainerKind::AssocArray.classification();
        assert!(c.random_input && c.random_output);
        assert_eq!(c.sequential_input, Traversal::None);
        assert_eq!(c.sequential_output, Traversal::None);
    }

    #[test]
    fn table2_forward_iterator_ops() {
        let ops = IterKind::Forward.operations();
        assert_eq!(ops, vec![IterOp::Inc, IterOp::Read, IterOp::Write]);
    }

    #[test]
    fn table2_backward_iterator_ops() {
        let ops = IterKind::Backward.operations();
        assert_eq!(ops, vec![IterOp::Dec, IterOp::Read, IterOp::Write]);
    }

    #[test]
    fn table2_bidirectional_iterator_ops() {
        let ops = IterKind::Bidirectional.operations();
        assert_eq!(
            ops,
            vec![IterOp::Inc, IterOp::Dec, IterOp::Read, IterOp::Write]
        );
    }

    #[test]
    fn table2_only_random_supports_index() {
        for kind in IterKind::ALL {
            assert_eq!(kind.supports(IterOp::Index), kind == IterKind::Random);
        }
    }

    #[test]
    fn vector_supports_every_iterator_kind() {
        let kinds = ContainerKind::Vector.supported_iterators();
        assert_eq!(kinds.len(), 4);
    }

    #[test]
    fn queue_supports_forward_only() {
        assert_eq!(
            ContainerKind::Queue.supported_iterators(),
            vec![IterKind::Forward]
        );
    }

    #[test]
    fn stack_supports_forward_and_backward() {
        let kinds = ContainerKind::Stack.supported_iterators();
        assert!(kinds.contains(&IterKind::Forward));
        assert!(kinds.contains(&IterKind::Backward));
        assert!(kinds.contains(&IterKind::Bidirectional));
        assert!(!kinds.contains(&IterKind::Random));
    }

    #[test]
    fn assoc_array_supports_random_only() {
        assert_eq!(
            ContainerKind::AssocArray.supported_iterators(),
            vec![IterKind::Random]
        );
    }

    #[test]
    fn traversal_union() {
        assert_eq!(
            Traversal::Forward.union(Traversal::Backward),
            Traversal::Both
        );
        assert_eq!(Traversal::None.union(Traversal::None), Traversal::None);
        assert_eq!(
            Traversal::Forward.union(Traversal::None),
            Traversal::Forward
        );
    }

    #[test]
    fn display_matches_table_notation() {
        assert_eq!(Traversal::Both.to_string(), "F, B");
        assert_eq!(Traversal::None.to_string(), "-");
        assert_eq!(ContainerKind::AssocArray.to_string(), "assoc. array");
        assert_eq!(IterOp::Index.meaning(), "set the current position");
    }
}
