//! Cycle-accurate hardware realisations of the basic component
//! library.
//!
//! Each type here is a container *fused with its concrete iterator*,
//! which is exactly what the paper's generator produces after the
//! iterator wrapper dissolves ("iterators ... are only wrappers that
//! will be dissolved at the time of synthesizing the design", §4). One
//! struct exists per (container, physical target) pair, mirroring the
//! metamodel specialisations of §3.4:
//!
//! | container | FIFO core | LIFO core | block RAM | external SRAM | 3-line buffer |
//! |---|---|---|---|---|---|
//! | read buffer | [`ReadBufferFifo`] | — | — | [`ReadBufferSram`] | [`ColumnBuffer`] |
//! | write buffer | [`WriteBufferFifo`] | — | — | [`WriteBufferSram`] | — |
//! | stack | — | [`StackLifo`] | — | [`StackSram`] | — |
//! | vector | — | — | [`VectorBram`] | [`VectorSram`] | — |
//! | assoc. array | — | — | [`AssocBram`] | — | — |
//!
//! [`ReadWidthAdapter`] / [`WriteWidthAdapter`] implement the §3.3
//! pixel-format change (a 24-bit pixel over an 8-bit container in
//! three consecutive accesses), and [`SramArbiter`] the shared-RAM
//! arbitration the metaprogramming layer generates for containers
//! sharing one external memory.

mod adapter;
mod arbiter;
mod assoc;
mod read_buffer;
mod stack;
mod vector;
mod write_buffer;

pub use adapter::{ReadWidthAdapter, WriteWidthAdapter};
pub use arbiter::{ArbiterPolicy, SramArbiter};
pub use assoc::AssocBram;
pub use read_buffer::{ColumnBuffer, ReadBufferFifo, ReadBufferSram};
pub use stack::{StackLifo, StackSram};
pub use vector::{VectorBram, VectorSram};
pub use write_buffer::{WriteBufferFifo, WriteBufferSram};
