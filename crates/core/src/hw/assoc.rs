//! The `assoc. array` container with its random iterator.

use crate::iface::RandomIterIface;
use hdp_hdl::LogicVector;
use hdp_sim::{BusAccess, Component, Sensitivity, SignalBus, SignalId, SimError};

/// Associative array over on-chip block RAM: a direct-mapped store
/// with a tag compare, the classic silicon realisation of the Table 1
/// `assoc. array` row (random input and output, no sequential
/// traversal).
///
/// The random iterator's `pos` operand carries the **key**: `index`
/// latches the current key; `write` binds it to `wdata`; `read` looks
/// it up, raising the separate `found` output with `done` (a miss
/// completes with `found` low — it is a result, not an error).
/// `inc`/`dec` are meaningless for associative access and are
/// rejected, matching the Table 1 row's empty sequential cells.
#[derive(Debug)]
pub struct AssocBram {
    name: String,
    width: usize,
    it: RandomIterIface,
    /// Hit/miss flag, valid with `done` on reads.
    found: SignalId,
    slots: Vec<Option<(u64, u64)>>,
    key: u64,
    completing: Option<AssocOp>,
    fetched: Option<u64>,
    hit: bool,
    done_pulse: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AssocOp {
    Read,
    Write(u64),
}

impl AssocBram {
    /// Creates an associative array of `capacity` slots holding
    /// `width`-bit values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        capacity: usize,
        width: usize,
        it: RandomIterIface,
        found: SignalId,
    ) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            name: name.into(),
            width,
            it,
            found,
            slots: vec![None; capacity],
            key: 0,
            completing: None,
            fetched: None,
            hit: false,
            done_pulse: false,
        }
    }

    fn slot(&self, key: u64) -> usize {
        (key % self.slots.len() as u64) as usize
    }

    /// Occupied slot count, for testbenches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True if nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }
}

impl Component for AssocBram {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        let idle = self.completing.is_none();
        bus.drive_u64(self.it.seq.can_read, u64::from(idle))?;
        bus.drive_u64(self.it.seq.can_write, u64::from(idle))?;
        bus.drive_u64(self.it.seq.done, u64::from(self.done_pulse))?;
        bus.drive_u64(self.found, u64::from(self.hit))?;
        match self.fetched {
            Some(v) => bus.drive_u64(self.it.seq.rdata, v)?,
            None => bus.drive(
                self.it.seq.rdata,
                LogicVector::unknown(self.width).map_err(SimError::from)?,
            )?,
        }
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        // Strobes still asserted while our `done` pulse is visible
        // belong to the operation that just completed.
        let done_visible = self.done_pulse;
        self.done_pulse = false;
        if done_visible {
            return Ok(());
        }
        if let Some(op) = self.completing.take() {
            let s = self.slot(self.key);
            match op {
                AssocOp::Read => match self.slots[s] {
                    Some((k, v)) if k == self.key => {
                        self.fetched = Some(v);
                        self.hit = true;
                    }
                    _ => {
                        self.fetched = None;
                        self.hit = false;
                    }
                },
                AssocOp::Write(v) => {
                    self.slots[s] = Some((self.key, v));
                    self.hit = true;
                }
            }
            self.done_pulse = true;
            return Ok(());
        }
        let inc = bus.read(self.it.seq.inc)?.to_u64() == Some(1);
        let dec = bus.read(self.it.dec)?.to_u64() == Some(1);
        if inc || dec {
            return Err(SimError::Protocol {
                component: self.name.clone(),
                message: "sequential traversal of an associative array".into(),
            });
        }
        let index = bus.read(self.it.index)?.to_u64() == Some(1);
        let read = bus.read(self.it.seq.read)?.to_u64() == Some(1);
        let write = bus.read(self.it.seq.write)?.to_u64() == Some(1);
        if index {
            self.key = bus.read_u64(self.it.pos, &self.name)?;
            if !read && !write {
                self.done_pulse = true;
            }
        }
        if read && write {
            return Err(SimError::Protocol {
                component: self.name.clone(),
                message: "simultaneous read and write".into(),
            });
        } else if read {
            if index {
                self.key = bus.read_u64(self.it.pos, &self.name)?;
            }
            self.completing = Some(AssocOp::Read);
        } else if write {
            if index {
                self.key = bus.read_u64(self.it.pos, &self.name)?;
            }
            let v = bus.read_u64(self.it.seq.wdata, &self.name)?;
            self.completing = Some(AssocOp::Write(v));
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.key = 0;
        self.completing = None;
        self.fetched = None;
        self.hit = false;
        self.done_pulse = false;
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        // eval drives purely from registered state; strobes and the
        // key are sampled at the clock edge.
        Sensitivity::Signals(vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_sim::Simulator;

    struct Rig {
        sim: Simulator,
        it: RandomIterIface,
        found: SignalId,
    }

    fn rig(capacity: usize) -> Rig {
        let mut sim = Simulator::new();
        let it = RandomIterIface::alloc(&mut sim, "it", 16, 16).unwrap();
        let found = sim.add_signal("it_found", 1).unwrap();
        sim.add_component(AssocBram::new("dut", capacity, 16, it, found));
        for s in [it.seq.read, it.seq.inc, it.seq.write, it.dec, it.index] {
            sim.poke(s, 0).unwrap();
        }
        sim.poke(it.seq.wdata, 0).unwrap();
        sim.poke(it.pos, 0).unwrap();
        sim.reset().unwrap();
        Rig { sim, it, found }
    }

    fn write(r: &mut Rig, key: u64, value: u64) {
        r.sim.poke(r.it.pos, key).unwrap();
        r.sim.poke(r.it.index, 1).unwrap();
        r.sim.poke(r.it.seq.write, 1).unwrap();
        r.sim.poke(r.it.seq.wdata, value).unwrap();
        wait_done(r);
        r.sim.poke(r.it.index, 0).unwrap();
        r.sim.poke(r.it.seq.write, 0).unwrap();
        r.sim.step().unwrap();
    }

    fn read(r: &mut Rig, key: u64) -> (Option<u64>, bool) {
        r.sim.poke(r.it.pos, key).unwrap();
        r.sim.poke(r.it.index, 1).unwrap();
        r.sim.poke(r.it.seq.read, 1).unwrap();
        wait_done(r);
        let value = r.sim.peek(r.it.seq.rdata).unwrap().to_u64();
        let hit = r.sim.peek(r.found).unwrap().to_u64() == Some(1);
        r.sim.poke(r.it.index, 0).unwrap();
        r.sim.poke(r.it.seq.read, 0).unwrap();
        r.sim.step().unwrap();
        (value, hit)
    }

    fn wait_done(r: &mut Rig) {
        for _ in 0..20 {
            r.sim.step().unwrap();
            if r.sim.peek(r.it.seq.done).unwrap().to_u64() == Some(1) {
                return;
            }
        }
        panic!("op did not complete");
    }

    #[test]
    fn insert_and_lookup() {
        let mut r = rig(8);
        write(&mut r, 3, 300);
        let (v, hit) = read(&mut r, 3);
        assert!(hit);
        assert_eq!(v, Some(300));
    }

    #[test]
    fn miss_reports_not_found() {
        let mut r = rig(8);
        write(&mut r, 3, 300);
        let (_, hit) = read(&mut r, 4);
        assert!(!hit);
    }

    #[test]
    fn direct_mapped_eviction_matches_golden() {
        let mut r = rig(4);
        write(&mut r, 1, 100);
        write(&mut r, 5, 500); // 5 % 4 == 1: evicts key 1
        let (_, hit1) = read(&mut r, 1);
        assert!(!hit1);
        let (v5, hit5) = read(&mut r, 5);
        assert!(hit5);
        assert_eq!(v5, Some(500));
        // The golden model agrees.
        let mut g = crate::golden::AssocArray::new(4);
        g.insert(1, 100);
        g.insert(5, 500);
        assert_eq!(g.lookup(1), None);
        assert_eq!(g.lookup(5), Some(500));
    }

    #[test]
    fn sequential_traversal_is_rejected() {
        let mut r = rig(4);
        r.sim.poke(r.it.seq.inc, 1).unwrap();
        assert!(matches!(
            r.sim.step().unwrap_err(),
            SimError::Protocol { .. }
        ));
    }
}
