//! The `vector` container with its random iterator.

use crate::iface::{RandomIterIface, SramPort};
use hdp_hdl::LogicVector;
use hdp_sim::{BusAccess, Component, Sensitivity, SignalBus, SimError};

/// Which access a multi-cycle vector operation is performing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VecOp {
    Read,
    Write(u64),
}

/// Vector over on-chip block RAM with a full random iterator: `index`
/// sets the position register, `inc`/`dec` move it (wrapping),
/// `read`/`write` access the element under it with the one-cycle
/// latency of a synchronous Block SelectRAM.
///
/// `index`, `inc` and `dec` are positional operations and complete
/// immediately (pure register updates); `read`/`write` pulse `done`
/// on the following cycle. A movement strobed together with an access
/// applies *after* the access (post-increment semantics), which is
/// what lets `read`+`inc` stream through the vector.
#[derive(Debug)]
pub struct VectorBram {
    name: String,
    width: usize,
    it: RandomIterIface,
    mem: Vec<Option<u64>>,
    cursor: u64,
    /// Access captured last edge, completing this cycle.
    completing: Option<VecOp>,
    fetched: Option<u64>,
    done_pulse: bool,
}

impl VectorBram {
    /// Creates a vector of `capacity` elements of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        capacity: usize,
        width: usize,
        it: RandomIterIface,
    ) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            name: name.into(),
            width,
            it,
            mem: vec![None; capacity],
            cursor: 0,
            completing: None,
            fetched: None,
            done_pulse: false,
        }
    }

    /// The element capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.mem.len()
    }

    /// The current cursor position.
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Backdoor read for testbenches.
    #[must_use]
    pub fn word(&self, index: usize) -> Option<u64> {
        self.mem.get(index).copied().flatten()
    }
}

impl Component for VectorBram {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        let idle = self.completing.is_none();
        bus.drive_u64(self.it.seq.can_read, u64::from(idle))?;
        bus.drive_u64(self.it.seq.can_write, u64::from(idle))?;
        bus.drive_u64(self.it.seq.done, u64::from(self.done_pulse))?;
        match self.fetched {
            Some(v) => bus.drive_u64(self.it.seq.rdata, v)?,
            None => bus.drive(
                self.it.seq.rdata,
                LogicVector::unknown(self.width).map_err(SimError::from)?,
            )?,
        }
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        // Strobes still asserted while our `done` pulse is visible
        // belong to the operation that just completed.
        let done_visible = self.done_pulse;
        self.done_pulse = false;
        if done_visible {
            return Ok(());
        }
        // Complete the access captured on the previous edge.
        if let Some(op) = self.completing.take() {
            match op {
                VecOp::Read => {
                    self.fetched = self.mem[self.cursor as usize];
                    if self.fetched.is_none() {
                        return Err(SimError::Protocol {
                            component: self.name.clone(),
                            message: format!("read of uninitialised element {}", self.cursor),
                        });
                    }
                }
                VecOp::Write(v) => self.mem[self.cursor as usize] = Some(v),
            }
            self.done_pulse = true;
            // Post-access movement.
            self.apply_movement(bus)?;
            return Ok(());
        }
        // Positional operations apply immediately.
        let index = bus.read(self.it.index)?.to_u64() == Some(1);
        let read = bus.read(self.it.seq.read)?.to_u64() == Some(1);
        let write = bus.read(self.it.seq.write)?.to_u64() == Some(1);
        if index {
            let pos = bus.read_u64(self.it.pos, &self.name)?;
            if pos as usize >= self.mem.len() {
                return Err(SimError::Protocol {
                    component: self.name.clone(),
                    message: format!("index {pos} out of range {}", self.mem.len()),
                });
            }
            self.cursor = pos;
            self.done_pulse = true;
        } else if read && write {
            return Err(SimError::Protocol {
                component: self.name.clone(),
                message: "simultaneous read and write".into(),
            });
        } else if read {
            self.completing = Some(VecOp::Read);
        } else if write {
            let v = bus.read_u64(self.it.seq.wdata, &self.name)?;
            self.completing = Some(VecOp::Write(v));
        } else {
            // Bare movement.
            self.apply_movement(bus)?;
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.cursor = 0;
        self.completing = None;
        self.fetched = None;
        self.done_pulse = false;
        // Block RAM contents survive reset.
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        // eval drives purely from registered state; strobes are
        // sampled at the clock edge.
        Sensitivity::Signals(vec![])
    }
}

impl VectorBram {
    fn apply_movement(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        let inc = bus.read(self.it.seq.inc)?.to_u64() == Some(1);
        let dec = bus.read(self.it.dec)?.to_u64() == Some(1);
        let n = self.mem.len() as u64;
        if inc && !dec {
            self.cursor = (self.cursor + 1) % n;
        } else if dec && !inc {
            self.cursor = (self.cursor + n - 1) % n;
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VsFsm {
    Idle,
    Access(VecOp),
    Release,
}

/// Vector over external static RAM: the same random iterator, with
/// each `read`/`write` becoming a req/ack transaction of the
/// configured latency.
#[derive(Debug)]
pub struct VectorSram {
    name: String,
    capacity: usize,
    base: u64,
    width: usize,
    it: RandomIterIface,
    mem: SramPort,
    fsm: VsFsm,
    cursor: u64,
    fetched: Option<u64>,
    done_pulse: bool,
}

impl VectorSram {
    /// Creates the vector over the SRAM master port `mem`, using
    /// `capacity` words starting at address `base`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        capacity: usize,
        base: u64,
        width: usize,
        it: RandomIterIface,
        mem: SramPort,
    ) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            name: name.into(),
            capacity,
            base,
            width,
            it,
            mem,
            fsm: VsFsm::Idle,
            cursor: 0,
            fetched: None,
            done_pulse: false,
        }
    }

    /// The current cursor position.
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.cursor
    }
}

impl Component for VectorSram {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        let idle = self.fsm == VsFsm::Idle;
        bus.drive_u64(self.it.seq.can_read, u64::from(idle))?;
        bus.drive_u64(self.it.seq.can_write, u64::from(idle))?;
        bus.drive_u64(self.it.seq.done, u64::from(self.done_pulse))?;
        match self.fetched {
            Some(v) => bus.drive_u64(self.it.seq.rdata, v)?,
            None => bus.drive(
                self.it.seq.rdata,
                LogicVector::unknown(self.width).map_err(SimError::from)?,
            )?,
        }
        match self.fsm {
            VsFsm::Idle | VsFsm::Release => {
                bus.drive_u64(self.mem.req, 0)?;
                bus.drive_u64(self.mem.we, 0)?;
                bus.drive_u64(self.mem.addr, self.base + self.cursor)?;
                bus.drive_u64(self.mem.wdata, 0)?;
            }
            VsFsm::Access(op) => {
                bus.drive_u64(self.mem.req, 1)?;
                bus.drive_u64(self.mem.addr, self.base + self.cursor)?;
                match op {
                    VecOp::Read => {
                        bus.drive_u64(self.mem.we, 0)?;
                        bus.drive_u64(self.mem.wdata, 0)?;
                    }
                    VecOp::Write(v) => {
                        bus.drive_u64(self.mem.we, 1)?;
                        bus.drive_u64(self.mem.wdata, v)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        let done_visible = self.done_pulse;
        self.done_pulse = false;
        let ack = bus.read(self.mem.ack)?.to_u64() == Some(1);
        match self.fsm {
            VsFsm::Idle if done_visible => {}
            VsFsm::Idle => {
                let index = bus.read(self.it.index)?.to_u64() == Some(1);
                let read = bus.read(self.it.seq.read)?.to_u64() == Some(1);
                let write = bus.read(self.it.seq.write)?.to_u64() == Some(1);
                if index {
                    let pos = bus.read_u64(self.it.pos, &self.name)?;
                    if pos as usize >= self.capacity {
                        return Err(SimError::Protocol {
                            component: self.name.clone(),
                            message: format!("index {pos} out of range {}", self.capacity),
                        });
                    }
                    self.cursor = pos;
                    self.done_pulse = true;
                } else if read {
                    self.fsm = VsFsm::Access(VecOp::Read);
                } else if write {
                    let v = bus.read_u64(self.it.seq.wdata, &self.name)?;
                    self.fsm = VsFsm::Access(VecOp::Write(v));
                } else {
                    self.apply_movement(bus)?;
                }
            }
            VsFsm::Access(op) => {
                if ack {
                    if let VecOp::Read = op {
                        self.fetched = Some(bus.read_u64(self.mem.rdata, &self.name)?);
                    }
                    self.done_pulse = true;
                    self.apply_movement(bus)?;
                    self.fsm = VsFsm::Release;
                }
            }
            VsFsm::Release => self.fsm = VsFsm::Idle,
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.fsm = VsFsm::Idle;
        self.cursor = 0;
        self.fetched = None;
        self.done_pulse = false;
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        // eval drives purely from FSM/register state; the SRAM ack is
        // sampled at the clock edge.
        Sensitivity::Signals(vec![])
    }
}

impl VectorSram {
    fn apply_movement(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        let inc = bus.read(self.it.seq.inc)?.to_u64() == Some(1);
        let dec = bus.read(self.it.dec)?.to_u64() == Some(1);
        let n = self.capacity as u64;
        if inc && !dec {
            self.cursor = (self.cursor + 1) % n;
        } else if dec && !inc {
            self.cursor = (self.cursor + n - 1) % n;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_sim::Simulator;

    struct Rig {
        sim: Simulator,
        it: RandomIterIface,
    }

    fn bram_rig(capacity: usize) -> Rig {
        let mut sim = Simulator::new();
        let it = RandomIterIface::alloc(&mut sim, "it", 8, 8).unwrap();
        sim.add_component(VectorBram::new("dut", capacity, 8, it));
        for s in [it.seq.read, it.seq.inc, it.seq.write, it.dec, it.index] {
            sim.poke(s, 0).unwrap();
        }
        sim.poke(it.seq.wdata, 0).unwrap();
        sim.poke(it.pos, 0).unwrap();
        sim.reset().unwrap();
        Rig { sim, it }
    }

    fn sram_rig(capacity: usize, latency: u32) -> Rig {
        let mut sim = Simulator::new();
        let it = RandomIterIface::alloc(&mut sim, "it", 8, 8).unwrap();
        let mem = SramPort::alloc(&mut sim, "mem", 16, 8).unwrap();
        sim.add_component(mem.device("u_sram", 16, 8, latency));
        sim.add_component(VectorSram::new("dut", capacity, 0, 8, it, mem));
        for s in [it.seq.read, it.seq.inc, it.seq.write, it.dec, it.index] {
            sim.poke(s, 0).unwrap();
        }
        sim.poke(it.seq.wdata, 0).unwrap();
        sim.poke(it.pos, 0).unwrap();
        sim.reset().unwrap();
        Rig { sim, it }
    }

    /// Issues one op (strobe set, wait done, strobe clear).
    fn op(
        r: &mut Rig,
        strobes: &[hdp_sim::SignalId],
        wdata: Option<u64>,
        pos: Option<u64>,
    ) -> Option<u64> {
        if let Some(v) = wdata {
            r.sim.poke(r.it.seq.wdata, v).unwrap();
        }
        if let Some(p) = pos {
            r.sim.poke(r.it.pos, p).unwrap();
        }
        for &s in strobes {
            r.sim.poke(s, 1).unwrap();
        }
        for _ in 0..40 {
            r.sim.step().unwrap();
            if r.sim.peek(r.it.seq.done).unwrap().to_u64() == Some(1) {
                let out = r.sim.peek(r.it.seq.rdata).unwrap().to_u64();
                for &s in strobes {
                    r.sim.poke(s, 0).unwrap();
                }
                r.sim.step().unwrap();
                return out;
            }
        }
        panic!("op did not complete");
    }

    #[test]
    fn bram_write_then_read_by_index() {
        let mut r = bram_rig(16);
        let (read, write, index) = (r.it.seq.read, r.it.seq.write, r.it.index);
        op(&mut r, &[index], None, Some(5));
        op(&mut r, &[write], Some(0xAB), None);
        op(&mut r, &[index], None, Some(0));
        op(&mut r, &[index], None, Some(5));
        assert_eq!(op(&mut r, &[read], None, None), Some(0xAB));
    }

    #[test]
    fn bram_read_inc_streams() {
        let mut r = bram_rig(4);
        let (read, write, inc, index) = (r.it.seq.read, r.it.seq.write, r.it.seq.inc, r.it.index);
        // Fill 0..4 with write+inc.
        for v in [10u64, 11, 12, 13] {
            op(&mut r, &[write, inc], Some(v), None);
        }
        // Cursor wrapped to 0; read back with read+inc.
        op(&mut r, &[index], None, Some(0));
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.push(op(&mut r, &[read, inc], None, None).unwrap());
        }
        assert_eq!(seen, vec![10, 11, 12, 13]);
    }

    #[test]
    fn bram_dec_moves_backwards_with_wrap() {
        let mut r = bram_rig(4);
        let (write, inc, dec, read, index) = (
            r.it.seq.write,
            r.it.seq.inc,
            r.it.dec,
            r.it.seq.read,
            r.it.index,
        );
        for v in [1u64, 2, 3, 4] {
            op(&mut r, &[write, inc], Some(v), None);
        }
        op(&mut r, &[index], None, Some(0));
        // dec wraps to position 3.
        op(&mut r, &[read, dec], None, None); // read pos 0 = 1, then move to 3
        assert_eq!(op(&mut r, &[read], None, None), Some(4));
    }

    #[test]
    fn bram_uninitialised_read_is_error() {
        let mut r = bram_rig(4);
        r.sim.poke(r.it.seq.read, 1).unwrap();
        r.sim.step().unwrap(); // capture
        assert!(matches!(
            r.sim.step().unwrap_err(),
            SimError::Protocol { .. }
        ));
    }

    #[test]
    fn bram_index_out_of_range_is_error() {
        let mut r = bram_rig(4);
        r.sim.poke(r.it.index, 1).unwrap();
        r.sim.poke(r.it.pos, 4).unwrap();
        assert!(matches!(
            r.sim.step().unwrap_err(),
            SimError::Protocol { .. }
        ));
    }

    #[test]
    fn sram_vector_round_trip() {
        let mut r = sram_rig(16, 2);
        let (read, write, index) = (r.it.seq.read, r.it.seq.write, r.it.index);
        op(&mut r, &[index], None, Some(7));
        op(&mut r, &[write], Some(0x5C), None);
        assert_eq!(op(&mut r, &[read], None, None), Some(0x5C));
    }

    #[test]
    fn sram_vector_streams_with_inc() {
        let mut r = sram_rig(8, 1);
        let (read, write, inc, index) = (r.it.seq.read, r.it.seq.write, r.it.seq.inc, r.it.index);
        for v in [9u64, 8, 7] {
            op(&mut r, &[write, inc], Some(v), None);
        }
        op(&mut r, &[index], None, Some(0));
        let mut seen = Vec::new();
        for _ in 0..3 {
            seen.push(op(&mut r, &[read, inc], None, None).unwrap());
        }
        assert_eq!(seen, vec![9, 8, 7]);
    }
}
