//! The `stack` container: forward input iterator (push side) and
//! backward output iterator (pop side), per the Table 1 row.

use crate::iface::{IterIface, SramPort};
use hdp_hdl::LogicVector;
use hdp_sim::{BusAccess, Component, Sensitivity, SignalBus, SimError};

/// Stack over an on-chip LIFO core.
///
/// The single [`IterIface`] carries both roles of the Table 1 stack
/// row: `write`+`inc` pushes (the forward input iterator), `read`+`dec`
/// pops (the backward output iterator), `read` alone peeks the top.
#[derive(Debug)]
pub struct StackLifo {
    name: String,
    depth: usize,
    width: usize,
    it: IterIface,
    dec: hdp_sim::SignalId,
    data: Vec<u64>,
}

impl StackLifo {
    /// Creates the stack with `depth` elements of `width` bits. `dec`
    /// is the backward-movement strobe of the pop iterator.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        depth: usize,
        width: usize,
        it: IterIface,
        dec: hdp_sim::SignalId,
    ) -> Self {
        assert!(depth > 0, "depth must be positive");
        Self {
            name: name.into(),
            depth,
            width,
            it,
            dec,
            data: Vec::new(),
        }
    }

    /// Number of stored elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no elements are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Component for StackLifo {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        let can_read = !self.data.is_empty();
        let can_write = self.data.len() < self.depth;
        bus.drive_u64(self.it.can_read, u64::from(can_read))?;
        bus.drive_u64(self.it.can_write, u64::from(can_write))?;
        match self.data.last() {
            Some(&top) => bus.drive_u64(self.it.rdata, top)?,
            None => bus.drive(
                self.it.rdata,
                LogicVector::unknown(self.width).map_err(SimError::from)?,
            )?,
        }
        let write = bus.read(self.it.write)?.to_u64() == Some(1);
        let read = bus.read(self.it.read)?.to_u64() == Some(1);
        let dec = bus.read(self.dec)?.to_u64() == Some(1);
        let done = (write && can_write) || ((read || dec) && can_read);
        bus.drive_u64(self.it.done, u64::from(done))?;
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        let write = bus.read(self.it.write)?.to_u64() == Some(1);
        let inc = bus.read(self.it.inc)?.to_u64() == Some(1);
        let dec = bus.read(self.dec)?.to_u64() == Some(1);
        if write && inc && dec {
            return Err(SimError::Protocol {
                component: self.name.clone(),
                message: "simultaneous push and pop on a stack iterator".into(),
            });
        }
        if dec {
            if self.data.pop().is_none() {
                return Err(SimError::Protocol {
                    component: self.name.clone(),
                    message: "dec (pop) on empty stack".into(),
                });
            }
        } else if write && inc {
            if self.data.len() >= self.depth {
                return Err(SimError::Protocol {
                    component: self.name.clone(),
                    message: "write (push) on full stack".into(),
                });
            }
            self.data.push(bus.read_u64(self.it.wdata, &self.name)?);
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.data.clear();
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        // eval folds the write/read/dec strobes into `done`; the rest
        // comes from stack state.
        Sensitivity::Signals(vec![self.it.write, self.it.read, self.dec])
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StackFsm {
    Idle,
    Pushing,
    Popping,
    Release,
}

/// Stack over external static RAM: a stack-pointer register plus the
/// req/ack transaction FSM of §3.4.
#[derive(Debug)]
pub struct StackSram {
    name: String,
    capacity: usize,
    base: u64,
    width: usize,
    it: IterIface,
    dec: hdp_sim::SignalId,
    mem: SramPort,
    fsm: StackFsm,
    sp: u64,
    pending_push: Option<u64>,
    fetched: Option<u64>,
    done_pulse: bool,
}

impl StackSram {
    /// Creates the stack over the SRAM master port `mem`, using
    /// `capacity` words starting at address `base`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        capacity: usize,
        base: u64,
        width: usize,
        it: IterIface,
        dec: hdp_sim::SignalId,
        mem: SramPort,
    ) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            name: name.into(),
            capacity,
            base,
            width,
            it,
            dec,
            mem,
            fsm: StackFsm::Idle,
            sp: 0,
            pending_push: None,
            fetched: None,
            done_pulse: false,
        }
    }

    /// Number of stored elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sp as usize
    }

    /// True if no elements are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sp == 0
    }
}

impl Component for StackSram {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        let can_read = self.sp > 0 && self.fsm == StackFsm::Idle;
        let can_write = (self.sp as usize) < self.capacity
            && self.pending_push.is_none()
            && self.fsm == StackFsm::Idle;
        bus.drive_u64(self.it.can_read, u64::from(can_read))?;
        bus.drive_u64(self.it.can_write, u64::from(can_write))?;
        bus.drive_u64(self.it.done, u64::from(self.done_pulse))?;
        match self.fetched {
            Some(v) => bus.drive_u64(self.it.rdata, v)?,
            None => bus.drive(
                self.it.rdata,
                LogicVector::unknown(self.width).map_err(SimError::from)?,
            )?,
        }
        match self.fsm {
            StackFsm::Idle | StackFsm::Release => {
                bus.drive_u64(self.mem.req, 0)?;
                bus.drive_u64(self.mem.we, 0)?;
                bus.drive_u64(self.mem.addr, self.base)?;
                bus.drive_u64(self.mem.wdata, 0)?;
            }
            StackFsm::Pushing => {
                bus.drive_u64(self.mem.req, 1)?;
                bus.drive_u64(self.mem.we, 1)?;
                bus.drive_u64(self.mem.addr, self.base + self.sp)?;
                bus.drive_u64(
                    self.mem.wdata,
                    self.pending_push.expect("pushing implies pending"),
                )?;
            }
            StackFsm::Popping => {
                bus.drive_u64(self.mem.req, 1)?;
                bus.drive_u64(self.mem.we, 0)?;
                bus.drive_u64(self.mem.addr, self.base + self.sp - 1)?;
                bus.drive_u64(self.mem.wdata, 0)?;
            }
        }
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        self.done_pulse = false;
        let write = bus.read(self.it.write)?.to_u64() == Some(1);
        let inc = bus.read(self.it.inc)?.to_u64() == Some(1);
        let read = bus.read(self.it.read)?.to_u64() == Some(1);
        let dec = bus.read(self.dec)?.to_u64() == Some(1);
        let ack = bus.read(self.mem.ack)?.to_u64() == Some(1);
        match self.fsm {
            StackFsm::Idle => {
                if write && inc && (self.sp as usize) < self.capacity {
                    self.pending_push = Some(bus.read_u64(self.it.wdata, &self.name)?);
                    self.fsm = StackFsm::Pushing;
                } else if (read || dec) && self.sp > 0 {
                    self.fsm = StackFsm::Popping;
                }
            }
            StackFsm::Pushing => {
                if ack {
                    self.pending_push = None;
                    self.sp += 1;
                    self.done_pulse = true;
                    self.fsm = StackFsm::Release;
                }
            }
            StackFsm::Popping => {
                if ack {
                    self.fetched = Some(bus.read_u64(self.mem.rdata, &self.name)?);
                    if dec {
                        self.sp -= 1;
                    }
                    self.done_pulse = true;
                    self.fsm = StackFsm::Release;
                }
            }
            StackFsm::Release => {
                self.fsm = StackFsm::Idle;
            }
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.fsm = StackFsm::Idle;
        self.sp = 0;
        self.pending_push = None;
        self.fetched = None;
        self.done_pulse = false;
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        // eval drives purely from FSM/register state; strobes and the
        // memory handshake are sampled at the clock edge.
        Sensitivity::Signals(vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_sim::{SignalId, Simulator};

    struct Rig {
        sim: Simulator,
        it: IterIface,
        dec: SignalId,
    }

    fn lifo_rig(depth: usize) -> Rig {
        let mut sim = Simulator::new();
        let it = IterIface::alloc(&mut sim, "it", 8).unwrap();
        let dec = sim.add_signal("it_dec", 1).unwrap();
        sim.add_component(StackLifo::new("dut", depth, 8, it, dec));
        for s in [it.read, it.inc, it.write, dec] {
            sim.poke(s, 0).unwrap();
        }
        sim.poke(it.wdata, 0).unwrap();
        sim.reset().unwrap();
        Rig { sim, it, dec }
    }

    fn sram_rig(latency: u32) -> Rig {
        let mut sim = Simulator::new();
        let it = IterIface::alloc(&mut sim, "it", 8).unwrap();
        let dec = sim.add_signal("it_dec", 1).unwrap();
        let mem = SramPort::alloc(&mut sim, "mem", 16, 8).unwrap();
        sim.add_component(mem.device("u_sram", 16, 8, latency));
        sim.add_component(StackSram::new("dut", 32, 0, 8, it, dec, mem));
        for s in [it.read, it.inc, it.write, dec] {
            sim.poke(s, 0).unwrap();
        }
        sim.poke(it.wdata, 0).unwrap();
        sim.reset().unwrap();
        Rig { sim, it, dec }
    }

    /// Asserts strobes, waits for the settled pre-edge `done`, commits
    /// the edge, then releases — the way an engine FSM sequences ops.
    fn push_blocking(r: &mut Rig, v: u64) {
        r.sim.poke(r.it.write, 1).unwrap();
        r.sim.poke(r.it.inc, 1).unwrap();
        r.sim.poke(r.it.wdata, v).unwrap();
        for _ in 0..40 {
            r.sim.settle().unwrap();
            if r.sim.peek(r.it.done).unwrap().to_u64() == Some(1) {
                r.sim.step().unwrap(); // commit the push
                r.sim.poke(r.it.write, 0).unwrap();
                r.sim.poke(r.it.inc, 0).unwrap();
                r.sim.step().unwrap();
                return;
            }
            r.sim.step().unwrap();
        }
        panic!("push did not complete");
    }

    fn pop_blocking(r: &mut Rig) -> u64 {
        r.sim.poke(r.it.read, 1).unwrap();
        r.sim.poke(r.dec, 1).unwrap();
        for _ in 0..40 {
            r.sim.settle().unwrap();
            if r.sim.peek(r.it.done).unwrap().to_u64() == Some(1) {
                // Sample the element before the edge that commits the
                // pop (for the combinational LIFO core the top changes
                // right at the edge).
                let v = r.sim.peek(r.it.rdata).unwrap().to_u64().unwrap();
                r.sim.step().unwrap();
                r.sim.poke(r.it.read, 0).unwrap();
                r.sim.poke(r.dec, 0).unwrap();
                r.sim.step().unwrap();
                return v;
            }
            r.sim.step().unwrap();
        }
        panic!("pop did not complete");
    }

    #[test]
    fn lifo_stack_reverses_order() {
        let mut r = lifo_rig(8);
        for v in [1u64, 2, 3] {
            push_blocking(&mut r, v);
        }
        assert_eq!(pop_blocking(&mut r), 3);
        assert_eq!(pop_blocking(&mut r), 2);
        assert_eq!(pop_blocking(&mut r), 1);
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.it.can_read).unwrap().to_u64(), Some(0));
    }

    #[test]
    fn sram_stack_reverses_order() {
        let mut r = sram_rig(2);
        for v in [10u64, 20, 30] {
            push_blocking(&mut r, v);
        }
        assert_eq!(pop_blocking(&mut r), 30);
        assert_eq!(pop_blocking(&mut r), 20);
        assert_eq!(pop_blocking(&mut r), 10);
    }

    #[test]
    fn lifo_peek_does_not_pop() {
        let mut r = lifo_rig(8);
        push_blocking(&mut r, 77);
        r.sim.poke(r.it.read, 1).unwrap();
        r.sim.run(3).unwrap();
        r.sim.poke(r.it.read, 0).unwrap();
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.it.can_read).unwrap().to_u64(), Some(1));
        assert_eq!(pop_blocking(&mut r), 77);
    }

    #[test]
    fn lifo_pop_on_empty_is_error() {
        let mut r = lifo_rig(4);
        r.sim.poke(r.dec, 1).unwrap();
        assert!(matches!(
            r.sim.step().unwrap_err(),
            SimError::Protocol { .. }
        ));
    }

    #[test]
    fn lifo_simultaneous_push_pop_is_error() {
        let mut r = lifo_rig(4);
        push_blocking(&mut r, 1);
        r.sim.poke(r.it.write, 1).unwrap();
        r.sim.poke(r.it.inc, 1).unwrap();
        r.sim.poke(r.dec, 1).unwrap();
        assert!(matches!(
            r.sim.step().unwrap_err(),
            SimError::Protocol { .. }
        ));
    }

    #[test]
    fn sram_stack_peek_preserves_depth() {
        let mut r = sram_rig(1);
        push_blocking(&mut r, 5);
        push_blocking(&mut r, 6);
        // Peek: read without dec.
        r.sim.poke(r.it.read, 1).unwrap();
        let mut peeked = None;
        for _ in 0..20 {
            r.sim.step().unwrap();
            if r.sim.peek(r.it.done).unwrap().to_u64() == Some(1) {
                peeked = r.sim.peek(r.it.rdata).unwrap().to_u64();
                break;
            }
        }
        r.sim.poke(r.it.read, 0).unwrap();
        r.sim.step().unwrap();
        assert_eq!(peeked, Some(6));
        assert_eq!(pop_blocking(&mut r), 6);
        assert_eq!(pop_blocking(&mut r), 5);
    }
}
