//! Width adapters: the §3.3 pixel-format change in hardware.
//!
//! "For an 8-bit data bus, we should also modify the iterator code to
//! perform three consecutive container reads/writes to get/set the
//! whole pixel. In any case, all this scenarios can be considered by
//! the automatic code generator, thus requiring no designer
//! intervention." — the adapters here are that generated iterator
//! code: they sit between an algorithm expecting pixel-wide elements
//! and a container holding bus-wide words, converting each pixel
//! operation into `factor` consecutive container operations,
//! **most significant word first**.

use crate::iface::IterIface;
use hdp_hdl::LogicVector;
use hdp_sim::{BusAccess, Component, Sensitivity, SignalBus, SimError};

/// Read-side width adapter: presents a `wide`-bit forward input
/// iterator over a container with a `narrow`-bit one.
///
/// A wide `read` must come with `inc` (the narrow reads consume the
/// container; a non-consuming wide peek cannot exist) — `read`
/// without `inc` is a protocol error.
#[derive(Debug)]
pub struct ReadWidthAdapter {
    name: String,
    wide: usize,
    narrow: usize,
    factor: usize,
    /// Engine-facing wide interface.
    engine: IterIface,
    /// Container-facing narrow interface.
    container: IterIface,
    /// Words collected so far (MSB first).
    collected: usize,
    acc: u64,
    busy: bool,
    presented: Option<u64>,
    done_pulse: bool,
}

impl ReadWidthAdapter {
    /// Creates the adapter. `wide` must be a positive multiple of
    /// `narrow`.
    ///
    /// # Panics
    ///
    /// Panics if `narrow` is zero or does not divide `wide`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        wide: usize,
        narrow: usize,
        engine: IterIface,
        container: IterIface,
    ) -> Self {
        assert!(
            narrow > 0 && wide.is_multiple_of(narrow),
            "wide must be a multiple of narrow"
        );
        Self {
            name: name.into(),
            wide,
            narrow,
            factor: wide / narrow,
            engine,
            container,
            collected: 0,
            acc: 0,
            busy: false,
            presented: None,
            done_pulse: false,
        }
    }

    /// The number of narrow accesses per wide element.
    #[must_use]
    pub fn factor(&self) -> usize {
        self.factor
    }
}

impl Component for ReadWidthAdapter {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        // Engine-facing outputs.
        let container_can_read = bus.read(self.container.can_read)?.to_u64() == Some(1);
        bus.drive_u64(
            self.engine.can_read,
            u64::from(container_can_read || self.busy),
        )?;
        bus.drive_u64(self.engine.can_write, 0)?;
        bus.drive_u64(self.engine.done, u64::from(self.done_pulse))?;
        match self.presented {
            Some(v) => bus.drive_u64(self.engine.rdata, v)?,
            None => bus.drive(
                self.engine.rdata,
                LogicVector::unknown(self.wide).map_err(SimError::from)?,
            )?,
        }
        // Container-facing strobes: keep reading while busy.
        bus.drive_u64(self.container.read, u64::from(self.busy))?;
        bus.drive_u64(self.container.inc, u64::from(self.busy))?;
        bus.drive_u64(self.container.write, 0)?;
        bus.drive(
            self.container.wdata,
            LogicVector::unknown(self.narrow).map_err(SimError::from)?,
        )?;
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        // Strobes still asserted while our `done` pulse is visible
        // belong to the operation that just completed.
        let done_visible = self.done_pulse;
        self.done_pulse = false;
        let read = bus.read(self.engine.read)?.to_u64() == Some(1) && !done_visible;
        let inc = bus.read(self.engine.inc)?.to_u64() == Some(1) && !done_visible;
        if self.busy {
            if bus.read(self.container.done)?.to_u64() == Some(1) {
                let word = bus.read_u64(self.container.rdata, &self.name)?;
                self.acc = (self.acc << self.narrow) | word;
                self.collected += 1;
                if self.collected == self.factor {
                    self.presented = Some(self.acc);
                    self.done_pulse = true;
                    self.busy = false;
                }
            }
        } else if read || inc {
            if read && !inc {
                return Err(SimError::Protocol {
                    component: self.name.clone(),
                    message: "wide read without inc (narrow reads consume the container)".into(),
                });
            }
            self.acc = 0;
            self.collected = 0;
            self.busy = true;
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.collected = 0;
        self.acc = 0;
        self.busy = false;
        self.presented = None;
        self.done_pulse = false;
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        // eval combinationally folds the container's can_read into the
        // engine-facing can_read; everything else comes from state.
        Sensitivity::Signals(vec![self.container.can_read])
    }
}

/// Write-side width adapter: presents a `wide`-bit forward output
/// iterator over a container with a `narrow`-bit one, splitting each
/// wide `write`+`inc` into `factor` narrow writes, MSB first.
#[derive(Debug)]
pub struct WriteWidthAdapter {
    name: String,
    wide: usize,
    narrow: usize,
    factor: usize,
    engine: IterIface,
    container: IterIface,
    /// Remaining words to emit (MSB first), as (count_emitted, value).
    emitting: Option<(usize, u64)>,
    done_pulse: bool,
}

impl WriteWidthAdapter {
    /// Creates the adapter. `wide` must be a positive multiple of
    /// `narrow`.
    ///
    /// # Panics
    ///
    /// Panics if `narrow` is zero or does not divide `wide`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        wide: usize,
        narrow: usize,
        engine: IterIface,
        container: IterIface,
    ) -> Self {
        assert!(
            narrow > 0 && wide.is_multiple_of(narrow),
            "wide must be a multiple of narrow"
        );
        Self {
            name: name.into(),
            wide,
            narrow,
            factor: wide / narrow,
            engine,
            container,
            emitting: None,
            done_pulse: false,
        }
    }

    fn current_word(&self) -> Option<u64> {
        self.emitting.map(|(emitted, value)| {
            let index = self.factor - 1 - emitted; // MSB first
            (value >> (index * self.narrow)) & ((1 << self.narrow) - 1)
        })
    }
}

impl Component for WriteWidthAdapter {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        let container_can_write = bus.read(self.container.can_write)?.to_u64() == Some(1);
        bus.drive_u64(
            self.engine.can_write,
            u64::from(container_can_write && self.emitting.is_none()),
        )?;
        bus.drive_u64(self.engine.can_read, 0)?;
        bus.drive_u64(self.engine.done, u64::from(self.done_pulse))?;
        bus.drive(
            self.engine.rdata,
            LogicVector::unknown(self.wide).map_err(SimError::from)?,
        )?;
        let busy = self.emitting.is_some();
        bus.drive_u64(self.container.write, u64::from(busy))?;
        bus.drive_u64(self.container.inc, u64::from(busy))?;
        bus.drive_u64(self.container.read, 0)?;
        match self.current_word() {
            Some(w) => bus.drive_u64(self.container.wdata, w)?,
            None => bus.drive(
                self.container.wdata,
                LogicVector::unknown(self.narrow).map_err(SimError::from)?,
            )?,
        }
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        // Strobes still asserted while our `done` pulse is visible
        // belong to the operation that just completed.
        let done_visible = self.done_pulse;
        self.done_pulse = false;
        if let Some((emitted, value)) = self.emitting {
            if bus.read(self.container.done)?.to_u64() == Some(1) {
                let next = emitted + 1;
                if next == self.factor {
                    self.emitting = None;
                    self.done_pulse = true;
                } else {
                    self.emitting = Some((next, value));
                }
            }
        } else if !done_visible {
            let write = bus.read(self.engine.write)?.to_u64() == Some(1);
            let inc = bus.read(self.engine.inc)?.to_u64() == Some(1);
            if write && inc {
                let v = bus.read_u64(self.engine.wdata, &self.name)?;
                self.emitting = Some((0, v));
            } else if write {
                return Err(SimError::Protocol {
                    component: self.name.clone(),
                    message: "wide write without inc (narrow writes advance the container)".into(),
                });
            }
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.emitting = None;
        self.done_pulse = false;
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        // eval combinationally folds the container's can_write into
        // the engine-facing can_write; everything else is state.
        Sensitivity::Signals(vec![self.container.can_write])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::{ReadBufferFifo, WriteBufferFifo};
    use crate::iface::StreamIface;
    use crate::pixel::split_pixel;
    use hdp_sim::devices::VideoOut;
    use hdp_sim::Simulator;

    #[test]
    fn read_adapter_assembles_msb_first() {
        let mut sim = Simulator::new();
        let up = StreamIface::alloc(&mut sim, "up", 8).unwrap();
        let narrow = IterIface::alloc(&mut sim, "n", 8).unwrap();
        let wide = IterIface::alloc(&mut sim, "w", 24).unwrap();
        sim.add_component(ReadBufferFifo::new("rb", 16, 8, up, narrow));
        sim.add_component(ReadWidthAdapter::new("ad", 24, 8, wide, narrow));
        for s in [wide.read, wide.inc, wide.write, up.valid] {
            sim.poke(s, 0).unwrap();
        }
        sim.poke(up.data, 0).unwrap();
        sim.poke(wide.wdata, 0).unwrap();
        sim.reset().unwrap();
        // Push the three bytes of pixel 0xAABBCC, MSB first.
        for b in split_pixel(0xAABBCC, 8, 3) {
            sim.poke(up.valid, 1).unwrap();
            sim.poke(up.data, b).unwrap();
            sim.step().unwrap();
        }
        sim.poke(up.valid, 0).unwrap();
        // Issue one wide read+inc.
        sim.poke(wide.read, 1).unwrap();
        sim.poke(wide.inc, 1).unwrap();
        let mut result = None;
        for _ in 0..20 {
            sim.step().unwrap();
            if sim.peek(wide.done).unwrap().to_u64() == Some(1) {
                result = sim.peek(wide.rdata).unwrap().to_u64();
                break;
            }
        }
        assert_eq!(result, Some(0xAABBCC));
    }

    #[test]
    fn read_adapter_rejects_peek() {
        let mut sim = Simulator::new();
        let up = StreamIface::alloc(&mut sim, "up", 8).unwrap();
        let narrow = IterIface::alloc(&mut sim, "n", 8).unwrap();
        let wide = IterIface::alloc(&mut sim, "w", 24).unwrap();
        sim.add_component(ReadBufferFifo::new("rb", 16, 8, up, narrow));
        sim.add_component(ReadWidthAdapter::new("ad", 24, 8, wide, narrow));
        for s in [wide.read, wide.inc, wide.write, up.valid] {
            sim.poke(s, 0).unwrap();
        }
        sim.poke(up.data, 0).unwrap();
        sim.poke(wide.wdata, 0).unwrap();
        sim.reset().unwrap();
        sim.poke(wide.read, 1).unwrap(); // read without inc
        assert!(matches!(sim.step().unwrap_err(), SimError::Protocol { .. }));
    }

    #[test]
    fn write_adapter_splits_msb_first() {
        let mut sim = Simulator::new();
        let narrow = IterIface::alloc(&mut sim, "n", 8).unwrap();
        let wide = IterIface::alloc(&mut sim, "w", 24).unwrap();
        let down = StreamIface::alloc(&mut sim, "down", 8).unwrap();
        sim.add_component(WriteBufferFifo::new("wb", 16, narrow, down));
        sim.add_component(WriteWidthAdapter::new("ad", 24, 8, wide, narrow));
        let sink = sim.add_component(VideoOut::new("sink", 3, None, down.valid, down.data));
        for s in [wide.read, wide.inc, wide.write] {
            sim.poke(s, 0).unwrap();
        }
        sim.poke(wide.wdata, 0).unwrap();
        sim.reset().unwrap();
        sim.poke(wide.write, 1).unwrap();
        sim.poke(wide.inc, 1).unwrap();
        sim.poke(wide.wdata, 0x123456).unwrap();
        for _ in 0..20 {
            sim.step().unwrap();
            if sim.peek(wide.done).unwrap().to_u64() == Some(1) {
                sim.poke(wide.write, 0).unwrap();
                sim.poke(wide.inc, 0).unwrap();
                break;
            }
        }
        sim.run(6).unwrap();
        let frames = sim.component::<VideoOut>(sink).unwrap().frames();
        assert_eq!(frames, &[vec![0x12, 0x34, 0x56]]);
    }

    #[test]
    fn adapters_compose_round_trip() {
        // wide write -> narrow wbuffer; narrow stream re-pushed into a
        // narrow rbuffer -> wide read: value survives.
        let mut sim = Simulator::new();
        let n_w = IterIface::alloc(&mut sim, "nw", 8).unwrap();
        let w_w = IterIface::alloc(&mut sim, "ww", 24).unwrap();
        let link = StreamIface::alloc(&mut sim, "link", 8).unwrap();
        let n_r = IterIface::alloc(&mut sim, "nr", 8).unwrap();
        let w_r = IterIface::alloc(&mut sim, "wr", 24).unwrap();
        sim.add_component(WriteBufferFifo::new("wb", 16, n_w, link));
        sim.add_component(WriteWidthAdapter::new("wa", 24, 8, w_w, n_w));
        sim.add_component(ReadBufferFifo::new("rb", 16, 8, link, n_r));
        sim.add_component(ReadWidthAdapter::new("ra", 24, 8, w_r, n_r));
        for s in [w_w.read, w_w.inc, w_w.write, w_r.read, w_r.inc, w_r.write] {
            sim.poke(s, 0).unwrap();
        }
        sim.poke(w_w.wdata, 0).unwrap();
        sim.poke(w_r.wdata, 0).unwrap();
        sim.reset().unwrap();
        sim.poke(w_w.write, 1).unwrap();
        sim.poke(w_w.inc, 1).unwrap();
        sim.poke(w_w.wdata, 0xCAFE42).unwrap();
        for _ in 0..20 {
            sim.step().unwrap();
            if sim.peek(w_w.done).unwrap().to_u64() == Some(1) {
                sim.poke(w_w.write, 0).unwrap();
                sim.poke(w_w.inc, 0).unwrap();
                break;
            }
        }
        sim.run(8).unwrap(); // drain through the link stream
        sim.poke(w_r.read, 1).unwrap();
        sim.poke(w_r.inc, 1).unwrap();
        let mut result = None;
        for _ in 0..30 {
            sim.step().unwrap();
            if sim.peek(w_r.done).unwrap().to_u64() == Some(1) {
                result = sim.peek(w_r.rdata).unwrap().to_u64();
                break;
            }
        }
        assert_eq!(result, Some(0xCAFE42));
    }
}
