//! Shared-memory arbitration.
//!
//! "Metaprogramming ... allows automatic generation of arbitration
//! logic for shared physical resources (e.g. RAM)" (§3.4). When two
//! containers are mapped onto the *same* external SRAM, the generator
//! interposes this arbiter: N master handshake ports multiplexed onto
//! one memory port, granting whole transactions atomically.

use crate::iface::SramPort;
use hdp_hdl::LogicVector;
use hdp_sim::{BusAccess, Component, Sensitivity, SignalBus, SimError};

/// Grant selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterPolicy {
    /// Lowest master index wins. Cheap, but can starve high indices.
    FixedPriority,
    /// Rotating priority starting after the last grantee: every
    /// requester is served within `N` grants (bounded fairness).
    RoundRobin,
}

/// Multiplexes several SRAM master ports onto one downstream port.
///
/// A grant is held for the whole four-phase transaction (request →
/// ack → release) and the next grant decision happens one cycle after
/// release, exactly like the generated priority-encoder logic.
#[derive(Debug)]
pub struct SramArbiter {
    name: String,
    policy: ArbiterPolicy,
    masters: Vec<SramPort>,
    down: SramPort,
    granted: Option<usize>,
    last: usize,
    grants: Vec<u64>,
}

impl SramArbiter {
    /// Creates an arbiter for the given master ports.
    ///
    /// # Panics
    ///
    /// Panics if `masters` is empty.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        policy: ArbiterPolicy,
        masters: Vec<SramPort>,
        down: SramPort,
    ) -> Self {
        assert!(!masters.is_empty(), "arbiter needs at least one master");
        let n = masters.len();
        Self {
            name: name.into(),
            policy,
            masters,
            down,
            granted: None,
            last: n - 1,
            grants: vec![0; n],
        }
    }

    /// Per-master grant counts since reset (fairness accounting).
    #[must_use]
    pub fn grants(&self) -> &[u64] {
        &self.grants
    }

    /// The currently granted master, if any.
    #[must_use]
    pub fn granted(&self) -> Option<usize> {
        self.granted
    }
}

impl Component for SramArbiter {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        let addr_width = bus.width(self.down.addr)?;
        let data_width = bus.width(self.down.wdata)?;
        match self.granted {
            Some(g) => {
                let m = self.masters[g];
                // Forward the granted master's command downstream.
                for (src, dst) in [(m.req, self.down.req), (m.we, self.down.we)] {
                    let v = bus.read(src)?;
                    bus.drive(dst, v)?;
                }
                let addr = bus.read(m.addr)?;
                bus.drive(self.down.addr, addr)?;
                let wdata = bus.read(m.wdata)?;
                bus.drive(self.down.wdata, wdata)?;
                // Forward the response to the granted master only.
                let ack = bus.read(self.down.ack)?;
                let rdata = bus.read(self.down.rdata)?;
                for (i, other) in self.masters.iter().enumerate() {
                    if i == g {
                        bus.drive(other.ack, ack)?;
                        bus.drive(other.rdata, rdata)?;
                    } else {
                        bus.drive_u64(other.ack, 0)?;
                        bus.drive(
                            other.rdata,
                            LogicVector::unknown(data_width).map_err(SimError::from)?,
                        )?;
                    }
                }
            }
            None => {
                bus.drive_u64(self.down.req, 0)?;
                bus.drive_u64(self.down.we, 0)?;
                bus.drive(
                    self.down.addr,
                    LogicVector::zeros(addr_width).map_err(SimError::from)?,
                )?;
                bus.drive(
                    self.down.wdata,
                    LogicVector::zeros(data_width).map_err(SimError::from)?,
                )?;
                for m in &self.masters {
                    bus.drive_u64(m.ack, 0)?;
                    bus.drive(
                        m.rdata,
                        LogicVector::unknown(data_width).map_err(SimError::from)?,
                    )?;
                }
            }
        }
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        match self.granted {
            Some(g) => {
                // Release when the master finishes its transaction.
                if bus.read(self.masters[g].req)?.to_u64() != Some(1) {
                    self.granted = None;
                }
            }
            None => {
                let n = self.masters.len();
                let order: Vec<usize> = match self.policy {
                    ArbiterPolicy::FixedPriority => (0..n).collect(),
                    ArbiterPolicy::RoundRobin => (1..=n).map(|o| (self.last + o) % n).collect(),
                };
                for i in order {
                    if bus.read(self.masters[i].req)?.to_u64() == Some(1) {
                        self.granted = Some(i);
                        self.last = i;
                        self.grants[i] += 1;
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.granted = None;
        self.last = self.masters.len() - 1;
        self.grants.fill(0);
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        // A combinational crossbar: forwards the granted master's
        // command downstream and the memory's response back up, so it
        // must re-run when any of those change.
        let mut signals = Vec::new();
        for m in &self.masters {
            signals.extend([m.req, m.we, m.addr, m.wdata]);
        }
        signals.extend([self.down.ack, self.down.rdata]);
        Sensitivity::Signals(signals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_sim::Simulator;

    struct Rig {
        sim: Simulator,
        m: Vec<SramPort>,
        arb: hdp_sim::ComponentId,
    }

    fn rig(n: usize, policy: ArbiterPolicy, latency: u32) -> Rig {
        let mut sim = Simulator::new();
        let mut masters = Vec::new();
        for i in 0..n {
            let p = SramPort::alloc(&mut sim, &format!("m{i}"), 16, 8).unwrap();
            for s in [p.req, p.we, p.addr, p.wdata] {
                sim.poke(s, 0).unwrap();
            }
            masters.push(p);
        }
        let down = SramPort::alloc(&mut sim, "down", 16, 8).unwrap();
        sim.add_component(down.device("u_sram", 16, 8, latency));
        let arb = sim.add_component(SramArbiter::new("arb", policy, masters.clone(), down));
        sim.reset().unwrap();
        Rig {
            sim,
            m: masters,
            arb,
        }
    }

    /// Runs a full write transaction on master `i`.
    fn write(r: &mut Rig, i: usize, addr: u64, value: u64) {
        r.sim.poke(r.m[i].req, 1).unwrap();
        r.sim.poke(r.m[i].we, 1).unwrap();
        r.sim.poke(r.m[i].addr, addr).unwrap();
        r.sim.poke(r.m[i].wdata, value).unwrap();
        for _ in 0..40 {
            r.sim.step().unwrap();
            if r.sim.peek(r.m[i].ack).unwrap().to_u64() == Some(1) {
                r.sim.poke(r.m[i].req, 0).unwrap();
                r.sim.poke(r.m[i].we, 0).unwrap();
                r.sim.step().unwrap();
                return;
            }
        }
        panic!("transaction on master {i} never acked");
    }

    fn read(r: &mut Rig, i: usize, addr: u64) -> u64 {
        r.sim.poke(r.m[i].req, 1).unwrap();
        r.sim.poke(r.m[i].we, 0).unwrap();
        r.sim.poke(r.m[i].addr, addr).unwrap();
        for _ in 0..40 {
            r.sim.step().unwrap();
            if r.sim.peek(r.m[i].ack).unwrap().to_u64() == Some(1) {
                let v = r.sim.peek(r.m[i].rdata).unwrap().to_u64().unwrap();
                r.sim.poke(r.m[i].req, 0).unwrap();
                r.sim.step().unwrap();
                return v;
            }
        }
        panic!("read on master {i} never acked");
    }

    #[test]
    fn sequential_masters_share_the_memory() {
        let mut r = rig(2, ArbiterPolicy::FixedPriority, 2);
        write(&mut r, 0, 10, 0xAA);
        write(&mut r, 1, 20, 0xBB);
        assert_eq!(read(&mut r, 1, 10), 0xAA);
        assert_eq!(read(&mut r, 0, 20), 0xBB);
    }

    #[test]
    fn fixed_priority_prefers_low_index() {
        let mut r = rig(2, ArbiterPolicy::FixedPriority, 1);
        // Both request simultaneously.
        for i in 0..2 {
            r.sim.poke(r.m[i].req, 1).unwrap();
            r.sim.poke(r.m[i].we, 1).unwrap();
            r.sim.poke(r.m[i].addr, i as u64).unwrap();
            r.sim.poke(r.m[i].wdata, i as u64).unwrap();
        }
        r.sim.step().unwrap(); // arbitration decision
        let arb = r.sim.component::<SramArbiter>(r.arb).unwrap();
        assert_eq!(arb.granted(), Some(0));
    }

    #[test]
    fn round_robin_alternates_under_contention() {
        let mut r = rig(2, ArbiterPolicy::RoundRobin, 1);
        // Keep both masters requesting; complete several transactions
        // and track who gets served.
        let mut served = Vec::new();
        for i in 0..2 {
            r.sim.poke(r.m[i].req, 1).unwrap();
            r.sim.poke(r.m[i].we, 1).unwrap();
            r.sim.poke(r.m[i].addr, i as u64).unwrap();
            r.sim.poke(r.m[i].wdata, 0).unwrap();
        }
        for _ in 0..60 {
            r.sim.step().unwrap();
            for i in 0..2 {
                if r.sim.peek(r.m[i].ack).unwrap().to_u64() == Some(1) {
                    served.push(i);
                    // Finish this master's transaction, then request again.
                    r.sim.poke(r.m[i].req, 0).unwrap();
                    r.sim.step().unwrap();
                    r.sim.poke(r.m[i].req, 1).unwrap();
                }
            }
            if served.len() >= 6 {
                break;
            }
        }
        assert!(served.len() >= 6, "expected several grants, got {served:?}");
        // Strict alternation under continuous contention.
        for pair in served.windows(2) {
            assert_ne!(pair[0], pair[1], "round robin must alternate: {served:?}");
        }
    }

    #[test]
    fn no_double_grant() {
        let mut r = rig(3, ArbiterPolicy::RoundRobin, 3);
        for i in 0..3 {
            r.sim.poke(r.m[i].req, 1).unwrap();
            r.sim.poke(r.m[i].we, 1).unwrap();
            r.sim.poke(r.m[i].addr, i as u64).unwrap();
            r.sim.poke(r.m[i].wdata, 0).unwrap();
        }
        for _ in 0..30 {
            r.sim.step().unwrap();
            let acks: usize = (0..3)
                .filter(|&i| r.sim.peek(r.m[i].ack).unwrap().to_u64() == Some(1))
                .count();
            assert!(acks <= 1, "two masters acked in the same cycle");
            for i in 0..3 {
                if r.sim.peek(r.m[i].ack).unwrap().to_u64() == Some(1) {
                    r.sim.poke(r.m[i].req, 0).unwrap();
                }
            }
        }
    }

    #[test]
    fn grant_counters_account_everyone() {
        let mut r = rig(2, ArbiterPolicy::RoundRobin, 1);
        write(&mut r, 0, 0, 1);
        write(&mut r, 1, 1, 2);
        write(&mut r, 0, 2, 3);
        let arb = r.sim.component::<SramArbiter>(r.arb).unwrap();
        assert_eq!(arb.grants(), &[2, 1]);
    }
}
