//! The `wbuffer` container with its forward output iterator, over
//! each physical target.

use crate::iface::{IterIface, SramPort, StreamIface};
use hdp_hdl::LogicVector;
use hdp_sim::{BusAccess, Component, Sensitivity, SignalBus, SimError};
use std::collections::VecDeque;

/// Write buffer over an on-chip FIFO core.
///
/// Upstream it exposes the forward-output-iterator interface: a
/// `write`+`inc` pair appends the element ("put and advance"); a
/// `write` without `inc` stages the value at the current position,
/// committed by a later `inc` — the exact Table 2 split of `write`
/// and `inc`. Downstream it drains itself one element per cycle onto
/// a valid/data stream (the VGA side of Figure 3).
#[derive(Debug)]
pub struct WriteBufferFifo {
    name: String,
    depth: usize,
    it: IterIface,
    down: StreamIface,
    data: VecDeque<u64>,
    staged: Option<u64>,
}

impl WriteBufferFifo {
    /// Creates the container with `depth` elements.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, depth: usize, it: IterIface, down: StreamIface) -> Self {
        assert!(depth > 0, "depth must be positive");
        Self {
            name: name.into(),
            depth,
            it,
            down,
            data: VecDeque::new(),
            staged: None,
        }
    }

    /// Number of buffered (committed) elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no elements are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Component for WriteBufferFifo {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        let can_write = self.data.len() < self.depth;
        bus.drive_u64(self.it.can_write, u64::from(can_write))?;
        bus.drive_u64(self.it.can_read, 0)?; // output iterator only
        let write = bus.read(self.it.write)?.to_u64() == Some(1);
        let inc = bus.read(self.it.inc)?.to_u64() == Some(1);
        bus.drive_u64(self.it.done, u64::from((write || inc) && can_write))?;
        bus.drive(
            self.it.rdata,
            LogicVector::unknown(bus.width(self.it.rdata)?).map_err(SimError::from)?,
        )?;
        // Drain side: present the head; it pops every cycle.
        match self.data.front() {
            Some(&head) => {
                bus.drive_u64(self.down.valid, 1)?;
                bus.drive_u64(self.down.data, head)?;
            }
            None => {
                bus.drive_u64(self.down.valid, 0)?;
                bus.drive(
                    self.down.data,
                    LogicVector::unknown(bus.width(self.down.data)?).map_err(SimError::from)?,
                )?;
            }
        }
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        // Sample flow control with the same (pre-drain) occupancy that
        // eval used, so `done` and the actual commit agree.
        let can_write = self.data.len() < self.depth;
        // Drain: the element presented this cycle is consumed.
        if !self.data.is_empty() {
            self.data.pop_front();
        }
        let write = bus.read(self.it.write)?.to_u64() == Some(1);
        let inc = bus.read(self.it.inc)?.to_u64() == Some(1);
        if write && can_write {
            let v = bus.read_u64(self.it.wdata, &self.name)?;
            if inc {
                self.data.push_back(v);
            } else {
                self.staged = Some(v);
            }
        } else if inc && can_write {
            if let Some(v) = self.staged.take() {
                self.data.push_back(v);
            }
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.data.clear();
        self.staged = None;
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        // eval combinationally folds the write/inc strobes into `done`;
        // everything else comes from buffered state.
        Sensitivity::Signals(vec![self.it.write, self.it.inc])
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WbFsm {
    Idle,
    /// Committing an iterator write to memory.
    Writing,
    /// Fetching the head element for the drain stream.
    Draining,
    /// Waiting for `ack` to drop.
    Release,
}

/// Write buffer over external static RAM.
///
/// The same circular-buffer FSM as
/// [`crate::hw::ReadBufferSram`], with the roles mirrored: iterator
/// `write`+`inc` operations append through SRAM write transactions,
/// and the drain side fetches committed elements one read transaction
/// at a time, emitting them on the downstream valid/data stream.
/// Iterator writes have priority over draining.
#[derive(Debug)]
pub struct WriteBufferSram {
    name: String,
    capacity: usize,
    base: u64,
    it: IterIface,
    down: StreamIface,
    mem: SramPort,
    fsm: WbFsm,
    head: u64,
    tail: u64,
    count: usize,
    /// Pending iterator write (captured wdata).
    pending: Option<u64>,
    done_pulse: bool,
    /// Drained element to present downstream for one cycle.
    drained: Option<u64>,
}

impl WriteBufferSram {
    /// Creates the container over the SRAM master port `mem`, using
    /// `capacity` words starting at address `base`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        capacity: usize,
        base: u64,
        it: IterIface,
        down: StreamIface,
        mem: SramPort,
    ) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            name: name.into(),
            capacity,
            base,
            it,
            down,
            mem,
            fsm: WbFsm::Idle,
            head: 0,
            tail: 0,
            count: 0,
            pending: None,
            done_pulse: false,
            drained: None,
        }
    }

    /// Committed elements in memory.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if no committed elements exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn addr(&self, index: u64) -> u64 {
        self.base + index % self.capacity as u64
    }
}

impl Component for WriteBufferSram {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        // can_write: room in the buffer and no write already pending.
        let can_write = self.count < self.capacity && self.pending.is_none();
        bus.drive_u64(self.it.can_write, u64::from(can_write))?;
        bus.drive_u64(self.it.can_read, 0)?;
        bus.drive_u64(self.it.done, u64::from(self.done_pulse))?;
        bus.drive(
            self.it.rdata,
            LogicVector::unknown(bus.width(self.it.rdata)?).map_err(SimError::from)?,
        )?;
        match self.drained {
            Some(v) => {
                bus.drive_u64(self.down.valid, 1)?;
                bus.drive_u64(self.down.data, v)?;
            }
            None => {
                bus.drive_u64(self.down.valid, 0)?;
                bus.drive(
                    self.down.data,
                    LogicVector::unknown(bus.width(self.down.data)?).map_err(SimError::from)?,
                )?;
            }
        }
        match self.fsm {
            WbFsm::Idle | WbFsm::Release => {
                bus.drive_u64(self.mem.req, 0)?;
                bus.drive_u64(self.mem.we, 0)?;
                bus.drive_u64(self.mem.addr, self.addr(self.head))?;
                bus.drive_u64(self.mem.wdata, 0)?;
            }
            WbFsm::Writing => {
                bus.drive_u64(self.mem.req, 1)?;
                bus.drive_u64(self.mem.we, 1)?;
                bus.drive_u64(self.mem.addr, self.addr(self.tail))?;
                bus.drive_u64(
                    self.mem.wdata,
                    self.pending.expect("writing implies pending data"),
                )?;
            }
            WbFsm::Draining => {
                bus.drive_u64(self.mem.req, 1)?;
                bus.drive_u64(self.mem.we, 0)?;
                bus.drive_u64(self.mem.addr, self.addr(self.head))?;
                bus.drive_u64(self.mem.wdata, 0)?;
            }
        }
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        // While our `done` pulse is visible, the engine's strobes are
        // still asserted for the operation that just finished — do not
        // capture them as a new operation.
        let done_visible = self.done_pulse;
        self.done_pulse = false;
        self.drained = None;
        // Capture an iterator write ("write && inc" = put and advance).
        let write = bus.read(self.it.write)?.to_u64() == Some(1);
        let inc = bus.read(self.it.inc)?.to_u64() == Some(1);
        if write && inc && !done_visible && self.pending.is_none() && self.count < self.capacity {
            self.pending = Some(bus.read_u64(self.it.wdata, &self.name)?);
        }
        let ack = bus.read(self.mem.ack)?.to_u64() == Some(1);
        match self.fsm {
            WbFsm::Idle => {
                if self.pending.is_some() {
                    self.fsm = WbFsm::Writing;
                } else if self.count > 0 {
                    self.fsm = WbFsm::Draining;
                }
            }
            WbFsm::Writing => {
                if ack {
                    self.pending = None;
                    self.tail = self.tail.wrapping_add(1);
                    self.count += 1;
                    self.done_pulse = true;
                    self.fsm = WbFsm::Release;
                }
            }
            WbFsm::Draining => {
                if ack {
                    self.drained = Some(bus.read_u64(self.mem.rdata, &self.name)?);
                    self.head = self.head.wrapping_add(1);
                    self.count -= 1;
                    self.fsm = WbFsm::Release;
                }
            }
            WbFsm::Release => {
                self.fsm = WbFsm::Idle;
            }
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.fsm = WbFsm::Idle;
        self.head = 0;
        self.tail = 0;
        self.count = 0;
        self.pending = None;
        self.done_pulse = false;
        self.drained = None;
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        // eval drives purely from FSM/register state; strobes and the
        // memory handshake are sampled at the clock edge.
        Sensitivity::Signals(vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_sim::devices::VideoOut;
    use hdp_sim::Simulator;

    struct FifoRig {
        sim: Simulator,
        it: IterIface,
        down: StreamIface,
    }

    fn fifo_rig(depth: usize) -> FifoRig {
        let mut sim = Simulator::new();
        let it = IterIface::alloc(&mut sim, "it", 8).unwrap();
        let down = StreamIface::alloc(&mut sim, "down", 8).unwrap();
        sim.add_component(WriteBufferFifo::new("dut", depth, it, down));
        for s in [it.read, it.inc, it.write] {
            sim.poke(s, 0).unwrap();
        }
        sim.poke(it.wdata, 0).unwrap();
        sim.reset().unwrap();
        FifoRig { sim, it, down }
    }

    #[test]
    fn write_inc_flows_to_drain_stream() {
        let mut sim = Simulator::new();
        let it = IterIface::alloc(&mut sim, "it", 8).unwrap();
        let down = StreamIface::alloc(&mut sim, "down", 8).unwrap();
        sim.add_component(WriteBufferFifo::new("dut", 8, it, down));
        let sink = sim.add_component(VideoOut::new("sink", 3, None, down.valid, down.data));
        for s in [it.read, it.inc, it.write] {
            sim.poke(s, 0).unwrap();
        }
        sim.poke(it.wdata, 0).unwrap();
        sim.reset().unwrap();
        sim.poke(it.write, 1).unwrap();
        sim.poke(it.inc, 1).unwrap();
        for v in [7u64, 8, 9] {
            sim.poke(it.wdata, v).unwrap();
            sim.step().unwrap();
        }
        sim.poke(it.write, 0).unwrap();
        sim.poke(it.inc, 0).unwrap();
        sim.run(4).unwrap();
        let frames = sim.component::<VideoOut>(sink).unwrap().frames();
        assert_eq!(frames, &[vec![7, 8, 9]]);
    }

    #[test]
    fn staged_write_commits_on_inc() {
        let mut r = fifo_rig(8);
        r.sim.poke(r.it.write, 1).unwrap();
        r.sim.poke(r.it.wdata, 55).unwrap();
        r.sim.step().unwrap(); // stage 55
        r.sim.poke(r.it.write, 0).unwrap();
        r.sim.step().unwrap(); // nothing committed yet
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.down.valid).unwrap().to_u64(), Some(0));
        r.sim.poke(r.it.inc, 1).unwrap();
        r.sim.step().unwrap(); // commit
        r.sim.poke(r.it.inc, 0).unwrap();
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.down.valid).unwrap().to_u64(), Some(1));
        assert_eq!(r.sim.peek(r.down.data).unwrap().to_u64(), Some(55));
    }

    #[test]
    fn cannot_read_through_output_iterator() {
        let r = fifo_rig(4);
        assert_eq!(r.sim.peek(r.it.can_read).unwrap().to_u64(), Some(0));
    }

    struct SramRig {
        sim: Simulator,
        it: IterIface,
        sink: hdp_sim::ComponentId,
    }

    fn sram_rig(latency: u32) -> SramRig {
        let mut sim = Simulator::new();
        let it = IterIface::alloc(&mut sim, "it", 8).unwrap();
        let down = StreamIface::alloc(&mut sim, "down", 8).unwrap();
        let mem = SramPort::alloc(&mut sim, "mem", 16, 8).unwrap();
        sim.add_component(mem.device("u_sram", 16, 8, latency));
        sim.add_component(WriteBufferSram::new("dut", 64, 0, it, down, mem));
        let sink = sim.add_component(VideoOut::new("sink", 3, None, down.valid, down.data));
        for s in [it.read, it.inc, it.write] {
            sim.poke(s, 0).unwrap();
        }
        sim.poke(it.wdata, 0).unwrap();
        sim.reset().unwrap();
        SramRig { sim, it, sink }
    }

    #[test]
    fn sram_write_buffer_round_trip() {
        let mut r = sram_rig(2);
        r.sim.poke(r.it.write, 1).unwrap();
        r.sim.poke(r.it.inc, 1).unwrap();
        let mut written = 0;
        let values = [3u64, 4, 5];
        r.sim.poke(r.it.wdata, values[0]).unwrap();
        for _ in 0..200 {
            r.sim.step().unwrap();
            if r.sim.peek(r.it.done).unwrap().to_u64() == Some(1) {
                written += 1;
                if written == values.len() {
                    r.sim.poke(r.it.write, 0).unwrap();
                    r.sim.poke(r.it.inc, 0).unwrap();
                    break;
                }
                r.sim.poke(r.it.wdata, values[written]).unwrap();
            }
        }
        assert_eq!(written, 3, "all three writes must complete");
        r.sim.run(40).unwrap(); // allow draining
        let frames = r.sim.component::<VideoOut>(r.sink).unwrap().frames();
        assert_eq!(frames, &[vec![3, 4, 5]]);
    }

    #[test]
    fn can_write_deasserts_while_transaction_pending() {
        let mut r = sram_rig(8);
        r.sim.poke(r.it.write, 1).unwrap();
        r.sim.poke(r.it.inc, 1).unwrap();
        r.sim.poke(r.it.wdata, 1).unwrap();
        r.sim.step().unwrap(); // capture pending
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.it.can_write).unwrap().to_u64(), Some(0));
    }
}
