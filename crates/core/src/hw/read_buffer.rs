//! The `rbuffer` container with its forward input iterator, over each
//! physical target.

use crate::iface::{ColumnIface, IterIface, SramPort, StreamIface};
use hdp_hdl::LogicVector;
use hdp_sim::{BusAccess, Component, Sensitivity, SignalBus, SimError};
use std::collections::VecDeque;

/// Read buffer over an on-chip FIFO core — the Figure 4 component.
///
/// Upstream, a valid/data pixel stream pushes elements (the video
/// decoder "pushes pixels whether or not the design is ready", so a
/// push into a full buffer is an input overrun protocol error).
/// Downstream it exposes the forward-input-iterator interface:
/// `can_read` is the negated `empty` of the core, `rdata` shows the
/// head element, `read`/`inc` complete in the same cycle. The iterator
/// wrapper adds no logic at all, which is the paper's "negligible
/// overhead" claim in miniature.
#[derive(Debug)]
pub struct ReadBufferFifo {
    name: String,
    depth: usize,
    width: usize,
    up: StreamIface,
    it: IterIface,
    data: VecDeque<u64>,
}

impl ReadBufferFifo {
    /// Creates the container with `depth` elements of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        depth: usize,
        width: usize,
        up: StreamIface,
        it: IterIface,
    ) -> Self {
        assert!(depth > 0, "depth must be positive");
        Self {
            name: name.into(),
            depth,
            width,
            up,
            it,
            data: VecDeque::new(),
        }
    }

    /// Number of buffered elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no elements are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Component for ReadBufferFifo {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        let can_read = !self.data.is_empty();
        bus.drive_u64(self.it.can_read, u64::from(can_read))?;
        bus.drive_u64(self.it.can_write, 0)?; // input iterator only
        match self.data.front() {
            Some(&head) => bus.drive_u64(self.it.rdata, head)?,
            None => bus.drive(
                self.it.rdata,
                LogicVector::unknown(self.width).map_err(SimError::from)?,
            )?,
        }
        let read = bus.read(self.it.read)?.to_u64() == Some(1);
        let inc = bus.read(self.it.inc)?.to_u64() == Some(1);
        bus.drive_u64(self.it.done, u64::from((read || inc) && can_read))?;
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        let inc = bus.read(self.it.inc)?.to_u64() == Some(1);
        if inc && !self.data.is_empty() {
            self.data.pop_front();
        }
        let push = bus.read(self.up.valid)?.to_u64() == Some(1);
        if push {
            if self.data.len() >= self.depth {
                return Err(SimError::Protocol {
                    component: self.name.clone(),
                    message: "input overrun: stream pushed into a full read buffer".into(),
                });
            }
            let v = bus.read_u64(self.up.data, &self.name)?;
            self.data.push_back(v);
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.data.clear();
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        // eval combinationally folds the read/inc strobes into `done`;
        // everything else comes from buffered state.
        Sensitivity::Signals(vec![self.it.read, self.it.inc])
    }
}

/// The four-phase handshake progress of an SRAM-backed container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SramFsm {
    Idle,
    /// A write transaction (committing a pushed element) is in flight.
    Writing,
    /// A read transaction (fetching the head element) is in flight.
    Reading,
    /// Waiting one cycle for the controller to drop `ack`.
    Release,
}

/// Read buffer over external static RAM — the Figure 5 component.
///
/// A circular buffer of `capacity` words starting at `base` in the
/// external memory, managed by "a little finite state machine that
/// controls memory access, as well as a few registers to store the
/// begin and end pointers of the queue" (§3.4). Upstream pushes land
/// in a small skid queue and drain to memory one transaction at a
/// time; iterator reads fetch the head element. Pushes have priority
/// — the video stream cannot wait, the algorithm can.
#[derive(Debug)]
pub struct ReadBufferSram {
    name: String,
    capacity: usize,
    base: u64,
    width: usize,
    skid_depth: usize,
    up: StreamIface,
    it: IterIface,
    mem: SramPort,
    fsm: SramFsm,
    head: u64,
    tail: u64,
    count: usize,
    skid: VecDeque<u64>,
    /// Fetched element presented on `rdata`.
    fetched: Option<u64>,
    /// `done` pulses this cycle.
    done_pulse: bool,
    /// The in-flight read should also advance the head (inc held).
    reading_advances: bool,
}

impl ReadBufferSram {
    /// Default skid-queue depth (absorbs pushes during a transaction).
    pub const DEFAULT_SKID: usize = 4;

    /// Creates the container over the SRAM master port `mem`, using
    /// `capacity` words starting at address `base`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        capacity: usize,
        base: u64,
        width: usize,
        up: StreamIface,
        it: IterIface,
        mem: SramPort,
    ) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            name: name.into(),
            capacity,
            base,
            width,
            skid_depth: Self::DEFAULT_SKID,
            up,
            it,
            mem,
            fsm: SramFsm::Idle,
            head: 0,
            tail: 0,
            count: 0,
            skid: VecDeque::new(),
            fetched: None,
            done_pulse: false,
            reading_advances: false,
        }
    }

    /// Committed elements in memory (excluding the skid queue).
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if no committed elements exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn addr(&self, index: u64) -> u64 {
        self.base + index % self.capacity as u64
    }
}

impl Component for ReadBufferSram {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        bus.drive_u64(self.it.can_read, u64::from(self.count > 0))?;
        bus.drive_u64(self.it.can_write, 0)?;
        bus.drive_u64(self.it.done, u64::from(self.done_pulse))?;
        match self.fetched {
            Some(v) => bus.drive_u64(self.it.rdata, v)?,
            None => bus.drive(
                self.it.rdata,
                LogicVector::unknown(self.width).map_err(SimError::from)?,
            )?,
        }
        // Drive the memory port from the FSM state.
        match self.fsm {
            SramFsm::Idle | SramFsm::Release => {
                bus.drive_u64(self.mem.req, 0)?;
                bus.drive_u64(self.mem.we, 0)?;
                bus.drive_u64(self.mem.addr, self.addr(self.head))?;
                bus.drive_u64(self.mem.wdata, 0)?;
            }
            SramFsm::Writing => {
                bus.drive_u64(self.mem.req, 1)?;
                bus.drive_u64(self.mem.we, 1)?;
                bus.drive_u64(self.mem.addr, self.addr(self.tail))?;
                bus.drive_u64(
                    self.mem.wdata,
                    *self.skid.front().expect("writing implies skid data"),
                )?;
            }
            SramFsm::Reading => {
                bus.drive_u64(self.mem.req, 1)?;
                bus.drive_u64(self.mem.we, 0)?;
                bus.drive_u64(self.mem.addr, self.addr(self.head))?;
                bus.drive_u64(self.mem.wdata, 0)?;
            }
        }
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        self.done_pulse = false;
        // Absorb upstream pushes into the skid queue.
        if bus.read(self.up.valid)?.to_u64() == Some(1) {
            if self.skid.len() >= self.skid_depth {
                return Err(SimError::Protocol {
                    component: self.name.clone(),
                    message: "input overrun: skid queue full (video faster than memory)".into(),
                });
            }
            self.skid.push_back(bus.read_u64(self.up.data, &self.name)?);
        }
        let ack = bus.read(self.mem.ack)?.to_u64() == Some(1);
        let read_op = bus.read(self.it.read)?.to_u64() == Some(1);
        let inc_op = bus.read(self.it.inc)?.to_u64() == Some(1);
        match self.fsm {
            SramFsm::Idle => {
                if !self.skid.is_empty() {
                    if self.count >= self.capacity {
                        return Err(SimError::Protocol {
                            component: self.name.clone(),
                            message: "buffer overflow: circular buffer full".into(),
                        });
                    }
                    self.fsm = SramFsm::Writing;
                } else if (read_op || inc_op) && self.count > 0 {
                    self.reading_advances = inc_op;
                    self.fsm = SramFsm::Reading;
                }
            }
            SramFsm::Writing => {
                if ack {
                    self.skid.pop_front();
                    self.tail = self.tail.wrapping_add(1);
                    self.count += 1;
                    self.fsm = SramFsm::Release;
                }
            }
            SramFsm::Reading => {
                if ack {
                    let v = bus.read_u64(self.mem.rdata, &self.name)?;
                    self.fetched = Some(v);
                    self.done_pulse = true;
                    if self.reading_advances {
                        self.head = self.head.wrapping_add(1);
                        self.count -= 1;
                    }
                    self.fsm = SramFsm::Release;
                }
            }
            SramFsm::Release => {
                self.fsm = SramFsm::Idle;
            }
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.fsm = SramFsm::Idle;
        self.head = 0;
        self.tail = 0;
        self.count = 0;
        self.skid.clear();
        self.fetched = None;
        self.done_pulse = false;
        self.reading_advances = false;
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        // eval drives purely from FSM/register state; the handshake and
        // iterator strobes are sampled at the clock edge.
        Sensitivity::Signals(vec![])
    }
}

/// Read buffer over the 3-line buffer, exposing the specialised
/// *column iterator* of the blur example: every access yields three
/// vertically adjacent pixels (§4).
///
/// The window logic is identical to
/// [`hdp_sim::devices::LineBuffer3`]; this type owns it and presents
/// the [`ColumnIface`] iterator on top, so the blur algorithm never
/// sees line-buffer pins.
#[derive(Debug)]
pub struct ColumnBuffer {
    name: String,
    line_width: usize,
    data_width: usize,
    up: StreamIface,
    it: ColumnIface,
    window: VecDeque<u64>,
    pushed: u64,
    popped: u64,
}

impl ColumnBuffer {
    /// Creates the container for lines of `line_width` pixels of
    /// `data_width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `line_width` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        line_width: usize,
        data_width: usize,
        up: StreamIface,
        it: ColumnIface,
    ) -> Self {
        assert!(line_width > 0, "line width must be positive");
        Self {
            name: name.into(),
            line_width,
            data_width,
            up,
            it,
            window: VecDeque::new(),
            pushed: 0,
            popped: 0,
        }
    }

    fn capacity(&self) -> usize {
        2 * self.line_width + 1
    }

    fn column_ready(&self) -> bool {
        self.pushed > self.popped + 2 * self.line_width as u64
    }
}

impl Component for ColumnBuffer {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        bus.drive_u64(self.it.avail, u64::from(self.column_ready()))?;
        if self.column_ready() {
            let w = self.line_width;
            bus.drive_u64(self.it.top, self.window[0])?;
            bus.drive_u64(self.it.mid, self.window[w])?;
            bus.drive_u64(self.it.bot, self.window[2 * w])?;
        } else {
            let x = LogicVector::unknown(self.data_width).map_err(SimError::from)?;
            bus.drive(self.it.top, x)?;
            bus.drive(self.it.mid, x)?;
            bus.drive(self.it.bot, x)?;
        }
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        if bus.read(self.it.inc)?.to_u64() == Some(1) {
            if !self.column_ready() {
                return Err(SimError::Protocol {
                    component: self.name.clone(),
                    message: "inc with no column available".into(),
                });
            }
            self.window.pop_front();
            self.popped += 1;
        }
        if bus.read(self.up.valid)?.to_u64() == Some(1) {
            if self.window.len() >= self.capacity() {
                return Err(SimError::Protocol {
                    component: self.name.clone(),
                    message: "input overrun: line window full".into(),
                });
            }
            self.window
                .push_back(bus.read_u64(self.up.data, &self.name)?);
            self.pushed += 1;
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.window.clear();
        self.pushed = 0;
        self.popped = 0;
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        // eval drives purely from the line window state.
        Sensitivity::Signals(vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_sim::Simulator;

    struct FifoRig {
        sim: Simulator,
        up: StreamIface,
        it: IterIface,
    }

    fn fifo_rig(depth: usize) -> FifoRig {
        let mut sim = Simulator::new();
        let up = StreamIface::alloc(&mut sim, "up", 8).unwrap();
        let it = IterIface::alloc(&mut sim, "it", 8).unwrap();
        sim.add_component(ReadBufferFifo::new("dut", depth, 8, up, it));
        sim.poke(up.valid, 0).unwrap();
        sim.poke(up.data, 0).unwrap();
        sim.poke(it.read, 0).unwrap();
        sim.poke(it.inc, 0).unwrap();
        sim.poke(it.write, 0).unwrap();
        sim.poke(it.wdata, 0).unwrap();
        sim.reset().unwrap();
        FifoRig { sim, up, it }
    }

    fn push(r: &mut FifoRig, v: u64) {
        r.sim.poke(r.up.valid, 1).unwrap();
        r.sim.poke(r.up.data, v).unwrap();
        r.sim.step().unwrap();
        r.sim.poke(r.up.valid, 0).unwrap();
    }

    #[test]
    fn fifo_backed_iterator_reads_in_order() {
        let mut r = fifo_rig(8);
        for v in [5u64, 6, 7] {
            push(&mut r, v);
        }
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.it.can_read).unwrap().to_u64(), Some(1));
        let mut seen = Vec::new();
        r.sim.poke(r.it.read, 1).unwrap();
        r.sim.poke(r.it.inc, 1).unwrap();
        for _ in 0..3 {
            r.sim.settle().unwrap();
            assert_eq!(r.sim.peek(r.it.done).unwrap().to_u64(), Some(1));
            seen.push(r.sim.peek(r.it.rdata).unwrap().to_u64().unwrap());
            r.sim.step().unwrap();
        }
        assert_eq!(seen, vec![5, 6, 7]);
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.it.can_read).unwrap().to_u64(), Some(0));
        assert_eq!(r.sim.peek(r.it.done).unwrap().to_u64(), Some(0));
    }

    #[test]
    fn read_without_inc_peeks() {
        let mut r = fifo_rig(8);
        push(&mut r, 42);
        r.sim.poke(r.it.read, 1).unwrap();
        r.sim.step().unwrap();
        r.sim.step().unwrap();
        // Still there: no inc, no pop.
        assert_eq!(r.sim.peek(r.it.rdata).unwrap().to_u64(), Some(42));
        assert_eq!(r.sim.peek(r.it.can_read).unwrap().to_u64(), Some(1));
    }

    #[test]
    fn overrun_is_protocol_error() {
        let mut r = fifo_rig(1);
        push(&mut r, 1);
        r.sim.poke(r.up.valid, 1).unwrap();
        r.sim.poke(r.up.data, 2).unwrap();
        assert!(matches!(
            r.sim.step().unwrap_err(),
            SimError::Protocol { .. }
        ));
    }

    #[test]
    fn cannot_write_through_input_iterator() {
        let r = fifo_rig(4);
        // can_write is constantly 0: the Table 1 read-buffer row has no
        // output role.
        assert_eq!(r.sim.peek(r.it.can_write).unwrap().to_u64(), Some(0));
    }

    struct SramRig {
        sim: Simulator,
        up: StreamIface,
        it: IterIface,
    }

    fn sram_rig(latency: u32) -> SramRig {
        let mut sim = Simulator::new();
        let up = StreamIface::alloc(&mut sim, "up", 8).unwrap();
        let it = IterIface::alloc(&mut sim, "it", 8).unwrap();
        let mem = SramPort::alloc(&mut sim, "mem", 16, 8).unwrap();
        sim.add_component(mem.device("u_sram", 16, 8, latency));
        sim.add_component(ReadBufferSram::new("dut", 64, 0, 8, up, it, mem));
        sim.poke(up.valid, 0).unwrap();
        sim.poke(up.data, 0).unwrap();
        sim.poke(it.read, 0).unwrap();
        sim.poke(it.inc, 0).unwrap();
        sim.poke(it.write, 0).unwrap();
        sim.poke(it.wdata, 0).unwrap();
        sim.reset().unwrap();
        SramRig { sim, up, it }
    }

    #[test]
    fn sram_backed_iterator_round_trip() {
        let mut r = sram_rig(2);
        // Push three pixels, spaced out so the memory keeps up.
        for v in [11u64, 22, 33] {
            r.sim.poke(r.up.valid, 1).unwrap();
            r.sim.poke(r.up.data, v).unwrap();
            r.sim.step().unwrap();
            r.sim.poke(r.up.valid, 0).unwrap();
            r.sim.run(6).unwrap(); // let the write transaction finish
        }
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.it.can_read).unwrap().to_u64(), Some(1));
        // Stream out with read+inc held.
        r.sim.poke(r.it.read, 1).unwrap();
        r.sim.poke(r.it.inc, 1).unwrap();
        let mut seen = Vec::new();
        for _ in 0..60 {
            r.sim.step().unwrap();
            if r.sim.peek(r.it.done).unwrap().to_u64() == Some(1) {
                seen.push(r.sim.peek(r.it.rdata).unwrap().to_u64().unwrap());
                if seen.len() == 3 {
                    break;
                }
            }
        }
        assert_eq!(seen, vec![11, 22, 33]);
    }

    #[test]
    fn sram_reads_take_latency_cycles() {
        let mut fast = sram_rig(1);
        let mut slow = sram_rig(6);
        for r in [&mut fast, &mut slow] {
            r.sim.poke(r.up.valid, 1).unwrap();
            r.sim.poke(r.up.data, 9).unwrap();
            r.sim.step().unwrap();
            r.sim.poke(r.up.valid, 0).unwrap();
            r.sim.run(16).unwrap();
            r.sim.poke(r.it.read, 1).unwrap();
        }
        let cycles = |r: &mut SramRig| -> u64 {
            let mut n = 0;
            for _ in 0..40 {
                r.sim.step().unwrap();
                n += 1;
                if r.sim.peek(r.it.done).unwrap().to_u64() == Some(1) {
                    return n;
                }
            }
            panic!("no done");
        };
        let f = cycles(&mut fast);
        let s = cycles(&mut slow);
        assert!(s > f, "higher latency must take longer ({f} vs {s})");
    }

    #[test]
    fn skid_overrun_is_protocol_error() {
        // Latency so high that back-to-back pushes overflow the skid.
        let mut r = sram_rig(20);
        r.sim.poke(r.up.valid, 1).unwrap();
        r.sim.poke(r.up.data, 1).unwrap();
        let mut failed = false;
        for _ in 0..20 {
            match r.sim.step() {
                Ok(()) => {}
                Err(SimError::Protocol { message, .. }) => {
                    assert!(message.contains("overrun"));
                    failed = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(failed, "continuous pushes at latency 20 must overrun");
    }

    #[test]
    fn column_buffer_presents_columns() {
        let mut sim = Simulator::new();
        let up = StreamIface::alloc(&mut sim, "up", 8).unwrap();
        let it = ColumnIface::alloc(&mut sim, "col", 8).unwrap();
        sim.add_component(ColumnBuffer::new("dut", 3, 8, up, it));
        sim.poke(up.valid, 0).unwrap();
        sim.poke(up.data, 0).unwrap();
        sim.poke(it.inc, 0).unwrap();
        sim.reset().unwrap();
        // Push 7 pixels = 2*3+1: first column ready.
        for i in 0..7u64 {
            sim.poke(up.valid, 1).unwrap();
            sim.poke(up.data, i).unwrap();
            sim.step().unwrap();
        }
        sim.poke(up.valid, 0).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.peek(it.avail).unwrap().to_u64(), Some(1));
        assert_eq!(sim.peek(it.top).unwrap().to_u64(), Some(0));
        assert_eq!(sim.peek(it.mid).unwrap().to_u64(), Some(3));
        assert_eq!(sim.peek(it.bot).unwrap().to_u64(), Some(6));
    }
}
