//! Hardware interface bundles: the signal-level form of the iterator
//! pattern.
//!
//! Figure 2 of the paper gives the Iterator its class diagram; in
//! hardware the "interface" is a bundle of ports. [`IterIface`] is
//! that bundle for sequential iterators, [`RandomIterIface`] adds the
//! `dec`/`index` operations of Table 2, [`ColumnIface`] is the
//! specialised iterator of the blur example, and [`SramPort`] is the
//! implementation interface of Figure 5.
//!
//! ## Operation protocol
//!
//! * The algorithm asserts one or more operation strobes (`read`,
//!   `write`, `inc`, ...) and holds them.
//! * The iterator performs back-to-back operations while strobes stay
//!   asserted, pulsing `done` for one cycle per completed operation
//!   (a FIFO-backed iterator completes one per cycle; an SRAM-backed
//!   one per memory transaction).
//! * `rdata` is valid when `done` pulses for a read and holds until
//!   the next completion.
//! * `can_read` / `can_write` expose flow-control state (container
//!   non-empty / non-full); an operation strobed while impossible
//!   simply waits — it is never an error at this interface, which is
//!   what lets the same algorithm run unmodified over any container.

use hdp_sim::{vcd::VcdRecorder, SignalId, SimError, Simulator};

/// A named bundle of signals forming one hardware interface.
///
/// Every interface in this module is a plain struct of [`SignalId`]s
/// with its own `alloc` constructor. This trait gives them a common
/// shape so tooling can be written once per *bundle* instead of once
/// per *signal*: waveform recording, monitoring, and sensitivity
/// registration all want "every signal of this interface, with a
/// port name" without caring which interface it is.
///
/// `alloc` here is the generic single-width form: auxiliary widths
/// (the position operand of [`RandomIterIface`], the address of
/// [`SramPort`]) default to the data width. Call the bundle's
/// inherent `alloc` when those must differ — inherent associated
/// functions shadow this one, so existing call sites are unaffected.
pub trait IfaceBundle {
    /// Allocates the bundle's signals as `"<prefix>_<port>"`.
    ///
    /// # Errors
    ///
    /// Propagates signal-creation failures (duplicate names, bad
    /// width).
    fn alloc(sim: &mut Simulator, prefix: &str, width: usize) -> Result<Self, SimError>
    where
        Self: Sized;

    /// Every signal of the bundle with its port name.
    fn signals(&self) -> Vec<(&'static str, SignalId)>;

    /// Just the signal ids, in `signals` order — the form wanted by
    /// sensitivity lists and probe constructors.
    fn signal_ids(&self) -> Vec<SignalId> {
        self.signals().iter().map(|&(_, s)| s).collect()
    }

    /// A waveform recorder watching the whole bundle.
    fn recorder(&self, name: impl Into<String>) -> VcdRecorder
    where
        Self: Sized,
    {
        VcdRecorder::new(name, self.signal_ids())
    }
}

/// A valid/data pixel stream (video decoder output, VGA input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamIface {
    /// Data is present this cycle.
    pub valid: SignalId,
    /// The pixel payload.
    pub data: SignalId,
}

impl StreamIface {
    /// Allocates the stream signals `"<prefix>_valid"` and
    /// `"<prefix>_data"`.
    ///
    /// # Errors
    ///
    /// Propagates signal-creation failures (duplicate names, bad width).
    pub fn alloc(sim: &mut Simulator, prefix: &str, data_width: usize) -> Result<Self, SimError> {
        Ok(Self {
            valid: sim.add_signal(format!("{prefix}_valid"), 1)?,
            data: sim.add_signal(format!("{prefix}_data"), data_width)?,
        })
    }
}

impl IfaceBundle for StreamIface {
    fn alloc(sim: &mut Simulator, prefix: &str, width: usize) -> Result<Self, SimError> {
        Self::alloc(sim, prefix, width)
    }

    fn signals(&self) -> Vec<(&'static str, SignalId)> {
        vec![("valid", self.valid), ("data", self.data)]
    }
}

/// The sequential iterator interface: `inc`, `read`, `write` plus data
/// and flow control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterIface {
    /// Strobe: move forward.
    pub inc: SignalId,
    /// Strobe: get the element at the current position.
    pub read: SignalId,
    /// Strobe: put the element at the current position.
    pub write: SignalId,
    /// Element read from the container.
    pub rdata: SignalId,
    /// Element to write into the container.
    pub wdata: SignalId,
    /// One-cycle pulse per completed operation.
    pub done: SignalId,
    /// A read could complete now (container has data).
    pub can_read: SignalId,
    /// A write could complete now (container has room).
    pub can_write: SignalId,
}

impl IterIface {
    /// Allocates the eight interface signals with a common prefix.
    ///
    /// # Errors
    ///
    /// Propagates signal-creation failures.
    pub fn alloc(sim: &mut Simulator, prefix: &str, data_width: usize) -> Result<Self, SimError> {
        Ok(Self {
            inc: sim.add_signal(format!("{prefix}_inc"), 1)?,
            read: sim.add_signal(format!("{prefix}_read"), 1)?,
            write: sim.add_signal(format!("{prefix}_write"), 1)?,
            rdata: sim.add_signal(format!("{prefix}_rdata"), data_width)?,
            wdata: sim.add_signal(format!("{prefix}_wdata"), data_width)?,
            done: sim.add_signal(format!("{prefix}_done"), 1)?,
            can_read: sim.add_signal(format!("{prefix}_can_read"), 1)?,
            can_write: sim.add_signal(format!("{prefix}_can_write"), 1)?,
        })
    }
}

impl IfaceBundle for IterIface {
    fn alloc(sim: &mut Simulator, prefix: &str, width: usize) -> Result<Self, SimError> {
        Self::alloc(sim, prefix, width)
    }

    fn signals(&self) -> Vec<(&'static str, SignalId)> {
        vec![
            ("inc", self.inc),
            ("read", self.read),
            ("write", self.write),
            ("rdata", self.rdata),
            ("wdata", self.wdata),
            ("done", self.done),
            ("can_read", self.can_read),
            ("can_write", self.can_write),
        ]
    }
}

/// The random iterator interface: everything in [`IterIface`] plus
/// `dec` and `index`/`pos` (Table 2's full operation set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomIterIface {
    /// The sequential subset.
    pub seq: IterIface,
    /// Strobe: move backwards.
    pub dec: SignalId,
    /// Strobe: set the current position from `pos`.
    pub index: SignalId,
    /// The position operand of `index`.
    pub pos: SignalId,
}

impl RandomIterIface {
    /// Allocates all eleven interface signals with a common prefix.
    ///
    /// # Errors
    ///
    /// Propagates signal-creation failures.
    pub fn alloc(
        sim: &mut Simulator,
        prefix: &str,
        data_width: usize,
        pos_width: usize,
    ) -> Result<Self, SimError> {
        Ok(Self {
            seq: IterIface::alloc(sim, prefix, data_width)?,
            dec: sim.add_signal(format!("{prefix}_dec"), 1)?,
            index: sim.add_signal(format!("{prefix}_index"), 1)?,
            pos: sim.add_signal(format!("{prefix}_pos"), pos_width)?,
        })
    }
}

impl IfaceBundle for RandomIterIface {
    /// The position operand gets the data width; use the inherent
    /// `alloc` for an independent `pos_width`.
    fn alloc(sim: &mut Simulator, prefix: &str, width: usize) -> Result<Self, SimError> {
        Self::alloc(sim, prefix, width, width)
    }

    fn signals(&self) -> Vec<(&'static str, SignalId)> {
        let mut s = self.seq.signals();
        s.extend([("dec", self.dec), ("index", self.index), ("pos", self.pos)]);
        s
    }
}

/// The specialised column iterator of the blur example: each advance
/// presents three vertically adjacent pixels (§4: the 3-line buffer is
/// "structured to provide 3 pixels in a column for each access").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnIface {
    /// Strobe: advance to the next column (the iterator's `inc`).
    pub inc: SignalId,
    /// A complete column is available.
    pub avail: SignalId,
    /// Pixel from the oldest line.
    pub top: SignalId,
    /// Pixel from the middle line.
    pub mid: SignalId,
    /// Pixel from the newest line.
    pub bot: SignalId,
}

impl ColumnIface {
    /// Allocates the five column-iterator signals with a common prefix.
    ///
    /// # Errors
    ///
    /// Propagates signal-creation failures.
    pub fn alloc(sim: &mut Simulator, prefix: &str, data_width: usize) -> Result<Self, SimError> {
        Ok(Self {
            inc: sim.add_signal(format!("{prefix}_inc"), 1)?,
            avail: sim.add_signal(format!("{prefix}_avail"), 1)?,
            top: sim.add_signal(format!("{prefix}_top"), data_width)?,
            mid: sim.add_signal(format!("{prefix}_mid"), data_width)?,
            bot: sim.add_signal(format!("{prefix}_bot"), data_width)?,
        })
    }
}

impl IfaceBundle for ColumnIface {
    fn alloc(sim: &mut Simulator, prefix: &str, width: usize) -> Result<Self, SimError> {
        Self::alloc(sim, prefix, width)
    }

    fn signals(&self) -> Vec<(&'static str, SignalId)> {
        vec![
            ("inc", self.inc),
            ("avail", self.avail),
            ("top", self.top),
            ("mid", self.mid),
            ("bot", self.bot),
        ]
    }
}

/// One master side of the external SRAM handshake, the implementation
/// interface of Figure 5 (`p_addr`, `p_data`, `req`, `ack`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramPort {
    /// Transaction request.
    pub req: SignalId,
    /// Write (vs. read) transaction.
    pub we: SignalId,
    /// Word address.
    pub addr: SignalId,
    /// Write data.
    pub wdata: SignalId,
    /// Transaction completion.
    pub ack: SignalId,
    /// Read data, valid while `ack` is high on a read.
    pub rdata: SignalId,
}

impl SramPort {
    /// Allocates the six handshake signals with a common prefix.
    ///
    /// # Errors
    ///
    /// Propagates signal-creation failures.
    pub fn alloc(
        sim: &mut Simulator,
        prefix: &str,
        addr_width: usize,
        data_width: usize,
    ) -> Result<Self, SimError> {
        Ok(Self {
            req: sim.add_signal(format!("{prefix}_req"), 1)?,
            we: sim.add_signal(format!("{prefix}_we"), 1)?,
            addr: sim.add_signal(format!("{prefix}_addr"), addr_width)?,
            wdata: sim.add_signal(format!("{prefix}_wdata"), data_width)?,
            ack: sim.add_signal(format!("{prefix}_ack"), 1)?,
            rdata: sim.add_signal(format!("{prefix}_rdata"), data_width)?,
        })
    }

    /// Attaches an [`hdp_sim::devices::Sram`] device to this port.
    ///
    /// Convenience used by every SRAM-backed scenario: builds the
    /// device with matching widths and this port's signals.
    #[must_use]
    pub fn device(
        &self,
        name: impl Into<String>,
        addr_width: usize,
        data_width: usize,
        latency: u32,
    ) -> hdp_sim::devices::Sram {
        hdp_sim::devices::Sram::new(
            name, addr_width, data_width, latency, self.req, self.we, self.addr, self.wdata,
            self.ack, self.rdata,
        )
    }
}

impl IfaceBundle for SramPort {
    /// Address and data share `width`; use the inherent `alloc` for an
    /// independent address width.
    fn alloc(sim: &mut Simulator, prefix: &str, width: usize) -> Result<Self, SimError> {
        Self::alloc(sim, prefix, width, width)
    }

    fn signals(&self) -> Vec<(&'static str, SignalId)> {
        vec![
            ("req", self.req),
            ("we", self.we),
            ("addr", self.addr),
            ("wdata", self.wdata),
            ("ack", self.ack),
            ("rdata", self.rdata),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_names_signals_with_prefix() {
        let mut sim = Simulator::new();
        let iface = IterIface::alloc(&mut sim, "it_in", 8).unwrap();
        assert_eq!(sim.bus().name(iface.inc).unwrap(), "it_in_inc");
        assert_eq!(sim.bus().name(iface.rdata).unwrap(), "it_in_rdata");
        assert_eq!(sim.bus().width(iface.rdata).unwrap(), 8);
        assert_eq!(sim.bus().width(iface.done).unwrap(), 1);
    }

    #[test]
    fn duplicate_prefix_is_rejected() {
        let mut sim = Simulator::new();
        IterIface::alloc(&mut sim, "it", 8).unwrap();
        assert!(IterIface::alloc(&mut sim, "it", 8).is_err());
    }

    #[test]
    fn random_iface_extends_sequential() {
        let mut sim = Simulator::new();
        let iface = RandomIterIface::alloc(&mut sim, "r", 16, 10).unwrap();
        assert_eq!(sim.bus().width(iface.pos).unwrap(), 10);
        assert_eq!(sim.bus().width(iface.seq.rdata).unwrap(), 16);
    }

    #[test]
    fn column_iface_has_three_data_ports() {
        let mut sim = Simulator::new();
        let iface = ColumnIface::alloc(&mut sim, "col", 8).unwrap();
        for s in [iface.top, iface.mid, iface.bot] {
            assert_eq!(sim.bus().width(s).unwrap(), 8);
        }
    }

    #[test]
    fn sram_port_builds_matching_device() {
        let mut sim = Simulator::new();
        let port = SramPort::alloc(&mut sim, "p", 16, 8).unwrap();
        let dev = port.device("sram", 16, 8, 2);
        assert_eq!(dev.latency(), 2);
    }

    #[test]
    fn stream_iface_alloc() {
        let mut sim = Simulator::new();
        let s = StreamIface::alloc(&mut sim, "vid", 24).unwrap();
        assert_eq!(sim.bus().width(s.data).unwrap(), 24);
    }

    /// Allocates any bundle through the trait — the generic tooling
    /// path.
    fn alloc_generic<B: IfaceBundle>(
        sim: &mut Simulator,
        prefix: &str,
        width: usize,
    ) -> Result<B, SimError> {
        B::alloc(sim, prefix, width)
    }

    #[test]
    fn bundle_signals_name_every_port() {
        let mut sim = Simulator::new();
        let it: RandomIterIface = alloc_generic(&mut sim, "r", 8).unwrap();
        let names: Vec<&str> = it.signals().iter().map(|&(n, _)| n).collect();
        assert_eq!(
            names,
            vec![
                "inc",
                "read",
                "write",
                "rdata",
                "wdata",
                "done",
                "can_read",
                "can_write",
                "dec",
                "index",
                "pos"
            ]
        );
        // Port names match the allocated bus names.
        for (port, sig) in it.signals() {
            assert_eq!(sim.bus().name(sig).unwrap(), format!("r_{port}"));
        }
    }

    #[test]
    fn bundle_signal_ids_feed_probes_and_sensitivity() {
        let mut sim = Simulator::new();
        let port: SramPort = alloc_generic(&mut sim, "mem", 8).unwrap();
        assert_eq!(port.signal_ids().len(), 6);
        // Trait alloc shares the width between address and data.
        assert_eq!(sim.bus().width(port.addr).unwrap(), 8);
        assert_eq!(sim.bus().width(port.wdata).unwrap(), 8);
    }

    #[test]
    fn bundle_recorder_watches_whole_interface() {
        let mut sim = Simulator::new();
        let s: StreamIface = alloc_generic(&mut sim, "vid", 8).unwrap();
        let rec = sim.add_component(s.recorder("vcd"));
        sim.poke(s.valid, 1).unwrap();
        sim.poke(s.data, 7).unwrap();
        sim.reset().unwrap();
        sim.run(1).unwrap();
        let text = sim
            .component::<hdp_sim::vcd::VcdRecorder>(rec)
            .unwrap()
            .render(sim.bus());
        assert!(text.contains("vid_valid"));
        assert!(text.contains("vid_data"));
    }
}
