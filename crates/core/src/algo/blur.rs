//! The blur convolution engine of the paper's third evaluation design.

use crate::iface::{ColumnIface, IterIface};
use crate::pixel::PixelFormat;
use hdp_sim::{BusAccess, Component, Sensitivity, SignalBus, SimError};

/// One column of three vertically adjacent pixels.
#[derive(Debug, Clone, Copy, Default)]
struct Column {
    top: u64,
    mid: u64,
    bot: u64,
}

/// 3×3 blur engine fed by the specialised column iterator.
///
/// "We have implemented a blur filter that processes an image coming
/// from the video decoder ... The rbuffer container, instead of a
/// simple FIFO has been mapped over a special one ... structured to
/// provide 3 pixels in a column for each access. This makes the
/// convolution product in the blur algorithm very simple and quite
/// efficient since ideally a new filtered pixel can be generated at
/// each clock cycle." (§4)
///
/// The engine keeps the two previous columns in registers; with the
/// current column from the iterator it has the full 3×3 window and
/// emits one blurred pixel per `inc` once at least two columns of the
/// current line have passed. The kernel is the binomial
/// `[1 2 1; 2 4 2; 1 2 1] / 16`, matching
/// [`crate::golden::blur3x3`] bit for bit.
#[derive(Debug)]
pub struct BlurEngine {
    name: String,
    format: PixelFormat,
    line_width: usize,
    input: ColumnIface,
    output: IterIface,
    left: Column,
    center: Column,
    /// Position (x) of the *incoming* column within its line.
    x: usize,
    emitted: u64,
}

impl BlurEngine {
    /// Creates the engine for lines of `line_width` pixels.
    ///
    /// # Panics
    ///
    /// Panics if `line_width < 3` (no interior pixels exist).
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        format: PixelFormat,
        line_width: usize,
        input: ColumnIface,
        output: IterIface,
    ) -> Self {
        assert!(line_width >= 3, "line width must be at least 3");
        Self {
            name: name.into(),
            format,
            line_width,
            input,
            output,
            left: Column::default(),
            center: Column::default(),
            x: 0,
            emitted: 0,
        }
    }

    /// Blurred pixels emitted since reset.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn kernel(&self, right: Column) -> u64 {
        let conv = |shift: u32| -> u64 {
            let ch = |p: u64| p >> shift & 0xFF;
            let acc = ch(self.left.top)
                + 2 * ch(self.center.top)
                + ch(right.top)
                + 2 * ch(self.left.mid)
                + 4 * ch(self.center.mid)
                + 2 * ch(right.mid)
                + ch(self.left.bot)
                + 2 * ch(self.center.bot)
                + ch(right.bot);
            acc >> 4
        };
        match self.format {
            PixelFormat::Gray8 => conv(0),
            PixelFormat::Rgb24 => conv(16) << 16 | conv(8) << 8 | conv(0),
        }
    }
}

impl Component for BlurEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        let avail = bus.read(self.input.avail)?.to_u64() == Some(1);
        let can_write = bus.read(self.output.can_write)?.to_u64() == Some(1);
        let window_full = self.x >= 2;
        // Advance whenever a column is available, but stall on a full
        // window if the output cannot take the pixel.
        let advance = avail && (!window_full || can_write);
        let emit = advance && window_full;
        bus.drive_u64(self.input.inc, u64::from(advance))?;
        bus.drive_u64(self.output.write, u64::from(emit))?;
        bus.drive_u64(self.output.inc, u64::from(emit))?;
        bus.drive_u64(self.output.read, 0)?;
        if emit {
            let right = Column {
                top: bus.read_u64(self.input.top, &self.name)?,
                mid: bus.read_u64(self.input.mid, &self.name)?,
                bot: bus.read_u64(self.input.bot, &self.name)?,
            };
            bus.drive_u64(self.output.wdata, self.kernel(right))?;
        } else {
            let width = bus.width(self.output.wdata)?;
            bus.drive(
                self.output.wdata,
                hdp_hdl::LogicVector::unknown(width).map_err(SimError::from)?,
            )?;
        }
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        let avail = bus.read(self.input.avail)?.to_u64() == Some(1);
        let can_write = bus.read(self.output.can_write)?.to_u64() == Some(1);
        let window_full = self.x >= 2;
        let advance = avail && (!window_full || can_write);
        if advance {
            if window_full {
                self.emitted += 1;
            }
            let current = Column {
                top: bus.read_u64(self.input.top, &self.name)?,
                mid: bus.read_u64(self.input.mid, &self.name)?,
                bot: bus.read_u64(self.input.bot, &self.name)?,
            };
            self.left = self.center;
            self.center = current;
            self.x += 1;
            if self.x == self.line_width {
                self.x = 0; // next line: window refills
            }
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.left = Column::default();
        self.center = Column::default();
        self.x = 0;
        self.emitted = 0;
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        // Combinational: the advance/emit decision and the kernel's
        // right column all flow through eval.
        Sensitivity::Signals(vec![
            self.input.avail,
            self.output.can_write,
            self.input.top,
            self.input.mid,
            self.input.bot,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::{blur3x3, BlurBorder};
    use crate::hw::{ColumnBuffer, WriteBufferFifo};
    use crate::iface::StreamIface;
    use crate::pixel::Frame;
    use hdp_sim::devices::{VideoIn, VideoOut};
    use hdp_sim::Simulator;

    /// Runs the full blur pipeline over a frame and returns the
    /// blurred pixels.
    fn run_blur(frame: &Frame, gap: u32) -> Vec<u64> {
        let (w, h) = (frame.width(), frame.height());
        let bits = frame.format().bits();
        let out_len = (w - 2) * (h - 2);
        let mut sim = Simulator::new();
        let vin = StreamIface::alloc(&mut sim, "vin", bits).unwrap();
        let col = ColumnIface::alloc(&mut sim, "col", bits).unwrap();
        let it_out = IterIface::alloc(&mut sim, "it_out", bits).unwrap();
        let vout = StreamIface::alloc(&mut sim, "vout", bits).unwrap();
        sim.add_component(VideoIn::new(
            "src",
            frame.pixels().to_vec(),
            bits,
            gap,
            false,
            vin.valid,
            vin.data,
        ));
        sim.add_component(ColumnBuffer::new("rb", w, bits, vin, col));
        sim.add_component(BlurEngine::new("blur", frame.format(), w, col, it_out));
        sim.add_component(WriteBufferFifo::new("wb", 16, it_out, vout));
        let sink = sim.add_component(VideoOut::new("sink", out_len, None, vout.valid, vout.data));
        sim.reset().unwrap();
        sim.run((w * h) as u64 * u64::from(gap + 1) + 200).unwrap();
        sim.component::<VideoOut>(sink)
            .unwrap()
            .frames()
            .first()
            .cloned()
            .unwrap_or_default()
    }

    #[test]
    fn blur_matches_golden_on_gradient() {
        let frame = Frame::gradient(8, 6, PixelFormat::Gray8);
        let golden = blur3x3(&frame, BlurBorder::Crop).unwrap();
        // gap=1: the column buffer consumes at most one column per
        // cycle while the source pauses between pixels.
        let hw = run_blur(&frame, 1);
        assert_eq!(hw, golden.pixels());
    }

    #[test]
    fn blur_matches_golden_on_noise() {
        let frame = Frame::noise(10, 7, PixelFormat::Gray8, 99);
        let golden = blur3x3(&frame, BlurBorder::Crop).unwrap();
        let hw = run_blur(&frame, 1);
        assert_eq!(hw, golden.pixels());
    }

    #[test]
    fn blur_rgb_matches_golden() {
        let frame = Frame::noise(6, 5, PixelFormat::Rgb24, 7);
        let golden = blur3x3(&frame, BlurBorder::Crop).unwrap();
        let hw = run_blur(&frame, 1);
        assert_eq!(hw, golden.pixels());
    }

    #[test]
    fn blur_output_count_is_interior_size() {
        let frame = Frame::gradient(7, 7, PixelFormat::Gray8);
        let hw = run_blur(&frame, 1);
        assert_eq!(hw.len(), 5 * 5);
    }

    #[test]
    fn uniform_frame_blurs_to_itself() {
        let frame = Frame::from_pixels(5, 5, PixelFormat::Gray8, vec![80; 25]).unwrap();
        let hw = run_blur(&frame, 1);
        assert!(hw.iter().all(|&p| p == 80), "{hw:?}");
    }
}
