//! Algorithm engines: hardware written *only* against the iterator
//! interface.
//!
//! "Every one should use the interface provided by iterators to
//! access data in the containers. This would guarantee reusability of
//! the algorithm, despite of the container chosen for a certain
//! implementation." (§3.2.3). None of the engines here knows whether
//! its iterators front a FIFO core, an external SRAM or a 3-line
//! buffer — that is the entire point of the pattern.
//!
//! * [`TransformStreaming`] / [`TransformSequenced`] — pixel-wise
//!   transform (and, with [`crate::golden::PixelOp::Identity`], the
//!   paper's `copy` algorithm). The streaming variant issues read and
//!   write in parallel every cycle ("all these operations can be
//!   performed in parallel in a hardware implementation", §3.3) and
//!   needs single-cycle iterators; the sequenced variant is a
//!   fetch/store FSM that works over any iterator timing, which is
//!   what the generator selects for SRAM-backed containers.
//! * [`BlurEngine`] — the 3×3 convolution of the evaluation's third
//!   design, fed by the specialised column iterator.

//! * [`LabelEngine`] — two-pass binary image labelling, the domain
//!   algorithm §3.2.2 and §5 name for the image-processing library.

mod blur;
mod label;
mod transform;

pub use blur::BlurEngine;
pub use label::LabelEngine;
pub use transform::{TransformSequenced, TransformStreaming};
