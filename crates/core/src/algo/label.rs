//! Binary image labelling engine.
//!
//! Named by the paper as a domain algorithm the library should offer
//! ("binary image labelling for image processing applications",
//! §3.2.2; "specific application domains such as video image
//! processing demand specific libraries including common algorithms
//! (convolution filters, image labelling ...)", §5). This is the
//! classic two-pass connected-component architecture:
//!
//! * **Scan** — one pixel per cycle from the input stream; a
//!   previous-row label line buffer and a left-label register supply
//!   the two causal neighbours (4-connectivity); a new provisional
//!   label is allocated when both are background, otherwise the
//!   minimum neighbour label is taken and conflicting labels are
//!   merged in an equivalence table. Provisional labels land in a
//!   frame store (block RAM in hardware).
//! * **Resolve** — the equivalence table is walked root-wards and the
//!   roots renumbered densely (roots are the minimal provisional
//!   label of each component, so ascending root order equals raster
//!   first-touch order, matching [`crate::golden::label`]).
//! * **Emit** — the frame store is streamed out, one resolved label
//!   per cycle, on the output stream.

use crate::iface::StreamIface;
use hdp_sim::{BusAccess, Component, Sensitivity, SignalBus, SimError};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Scan,
    Resolve,
    Emit,
    Done,
}

/// Streaming two-pass connected-component labeller (4-connectivity).
///
/// Consumes `width * height` pixels on the upstream interface (any
/// nonzero value is foreground), then emits the same number of labels
/// downstream: background pixels as 0, components numbered from 1 in
/// raster first-touch order — bit-identical to
/// [`crate::golden::label`].
#[derive(Debug)]
pub struct LabelEngine {
    name: String,
    width: usize,
    height: usize,
    max_labels: usize,
    up: StreamIface,
    down: StreamIface,
    phase: Phase,
    x: usize,
    y: usize,
    left: u64,
    prev_row: Vec<u64>,
    frame: Vec<u64>,
    parent: Vec<usize>,
    next_label: u64,
    rename: Vec<u64>,
    resolve_cursor: usize,
    component_count: usize,
    emit_cursor: usize,
}

impl LabelEngine {
    /// Creates the engine for `width` × `height` frames. `max_labels`
    /// bounds the provisional-label memory (a hardware resource);
    /// overflowing it is a protocol error.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        width: usize,
        height: usize,
        max_labels: usize,
        up: StreamIface,
        down: StreamIface,
    ) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be positive");
        assert!(max_labels > 0, "label memory must be positive");
        Self {
            name: name.into(),
            width,
            height,
            max_labels,
            up,
            down,
            phase: Phase::Scan,
            x: 0,
            y: 0,
            left: 0,
            prev_row: vec![0; width],
            frame: vec![0; width * height],
            parent: vec![0; 1],
            next_label: 1,
            rename: Vec::new(),
            resolve_cursor: 1,
            component_count: 0,
            emit_cursor: 0,
        }
    }

    /// Components found in the last completed frame.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.component_count
    }

    /// Whether the whole frame has been labelled and emitted.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
}

impl Component for LabelEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        match self.phase {
            Phase::Emit => {
                let i = self.emit_cursor;
                let prov = self.frame[i];
                let label = if prov == 0 {
                    0
                } else {
                    // Path was fully compressed during Resolve; a
                    // single table read suffices, as in hardware.
                    self.rename[self.parent[prov as usize]]
                };
                bus.drive_u64(self.down.valid, 1)?;
                bus.drive_u64(self.down.data, label)?;
            }
            _ => {
                bus.drive_u64(self.down.valid, 0)?;
                let width = bus.width(self.down.data)?;
                bus.drive(
                    self.down.data,
                    hdp_hdl::LogicVector::unknown(width).map_err(SimError::from)?,
                )?;
            }
        }
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        match self.phase {
            Phase::Scan => {
                if bus.read(self.up.valid)?.to_u64() != Some(1) {
                    return Ok(());
                }
                let pixel = bus.read_u64(self.up.data, &self.name)?;
                let fg = pixel != 0;
                let up_label = if self.y > 0 { self.prev_row[self.x] } else { 0 };
                let left_label = if self.x > 0 { self.left } else { 0 };
                let label = if !fg {
                    0
                } else {
                    match (left_label, up_label) {
                        (0, 0) => {
                            if self.next_label as usize >= self.max_labels {
                                return Err(SimError::Protocol {
                                    component: self.name.clone(),
                                    message: format!(
                                        "provisional label memory exhausted ({})",
                                        self.max_labels
                                    ),
                                });
                            }
                            let l = self.next_label;
                            self.parent.push(l as usize);
                            self.next_label += 1;
                            l
                        }
                        (l, 0) | (0, l) => l,
                        (l, u) => {
                            let (rl, ru) = (self.find(l as usize), self.find(u as usize));
                            if rl != ru {
                                let (lo, hi) = (rl.min(ru), rl.max(ru));
                                self.parent[hi] = lo;
                            }
                            l.min(u)
                        }
                    }
                };
                self.frame[self.y * self.width + self.x] = label;
                self.prev_row[self.x] = label;
                self.left = label;
                self.x += 1;
                if self.x == self.width {
                    self.x = 0;
                    self.left = 0;
                    self.y += 1;
                    if self.y == self.height {
                        self.phase = Phase::Resolve;
                        self.rename = vec![0; self.parent.len()];
                    }
                }
            }
            Phase::Resolve => {
                // One label resolved per cycle, as a hardware table
                // walker would.
                if self.resolve_cursor < self.parent.len() {
                    let root = self.find(self.resolve_cursor);
                    // Fully compress this entry for the Emit phase.
                    self.parent[self.resolve_cursor] = root;
                    if self.rename[root] == 0 {
                        self.component_count += 1;
                        self.rename[root] = self.component_count as u64;
                    }
                    self.resolve_cursor += 1;
                } else {
                    self.phase = Phase::Emit;
                }
            }
            Phase::Emit => {
                self.emit_cursor += 1;
                if self.emit_cursor == self.frame.len() {
                    self.phase = Phase::Done;
                }
            }
            Phase::Done => {}
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.phase = Phase::Scan;
        self.x = 0;
        self.y = 0;
        self.left = 0;
        self.prev_row.fill(0);
        self.frame.fill(0);
        self.parent = vec![0; 1];
        self.next_label = 1;
        self.rename.clear();
        self.resolve_cursor = 1;
        self.component_count = 0;
        self.emit_cursor = 0;
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        // eval drives the output stream purely from phase/frame state;
        // the input stream is sampled at the clock edge.
        Sensitivity::Signals(vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden;
    use crate::pixel::{Frame, PixelFormat};
    use hdp_sim::devices::{VideoIn, VideoOut};
    use hdp_sim::Simulator;

    fn run_labeller(frame: &Frame) -> (Vec<u64>, usize) {
        let (w, h) = (frame.width(), frame.height());
        let mut sim = Simulator::new();
        let up = StreamIface::alloc(&mut sim, "up", 8).unwrap();
        let down = StreamIface::alloc(&mut sim, "down", 16).unwrap();
        sim.add_component(VideoIn::new(
            "src",
            frame.pixels().to_vec(),
            8,
            0,
            false,
            up.valid,
            up.data,
        ));
        let engine = sim.add_component(LabelEngine::new("label", w, h, 256, up, down));
        let sink = sim.add_component(VideoOut::new("sink", w * h, None, down.valid, down.data));
        sim.reset().unwrap();
        // Scan + resolve + emit comfortably fits in 4x the pixel count
        // plus the label-table walk.
        sim.run((4 * w * h + 600) as u64).unwrap();
        let labels = sim.component::<VideoOut>(sink).unwrap().frames()[0].clone();
        let count = sim
            .component::<LabelEngine>(engine)
            .unwrap()
            .component_count();
        (labels, count)
    }

    #[test]
    fn two_bars_get_two_labels() {
        let f = Frame::from_pixels(3, 2, PixelFormat::Gray8, vec![9, 0, 9, 9, 0, 9]).unwrap();
        let (labels, count) = run_labeller(&f);
        assert_eq!(count, 2);
        assert_eq!(labels, vec![1, 0, 2, 1, 0, 2]);
    }

    #[test]
    fn u_shape_merges() {
        let f = Frame::from_pixels(3, 2, PixelFormat::Gray8, vec![9, 0, 9, 9, 9, 9]).unwrap();
        let (labels, count) = run_labeller(&f);
        assert_eq!(count, 1);
        assert!(labels.iter().all(|&l| l == 0 || l == 1));
    }

    #[test]
    fn matches_golden_on_noise_threshold() {
        // Threshold a noise frame to get irregular blobs.
        let noise = Frame::noise(12, 9, PixelFormat::Gray8, 5);
        let binary = golden::pixel_map(&noise, golden::PixelOp::Threshold(140));
        let (hw_labels, hw_count) = run_labeller(&binary);
        let (golden_labels, golden_count) = golden::label(&binary);
        assert_eq!(hw_count, golden_count);
        assert_eq!(hw_labels, golden_labels);
    }

    #[test]
    fn matches_golden_on_checkerboard() {
        let f = Frame::checkerboard(8, 8, PixelFormat::Gray8, 2);
        let (hw_labels, hw_count) = run_labeller(&f);
        let (golden_labels, golden_count) = golden::label(&f);
        assert_eq!(hw_count, golden_count);
        assert_eq!(hw_labels, golden_labels);
    }

    #[test]
    fn empty_frame_has_no_components() {
        let f = Frame::from_pixels(4, 4, PixelFormat::Gray8, vec![0; 16]).unwrap();
        let (labels, count) = run_labeller(&f);
        assert_eq!(count, 0);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn label_memory_exhaustion_is_protocol_error() {
        // Isolated pixels on a checkerboard need one label each; cap
        // the table below that.
        let f = Frame::checkerboard(8, 8, PixelFormat::Gray8, 1);
        let mut sim = Simulator::new();
        let up = StreamIface::alloc(&mut sim, "up", 8).unwrap();
        let down = StreamIface::alloc(&mut sim, "down", 16).unwrap();
        sim.add_component(VideoIn::new(
            "src",
            f.pixels().to_vec(),
            8,
            0,
            false,
            up.valid,
            up.data,
        ));
        sim.add_component(LabelEngine::new("label", 8, 8, 4, up, down));
        sim.add_component(VideoOut::new("sink", 64, None, down.valid, down.data));
        sim.reset().unwrap();
        let err = sim.run(200).unwrap_err();
        assert!(matches!(err, SimError::Protocol { .. }));
    }
}
