//! The transform (and copy) algorithm engines.

use crate::golden::PixelOp;
use crate::iface::IterIface;
use crate::pixel::PixelFormat;
use hdp_sim::{BusAccess, Component, Sensitivity, SignalBus, SimError};

/// Streaming transform: one element per cycle when both iterators are
/// ready.
///
/// "The copy algorithm is almost trivial: an endless loop that
/// sequences read and write operations and iterator forwarding for
/// both containers. All these operations can be performed in parallel
/// in a hardware implementation." (§3.3). Every cycle in which
/// `in.can_read` and `out.can_write` both hold, the engine asserts
/// `read`+`inc` on the input iterator and `write`+`inc` on the output
/// iterator and forwards `f(rdata)` combinationally — exactly the
/// endless loop of the paper, with `f` a [`PixelOp`]
/// ([`PixelOp::Identity`] makes it the copy algorithm).
///
/// Requires single-cycle iterators (FIFO-class containers); pair
/// multi-cycle containers with [`TransformSequenced`] instead.
#[derive(Debug)]
pub struct TransformStreaming {
    name: String,
    op: PixelOp,
    format: PixelFormat,
    input: IterIface,
    output: IterIface,
    transferred: u64,
    limit: Option<u64>,
}

impl TransformStreaming {
    /// Creates the engine. With `limit`, the endless loop stops after
    /// that many elements (useful for finite testbenches).
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        op: PixelOp,
        format: PixelFormat,
        input: IterIface,
        output: IterIface,
        limit: Option<u64>,
    ) -> Self {
        Self {
            name: name.into(),
            op,
            format,
            input,
            output,
            transferred: 0,
            limit,
        }
    }

    /// Elements transferred since reset.
    #[must_use]
    pub fn transferred(&self) -> u64 {
        self.transferred
    }

    fn active(&self) -> bool {
        self.limit.is_none_or(|l| self.transferred < l)
    }
}

impl Component for TransformStreaming {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        let can_read = bus.read(self.input.can_read)?.to_u64() == Some(1);
        let can_write = bus.read(self.output.can_write)?.to_u64() == Some(1);
        let go = self.active() && can_read && can_write;
        bus.drive_u64(self.input.read, u64::from(go))?;
        bus.drive_u64(self.input.inc, u64::from(go))?;
        bus.drive_u64(self.input.write, 0)?;
        bus.drive_u64(self.output.write, u64::from(go))?;
        bus.drive_u64(self.output.inc, u64::from(go))?;
        bus.drive_u64(self.output.read, 0)?;
        if go {
            let v = bus.read_u64(self.input.rdata, &self.name)?;
            bus.drive_u64(self.output.wdata, self.op.apply(v, self.format))?;
        } else {
            let width = bus.width(self.output.wdata)?;
            bus.drive(
                self.output.wdata,
                hdp_hdl::LogicVector::unknown(width).map_err(SimError::from)?,
            )?;
        }
        // Unused input-iterator write data.
        let width = bus.width(self.input.wdata)?;
        bus.drive(
            self.input.wdata,
            hdp_hdl::LogicVector::unknown(width).map_err(SimError::from)?,
        )?;
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        let can_read = bus.read(self.input.can_read)?.to_u64() == Some(1);
        let can_write = bus.read(self.output.can_write)?.to_u64() == Some(1);
        if self.active() && can_read && can_write {
            self.transferred += 1;
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.transferred = 0;
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        // Fully combinational: the handshake and the forwarded element
        // all flow through eval.
        Sensitivity::Signals(vec![
            self.input.can_read,
            self.output.can_write,
            self.input.rdata,
        ])
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeqState {
    Fetch,
    Store,
}

/// Sequenced transform: a fetch/store FSM that tolerates any iterator
/// timing.
///
/// Fetch: hold `read`+`inc` on the input iterator until its `done`
/// pulse, latch the element. Store: hold `write`+`inc` on the output
/// iterator with the transformed element until its `done`. This is
/// the specialisation the generator picks when a container is
/// multi-cycle (external SRAM, width adapters): slower than
/// [`TransformStreaming`], but correct over every target — the
/// §4 observation that the SRAM design's "performance will depend on
/// memory access times".
#[derive(Debug)]
pub struct TransformSequenced {
    name: String,
    op: PixelOp,
    format: PixelFormat,
    input: IterIface,
    output: IterIface,
    state: SeqState,
    latched: u64,
    transferred: u64,
    limit: Option<u64>,
}

impl TransformSequenced {
    /// Creates the engine. With `limit`, stops after that many
    /// elements.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        op: PixelOp,
        format: PixelFormat,
        input: IterIface,
        output: IterIface,
        limit: Option<u64>,
    ) -> Self {
        Self {
            name: name.into(),
            op,
            format,
            input,
            output,
            state: SeqState::Fetch,
            latched: 0,
            transferred: 0,
            limit,
        }
    }

    /// Elements transferred since reset.
    #[must_use]
    pub fn transferred(&self) -> u64 {
        self.transferred
    }

    fn active(&self) -> bool {
        self.limit.is_none_or(|l| self.transferred < l)
    }
}

impl Component for TransformSequenced {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        let fetching = self.active() && self.state == SeqState::Fetch;
        let storing = self.active() && self.state == SeqState::Store;
        bus.drive_u64(self.input.read, u64::from(fetching))?;
        bus.drive_u64(self.input.inc, u64::from(fetching))?;
        bus.drive_u64(self.input.write, 0)?;
        bus.drive_u64(self.output.write, u64::from(storing))?;
        bus.drive_u64(self.output.inc, u64::from(storing))?;
        bus.drive_u64(self.output.read, 0)?;
        if storing {
            bus.drive_u64(self.output.wdata, self.op.apply(self.latched, self.format))?;
        } else {
            let width = bus.width(self.output.wdata)?;
            bus.drive(
                self.output.wdata,
                hdp_hdl::LogicVector::unknown(width).map_err(SimError::from)?,
            )?;
        }
        let width = bus.width(self.input.wdata)?;
        bus.drive(
            self.input.wdata,
            hdp_hdl::LogicVector::unknown(width).map_err(SimError::from)?,
        )?;
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        if !self.active() {
            return Ok(());
        }
        match self.state {
            SeqState::Fetch => {
                if bus.read(self.input.done)?.to_u64() == Some(1) {
                    self.latched = bus.read_u64(self.input.rdata, &self.name)?;
                    self.state = SeqState::Store;
                }
            }
            SeqState::Store => {
                if bus.read(self.output.done)?.to_u64() == Some(1) {
                    self.transferred += 1;
                    self.state = SeqState::Fetch;
                }
            }
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.state = SeqState::Fetch;
        self.latched = 0;
        self.transferred = 0;
        Ok(())
    }

    fn sensitivity(&self) -> Sensitivity {
        // eval drives purely from the FSM and latched element; iterator
        // handshakes are sampled at the clock edge.
        Sensitivity::Signals(vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::{ReadBufferFifo, ReadBufferSram, WriteBufferFifo, WriteBufferSram};
    use crate::iface::{SramPort, StreamIface};
    use hdp_sim::devices::{VideoIn, VideoOut};
    use hdp_sim::Simulator;

    /// Full FIFO pipeline: video -> rbuffer -> engine -> wbuffer -> sink.
    fn fifo_pipeline(op: PixelOp, pixels: Vec<u64>, streaming: bool) -> Vec<u64> {
        let mut sim = Simulator::new();
        let n = pixels.len();
        let vin = StreamIface::alloc(&mut sim, "vin", 8).unwrap();
        let it_in = IterIface::alloc(&mut sim, "it_in", 8).unwrap();
        let it_out = IterIface::alloc(&mut sim, "it_out", 8).unwrap();
        let vout = StreamIface::alloc(&mut sim, "vout", 8).unwrap();
        sim.add_component(VideoIn::new(
            "src", pixels, 8, 0, false, vin.valid, vin.data,
        ));
        sim.add_component(ReadBufferFifo::new("rb", 16, 8, vin, it_in));
        if streaming {
            sim.add_component(TransformStreaming::new(
                "engine",
                op,
                PixelFormat::Gray8,
                it_in,
                it_out,
                Some(n as u64),
            ));
        } else {
            sim.add_component(TransformSequenced::new(
                "engine",
                op,
                PixelFormat::Gray8,
                it_in,
                it_out,
                Some(n as u64),
            ));
        }
        sim.add_component(WriteBufferFifo::new("wb", 16, it_out, vout));
        let sink = sim.add_component(VideoOut::new("sink", n, None, vout.valid, vout.data));
        sim.reset().unwrap();
        sim.run(20 * n as u64 + 50).unwrap();
        sim.component::<VideoOut>(sink)
            .unwrap()
            .frames()
            .first()
            .cloned()
            .unwrap_or_default()
    }

    #[test]
    fn streaming_copy_preserves_stream() {
        let pixels = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
        let out = fifo_pipeline(PixelOp::Identity, pixels.clone(), true);
        assert_eq!(out, pixels);
    }

    #[test]
    fn sequenced_copy_preserves_stream() {
        let pixels = vec![9u64, 8, 7, 6];
        let out = fifo_pipeline(PixelOp::Identity, pixels.clone(), false);
        assert_eq!(out, pixels);
    }

    #[test]
    fn streaming_invert_matches_golden() {
        let pixels = vec![0u64, 1, 128, 255];
        let out = fifo_pipeline(PixelOp::Invert, pixels, true);
        assert_eq!(out, vec![255, 254, 127, 0]);
    }

    #[test]
    fn streaming_threshold_matches_golden() {
        let pixels = vec![10u64, 200, 99, 100];
        let out = fifo_pipeline(PixelOp::Threshold(100), pixels, true);
        assert_eq!(out, vec![0, 255, 0, 255]);
    }

    #[test]
    fn streaming_achieves_one_pixel_per_cycle() {
        // Measure: with a continuous source, N pixels take about N
        // cycles (plus small pipeline fill), the paper's "maximum
        // performance" FIFO configuration.
        let mut sim = Simulator::new();
        let n = 64u64;
        let pixels: Vec<u64> = (0..n).map(|i| i & 0xFF).collect();
        let vin = StreamIface::alloc(&mut sim, "vin", 8).unwrap();
        let it_in = IterIface::alloc(&mut sim, "it_in", 8).unwrap();
        let it_out = IterIface::alloc(&mut sim, "it_out", 8).unwrap();
        let vout = StreamIface::alloc(&mut sim, "vout", 8).unwrap();
        sim.add_component(VideoIn::new(
            "src", pixels, 8, 0, false, vin.valid, vin.data,
        ));
        sim.add_component(ReadBufferFifo::new("rb", 16, 8, vin, it_in));
        let engine = sim.add_component(TransformStreaming::new(
            "engine",
            PixelOp::Identity,
            PixelFormat::Gray8,
            it_in,
            it_out,
            Some(n),
        ));
        sim.add_component(WriteBufferFifo::new("wb", 16, it_out, vout));
        sim.add_component(VideoOut::new(
            "sink", n as usize, None, vout.valid, vout.data,
        ));
        sim.reset().unwrap();
        let mut cycles = 0;
        for _ in 0..(4 * n) {
            sim.step().unwrap();
            cycles += 1;
            if sim
                .component::<TransformStreaming>(engine)
                .unwrap()
                .transferred()
                == n
            {
                break;
            }
        }
        assert!(
            cycles <= n + 8,
            "streaming copy should be ~1 px/cycle, took {cycles} for {n}"
        );
    }

    /// SRAM pipeline (separate SRAMs for input and output, the
    /// saa2vga 2 configuration): uses the sequenced engine and a
    /// paced video source.
    #[test]
    fn sequenced_copy_over_two_srams() {
        let mut sim = Simulator::new();
        let pixels = vec![11u64, 22, 33, 44];
        let n = pixels.len();
        let vin = StreamIface::alloc(&mut sim, "vin", 8).unwrap();
        let it_in = IterIface::alloc(&mut sim, "it_in", 8).unwrap();
        let it_out = IterIface::alloc(&mut sim, "it_out", 8).unwrap();
        let vout = StreamIface::alloc(&mut sim, "vout", 8).unwrap();
        let mem_in = SramPort::alloc(&mut sim, "mi", 16, 8).unwrap();
        let mem_out = SramPort::alloc(&mut sim, "mo", 16, 8).unwrap();
        sim.add_component(mem_in.device("sram_in", 16, 8, 2));
        sim.add_component(mem_out.device("sram_out", 16, 8, 2));
        // Gap 15 between pixels: memory (latency 2, ~5 cycles/txn)
        // keeps up with the decoder.
        sim.add_component(VideoIn::new(
            "src",
            pixels.clone(),
            8,
            15,
            false,
            vin.valid,
            vin.data,
        ));
        sim.add_component(ReadBufferSram::new("rb", 64, 0, 8, vin, it_in, mem_in));
        sim.add_component(TransformSequenced::new(
            "engine",
            PixelOp::Identity,
            PixelFormat::Gray8,
            it_in,
            it_out,
            Some(n as u64),
        ));
        sim.add_component(WriteBufferSram::new("wb", 64, 0, it_out, vout, mem_out));
        let sink = sim.add_component(VideoOut::new("sink", n, None, vout.valid, vout.data));
        sim.reset().unwrap();
        sim.run(2000).unwrap();
        let frames = sim.component::<VideoOut>(sink).unwrap().frames();
        assert_eq!(frames, &[pixels]);
    }
}
