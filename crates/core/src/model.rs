//! The system model: Figure 3 as a data structure.
//!
//! "Figure 3 shows the resulting model. Now data acquisition from the
//! video decoder has been modelled as a read buffer container
//! (rbuffer), while the output video stream is fed into a write
//! buffer container (wbuffer). Access to rbuffer and wbuffer
//! containers is abstracted through rbuffer_it and wbuffer_it
//! iterators respectively." (§3.3)
//!
//! A [`VideoPipelineModel`] is that model: source → read buffer →
//! iterator → algorithm → iterator → write buffer → sink. The
//! physical target of each container is a *binding*, not part of the
//! model: [`VideoPipelineModel::retarget_input`] /
//! [`VideoPipelineModel::retarget_output`] change it without touching
//! anything else — the paper's "embracing change" scenario. Pixel
//! format and bus width are model parameters too; a mismatch inserts
//! the §3.3 width adapters during elaboration.

use crate::algo::{BlurEngine, TransformSequenced, TransformStreaming};
use crate::classify::{ContainerKind, IterKind, IterOp};
use crate::golden::PixelOp;
use crate::hw::{
    ColumnBuffer, ReadBufferFifo, ReadBufferSram, ReadWidthAdapter, WriteBufferFifo,
    WriteBufferSram, WriteWidthAdapter,
};
use crate::iface::{ColumnIface, IterIface, SramPort, StreamIface};
use crate::pixel::{join_pixel, split_pixel, Frame, PixelFormat};
use crate::spec::{ContainerSpec, PhysicalTarget};
use crate::CoreError;
use hdp_sim::devices::{VideoIn, VideoOut};
use hdp_sim::{ComponentId, Simulator};

/// The algorithm placed between the two iterators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Pixel-wise transform; [`PixelOp::Identity`] is the paper's
    /// copy algorithm (the `saa2vga` designs).
    Transform(PixelOp),
    /// The 3×3 blur convolution (the `blur` design). Requires the
    /// input container to be bound to the 3-line buffer.
    Blur,
}

/// The retargetable model of the paper's image-processing example.
#[derive(Debug, Clone)]
pub struct VideoPipelineModel {
    name: String,
    format: PixelFormat,
    frame_width: usize,
    frame_height: usize,
    algorithm: Algorithm,
    input_target: PhysicalTarget,
    output_target: PhysicalTarget,
    buffer_capacity: usize,
    /// Memory/stream word width in bits; narrower than the pixel
    /// format inserts width adapters (§3.3).
    bus_width: usize,
    /// Blanking cycles between source pixels.
    source_gap: u32,
}

impl VideoPipelineModel {
    /// Creates the Figure 3 model with both containers over FIFO
    /// cores (the `saa2vga 1` configuration), a 512-element capacity
    /// and the bus as wide as the pixel.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for frames smaller
    /// than 3×3 when the algorithm is [`Algorithm::Blur`], or any
    /// zero dimension.
    pub fn new(
        name: impl Into<String>,
        format: PixelFormat,
        frame_width: usize,
        frame_height: usize,
        algorithm: Algorithm,
    ) -> Result<Self, CoreError> {
        if frame_width == 0 || frame_height == 0 {
            return Err(CoreError::InvalidParameter {
                name: "frame",
                message: "frame dimensions must be positive".into(),
            });
        }
        if algorithm == Algorithm::Blur && (frame_width < 3 || frame_height < 3) {
            return Err(CoreError::InvalidParameter {
                name: "frame",
                message: "blur needs at least a 3x3 frame".into(),
            });
        }
        let input_target = if algorithm == Algorithm::Blur {
            PhysicalTarget::LineBuffer3 {
                line_width: frame_width,
            }
        } else {
            PhysicalTarget::FifoCore
        };
        Ok(Self {
            name: name.into(),
            format,
            frame_width,
            frame_height,
            algorithm,
            input_target,
            output_target: PhysicalTarget::FifoCore,
            buffer_capacity: 512,
            bus_width: format.bits(),
            source_gap: 0,
        })
    }

    /// The model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pixel format.
    #[must_use]
    pub fn format(&self) -> PixelFormat {
        self.format
    }

    /// The input container's current physical binding.
    #[must_use]
    pub fn input_target(&self) -> PhysicalTarget {
        self.input_target
    }

    /// The output container's current physical binding.
    #[must_use]
    pub fn output_target(&self) -> PhysicalTarget {
        self.output_target
    }

    /// Rebinds the input container — the §3.3 change "the input video
    /// stream is now fed into a RAM". The rest of the model is
    /// untouched.
    #[must_use]
    pub fn retarget_input(mut self, target: PhysicalTarget) -> Self {
        self.input_target = target;
        self
    }

    /// Rebinds the output container.
    #[must_use]
    pub fn retarget_output(mut self, target: PhysicalTarget) -> Self {
        self.output_target = target;
        self
    }

    /// Sets the container capacity in elements.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.buffer_capacity = capacity;
        self
    }

    /// Sets the memory word width — the §3.3 pixel-format scenario:
    /// a 24-bit pixel over an 8-bit bus makes the generated iterators
    /// "perform three consecutive container reads/writes".
    #[must_use]
    pub fn with_bus_width(mut self, bus_width: usize) -> Self {
        self.bus_width = bus_width;
        self
    }

    /// Sets the source blanking gap (cycles between pixels).
    #[must_use]
    pub fn with_source_gap(mut self, gap: u32) -> Self {
        self.source_gap = gap;
        self
    }

    /// Whether elaboration will insert width adapters.
    #[must_use]
    pub fn needs_adaptation(&self) -> bool {
        self.bus_width != self.format.bits()
    }

    /// Validates the model against the library taxonomy (Tables 1
    /// and 2) and the target-mapping rules of §3.4.
    ///
    /// # Errors
    ///
    /// * [`CoreError::IncompatibleTarget`] — a container bound to a
    ///   target that cannot implement it.
    /// * [`CoreError::IncompatibleIterator`] — e.g. the blur column
    ///   iterator on a non-line-buffer target.
    /// * [`CoreError::MissingOperation`] — an algorithm needing an
    ///   operation its iterator kind lacks.
    /// * [`CoreError::InvalidParameter`] — bus width not dividing the
    ///   pixel width, or capacities too small for a frame line.
    pub fn validate(&self) -> Result<(), CoreError> {
        let data_width = self.bus_width;
        if data_width == 0 || !self.format.bits().is_multiple_of(data_width) {
            return Err(CoreError::InvalidParameter {
                name: "bus_width",
                message: format!(
                    "{data_width} bits does not divide the {} pixel",
                    self.format
                ),
            });
        }
        let rbuffer =
            ContainerSpec::new(ContainerKind::ReadBuffer, data_width, self.buffer_capacity)?;
        rbuffer.check_target(self.input_target)?;
        let wbuffer =
            ContainerSpec::new(ContainerKind::WriteBuffer, data_width, self.buffer_capacity)?;
        wbuffer.check_target(self.output_target)?;
        // Iterator attachment per Table 1: the copy/transform input
        // iterator is a forward input iterator on the rbuffer.
        if !ContainerKind::ReadBuffer
            .supported_iterators()
            .contains(&IterKind::Forward)
            || !ContainerKind::ReadBuffer.readable()
        {
            return Err(CoreError::IncompatibleIterator {
                iterator: IterKind::Forward.to_string(),
                container: ContainerKind::ReadBuffer.to_string(),
                reason: "read buffer must admit a forward input iterator".into(),
            });
        }
        // The algorithms need inc+read on the input and inc+write on
        // the output (Table 2).
        for op in [IterOp::Inc, IterOp::Read] {
            if !IterKind::Forward.supports(op) {
                return Err(CoreError::MissingOperation {
                    algorithm: format!("{:?}", self.algorithm),
                    iterator: "rbuffer_it".into(),
                    operation: op.to_string(),
                });
            }
        }
        for op in [IterOp::Inc, IterOp::Write] {
            if !IterKind::Forward.supports(op) {
                return Err(CoreError::MissingOperation {
                    algorithm: format!("{:?}", self.algorithm),
                    iterator: "wbuffer_it".into(),
                    operation: op.to_string(),
                });
            }
        }
        match self.algorithm {
            Algorithm::Blur => {
                // The specialised column iterator only exists on the
                // 3-line buffer.
                if !matches!(self.input_target, PhysicalTarget::LineBuffer3 { .. }) {
                    return Err(CoreError::IncompatibleIterator {
                        iterator: "column".into(),
                        container: ContainerKind::ReadBuffer.to_string(),
                        reason: format!(
                            "the blur column iterator needs the 3-line buffer, not {}",
                            self.input_target
                        ),
                    });
                }
                if self.needs_adaptation() {
                    return Err(CoreError::InvalidParameter {
                        name: "bus_width",
                        message: "the column iterator does not support width adaptation".into(),
                    });
                }
            }
            Algorithm::Transform(_) => {}
        }
        Ok(())
    }

    /// Elaborates the model into a running simulation fed with
    /// `frame`, choosing engine variants and inserting adapters the
    /// way the paper's generator would.
    ///
    /// # Errors
    ///
    /// Propagates validation failures and simulator wiring errors.
    pub fn elaborate(&self, frame: &Frame) -> Result<Elaborated, CoreError> {
        self.validate()?;
        if frame.width() != self.frame_width
            || frame.height() != self.frame_height
            || frame.format() != self.format
        {
            return Err(CoreError::InvalidParameter {
                name: "frame",
                message: "frame does not match the model dimensions/format".into(),
            });
        }
        let mut sim = Simulator::new();
        let pixel_bits = self.format.bits();
        let bus_bits = self.bus_width;
        let factor = pixel_bits / bus_bits;
        // The source emits bus-width words (the decoder's bus *is* the
        // container's input bus).
        let words: Vec<u64> = frame
            .pixels()
            .iter()
            .flat_map(|&p| split_pixel(p, bus_bits, factor))
            .collect();
        let n_words = words.len();
        let vin = StreamIface::alloc(&mut sim, "vin", bus_bits)?;
        sim.add_component(VideoIn::new(
            "video_decoder",
            words,
            bus_bits,
            self.source_gap,
            false,
            vin.valid,
            vin.data,
        ));
        // Output stream and sink.
        let vout = StreamIface::alloc(&mut sim, "vout", bus_bits)?;
        let expected_out_words = match self.algorithm {
            Algorithm::Transform(_) => n_words,
            Algorithm::Blur => (self.frame_width - 2) * (self.frame_height - 2),
        };
        let sink = sim.add_component(VideoOut::new(
            "vga_coder",
            expected_out_words,
            None,
            vout.valid,
            vout.data,
        ));
        // Output container.
        let wb_narrow = IterIface::alloc(&mut sim, "wbuffer_it", bus_bits)?;
        match self.output_target {
            PhysicalTarget::FifoCore => {
                sim.add_component(WriteBufferFifo::new(
                    "wbuffer_fifo",
                    self.buffer_capacity,
                    wb_narrow,
                    vout,
                ));
            }
            PhysicalTarget::ExternalSram { latency } => {
                let port = SramPort::alloc(&mut sim, "wb_mem", 16, bus_bits)?;
                sim.add_component(port.device("sram_out", 16, bus_bits, latency));
                sim.add_component(WriteBufferSram::new(
                    "wbuffer_sram",
                    self.buffer_capacity,
                    0,
                    wb_narrow,
                    vout,
                    port,
                ));
            }
            other => {
                return Err(CoreError::IncompatibleTarget {
                    container: ContainerKind::WriteBuffer.to_string(),
                    target: other.to_string(),
                })
            }
        }
        // Width adaptation on the output side.
        let out_iface = if factor > 1 {
            let wide = IterIface::alloc(&mut sim, "wbuffer_it_wide", pixel_bits)?;
            sim.add_component(WriteWidthAdapter::new(
                "wb_adapter",
                pixel_bits,
                bus_bits,
                wide,
                wb_narrow,
            ));
            wide
        } else {
            wb_narrow
        };
        // Input container, engine.
        let engine = match self.algorithm {
            Algorithm::Blur => {
                let col = ColumnIface::alloc(&mut sim, "rbuffer_it", bus_bits)?;
                sim.add_component(ColumnBuffer::new(
                    "rbuffer_lines",
                    self.frame_width,
                    bus_bits,
                    vin,
                    col,
                ));
                EngineHandle::Blur(sim.add_component(BlurEngine::new(
                    "blur",
                    self.format,
                    self.frame_width,
                    col,
                    out_iface,
                )))
            }
            Algorithm::Transform(op) => {
                let rb_narrow = IterIface::alloc(&mut sim, "rbuffer_it", bus_bits)?;
                let single_cycle_in = match self.input_target {
                    PhysicalTarget::FifoCore => {
                        sim.add_component(ReadBufferFifo::new(
                            "rbuffer_fifo",
                            self.buffer_capacity,
                            bus_bits,
                            vin,
                            rb_narrow,
                        ));
                        true
                    }
                    PhysicalTarget::ExternalSram { latency } => {
                        let port = SramPort::alloc(&mut sim, "rb_mem", 16, bus_bits)?;
                        sim.add_component(port.device("sram_in", 16, bus_bits, latency));
                        sim.add_component(ReadBufferSram::new(
                            "rbuffer_sram",
                            self.buffer_capacity,
                            0,
                            bus_bits,
                            vin,
                            rb_narrow,
                            port,
                        ));
                        false
                    }
                    other => {
                        return Err(CoreError::IncompatibleTarget {
                            container: ContainerKind::ReadBuffer.to_string(),
                            target: other.to_string(),
                        })
                    }
                };
                let in_iface = if factor > 1 {
                    let wide = IterIface::alloc(&mut sim, "rbuffer_it_wide", pixel_bits)?;
                    sim.add_component(ReadWidthAdapter::new(
                        "rb_adapter",
                        pixel_bits,
                        bus_bits,
                        wide,
                        rb_narrow,
                    ));
                    wide
                } else {
                    rb_narrow
                };
                let single_cycle_out = self.output_target == PhysicalTarget::FifoCore;
                let limit = Some((self.frame_width * self.frame_height) as u64);
                // The generator's implementation selection: streaming
                // when every iterator completes in one cycle.
                if single_cycle_in && single_cycle_out && factor == 1 {
                    EngineHandle::Streaming(sim.add_component(TransformStreaming::new(
                        "transform",
                        op,
                        self.format,
                        in_iface,
                        out_iface,
                        limit,
                    )))
                } else {
                    EngineHandle::Sequenced(sim.add_component(TransformSequenced::new(
                        "transform",
                        op,
                        self.format,
                        in_iface,
                        out_iface,
                        limit,
                    )))
                }
            }
        };
        sim.reset()?;
        Ok(Elaborated {
            sim,
            sink,
            engine,
            bus_bits,
            factor,
            format: self.format,
            out_width: match self.algorithm {
                Algorithm::Transform(_) => self.frame_width,
                Algorithm::Blur => self.frame_width - 2,
            },
            out_height: match self.algorithm {
                Algorithm::Transform(_) => self.frame_height,
                Algorithm::Blur => self.frame_height - 2,
            },
        })
    }

    /// Convenience: elaborate, run until one output frame is
    /// collected, and return it.
    ///
    /// # Errors
    ///
    /// Propagates elaboration and simulation errors, and reports a
    /// timeout as [`CoreError::InvalidParameter`].
    pub fn process_frame(&self, frame: &Frame) -> Result<Frame, CoreError> {
        let mut elaborated = self.elaborate(frame)?;
        elaborated.run_to_completion()?;
        elaborated.output_frame()
    }
}

/// Handle to the elaborated engine, for post-run inspection.
#[derive(Debug, Clone, Copy)]
pub enum EngineHandle {
    /// A [`TransformStreaming`] instance.
    Streaming(ComponentId),
    /// A [`TransformSequenced`] instance.
    Sequenced(ComponentId),
    /// A [`BlurEngine`] instance.
    Blur(ComponentId),
}

/// A running, elaborated pipeline.
#[derive(Debug)]
pub struct Elaborated {
    /// The simulator holding the whole design.
    pub sim: Simulator,
    sink: ComponentId,
    engine: EngineHandle,
    bus_bits: usize,
    factor: usize,
    format: PixelFormat,
    out_width: usize,
    out_height: usize,
}

impl Elaborated {
    /// Which engine variant elaboration selected.
    #[must_use]
    pub fn engine(&self) -> EngineHandle {
        self.engine
    }

    /// Runs until the sink has a complete frame (or a generous cycle
    /// budget is exhausted).
    ///
    /// # Errors
    ///
    /// Simulation errors, or [`CoreError::InvalidParameter`] on
    /// timeout.
    pub fn run_to_completion(&mut self) -> Result<(), CoreError> {
        let budget = 400_000u64;
        let sink = self.sink;
        let mut remaining = budget;
        while remaining > 0 {
            let chunk = remaining.min(512);
            self.sim.run(chunk)?;
            remaining -= chunk;
            let frames = self
                .sim
                .component::<VideoOut>(sink)
                .expect("sink exists")
                .frames();
            if !frames.is_empty() {
                return Ok(());
            }
        }
        Err(CoreError::InvalidParameter {
            name: "run_to_completion",
            message: format!("no complete frame after {budget} cycles"),
        })
    }

    /// The first collected output frame, reassembling bus words into
    /// pixels when width adapters are in play.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if no frame has been
    /// collected yet.
    pub fn output_frame(&self) -> Result<Frame, CoreError> {
        let frames = self
            .sim
            .component::<VideoOut>(self.sink)
            .expect("sink exists")
            .frames();
        let Some(words) = frames.first() else {
            return Err(CoreError::InvalidParameter {
                name: "output_frame",
                message: "no complete frame collected".into(),
            });
        };
        let pixels: Vec<u64> = words
            .chunks(self.factor)
            .map(|chunk| join_pixel(chunk, self.bus_bits))
            .collect();
        Frame::from_pixels(self.out_width, self.out_height, self.format, pixels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden;

    #[test]
    fn model_validates_the_fifo_configuration() {
        let m = VideoPipelineModel::new(
            "saa2vga",
            PixelFormat::Gray8,
            8,
            8,
            Algorithm::Transform(PixelOp::Identity),
        )
        .unwrap();
        m.validate().unwrap();
        assert_eq!(m.input_target(), PhysicalTarget::FifoCore);
    }

    #[test]
    fn retarget_keeps_model_valid() {
        let m = VideoPipelineModel::new(
            "saa2vga",
            PixelFormat::Gray8,
            8,
            8,
            Algorithm::Transform(PixelOp::Identity),
        )
        .unwrap()
        .retarget_input(PhysicalTarget::ExternalSram { latency: 2 })
        .retarget_output(PhysicalTarget::ExternalSram { latency: 2 });
        m.validate().unwrap();
    }

    #[test]
    fn vector_target_for_buffer_is_rejected() {
        let m = VideoPipelineModel::new(
            "bad",
            PixelFormat::Gray8,
            8,
            8,
            Algorithm::Transform(PixelOp::Identity),
        )
        .unwrap()
        .retarget_input(PhysicalTarget::LifoCore);
        assert!(matches!(
            m.validate(),
            Err(CoreError::IncompatibleTarget { .. })
        ));
    }

    #[test]
    fn blur_requires_line_buffer() {
        let m = VideoPipelineModel::new("blur", PixelFormat::Gray8, 8, 8, Algorithm::Blur)
            .unwrap()
            .retarget_input(PhysicalTarget::FifoCore);
        assert!(matches!(
            m.validate(),
            Err(CoreError::IncompatibleIterator { .. })
        ));
    }

    #[test]
    fn bad_bus_width_is_rejected() {
        let m = VideoPipelineModel::new(
            "bad",
            PixelFormat::Rgb24,
            8,
            8,
            Algorithm::Transform(PixelOp::Identity),
        )
        .unwrap()
        .with_bus_width(7);
        assert!(matches!(
            m.validate(),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn fifo_pipeline_copies_frame() {
        let frame = Frame::noise(8, 6, PixelFormat::Gray8, 3);
        let m = VideoPipelineModel::new(
            "saa2vga_1",
            PixelFormat::Gray8,
            8,
            6,
            Algorithm::Transform(PixelOp::Identity),
        )
        .unwrap();
        let out = m.process_frame(&frame).unwrap();
        assert_eq!(out, frame);
    }

    #[test]
    fn sram_pipeline_copies_frame_without_model_change() {
        let frame = Frame::noise(6, 4, PixelFormat::Gray8, 4);
        let m = VideoPipelineModel::new(
            "saa2vga_2",
            PixelFormat::Gray8,
            6,
            4,
            Algorithm::Transform(PixelOp::Identity),
        )
        .unwrap()
        .retarget_input(PhysicalTarget::ExternalSram { latency: 2 })
        .retarget_output(PhysicalTarget::ExternalSram { latency: 2 })
        .with_source_gap(15);
        let out = m.process_frame(&frame).unwrap();
        assert_eq!(out, frame);
    }

    #[test]
    fn engine_selection_follows_targets() {
        let frame = Frame::gradient(4, 4, PixelFormat::Gray8);
        let fifo = VideoPipelineModel::new(
            "m1",
            PixelFormat::Gray8,
            4,
            4,
            Algorithm::Transform(PixelOp::Identity),
        )
        .unwrap();
        let e1 = fifo.elaborate(&frame).unwrap();
        assert!(matches!(e1.engine(), EngineHandle::Streaming(_)));
        let sram = fifo
            .clone()
            .retarget_input(PhysicalTarget::ExternalSram { latency: 1 })
            .with_source_gap(15);
        let e2 = sram.elaborate(&frame).unwrap();
        assert!(matches!(e2.engine(), EngineHandle::Sequenced(_)));
    }

    #[test]
    fn blur_pipeline_matches_golden() {
        let frame = Frame::noise(8, 6, PixelFormat::Gray8, 11);
        let m = VideoPipelineModel::new("blur", PixelFormat::Gray8, 8, 6, Algorithm::Blur)
            .unwrap()
            .with_source_gap(1);
        let out = m.process_frame(&frame).unwrap();
        let golden = golden::blur3x3(&frame, golden::BlurBorder::Crop).unwrap();
        assert_eq!(out, golden);
    }

    #[test]
    fn rgb_over_8bit_bus_inserts_adapters_and_copies() {
        let frame = Frame::noise(4, 3, PixelFormat::Rgb24, 5);
        let m = VideoPipelineModel::new(
            "rgb_narrow",
            PixelFormat::Rgb24,
            4,
            3,
            Algorithm::Transform(PixelOp::Identity),
        )
        .unwrap()
        .with_bus_width(8)
        .with_source_gap(8);
        assert!(m.needs_adaptation());
        let out = m.process_frame(&frame).unwrap();
        assert_eq!(out, frame);
    }

    #[test]
    fn rgb_over_24bit_bus_needs_no_adapters() {
        let frame = Frame::noise(4, 3, PixelFormat::Rgb24, 6);
        let m = VideoPipelineModel::new(
            "rgb_wide",
            PixelFormat::Rgb24,
            4,
            3,
            Algorithm::Transform(PixelOp::Identity),
        )
        .unwrap();
        assert!(!m.needs_adaptation());
        let out = m.process_frame(&frame).unwrap();
        assert_eq!(out, frame);
    }

    #[test]
    fn invert_pipeline_matches_golden() {
        let frame = Frame::noise(5, 5, PixelFormat::Gray8, 8);
        let m = VideoPipelineModel::new(
            "invert",
            PixelFormat::Gray8,
            5,
            5,
            Algorithm::Transform(PixelOp::Invert),
        )
        .unwrap();
        let out = m.process_frame(&frame).unwrap();
        assert_eq!(out, golden::pixel_map(&frame, PixelOp::Invert));
    }

    #[test]
    fn mismatched_frame_is_rejected() {
        let frame = Frame::gradient(4, 4, PixelFormat::Gray8);
        let m = VideoPipelineModel::new(
            "m",
            PixelFormat::Gray8,
            8,
            8,
            Algorithm::Transform(PixelOp::Identity),
        )
        .unwrap();
        assert!(m.elaborate(&frame).is_err());
    }
}
