//! The hardware design pattern catalog.
//!
//! "There is a need to develop a hardware version of a design pattern
//! catalog, similar to what is already available in software" (§3, §5).
//! This module seeds that catalog: the GoF patterns discussed by the
//! paper and its related work, each annotated with its class, its
//! hardware status and how (or whether) it maps to hardware design.

use std::fmt;

/// GoF pattern classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternClass {
    /// Object-creation patterns.
    Creational,
    /// Composition patterns.
    Structural,
    /// Interaction/algorithm patterns.
    Behavioural,
}

impl fmt::Display for PatternClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PatternClass::Creational => "creational",
            PatternClass::Structural => "structural",
            PatternClass::Behavioural => "behavioural",
        })
    }
}

/// How far the pattern has been translated to hardware design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HardwareStatus {
    /// Already close to established hardware practice (the prior work
    /// the paper cites covers these).
    EstablishedPractice,
    /// Translated by this paper (and implemented by this library).
    ThisLibrary,
    /// A candidate the paper leaves open.
    Open,
    /// The paper notes many patterns have no hardware counterpart.
    NoCounterpart,
}

/// One catalog entry.
#[derive(Debug, Clone)]
pub struct PatternEntry {
    /// Pattern name (GoF terminology).
    pub name: &'static str,
    /// GoF class.
    pub class: PatternClass,
    /// Hardware translation status.
    pub status: HardwareStatus,
    /// How the pattern reads in hardware terms.
    pub hardware_reading: &'static str,
}

/// The seeded catalog, in (class, name) order.
#[must_use]
pub fn catalog() -> Vec<PatternEntry> {
    vec![
        PatternEntry {
            name: "Builder",
            class: PatternClass::Creational,
            status: HardwareStatus::EstablishedPractice,
            hardware_reading: "generator scripts assembling parameterized component instances \
                               (the metaprogramming layer itself)",
        },
        PatternEntry {
            name: "Prototype",
            class: PatternClass::Creational,
            status: HardwareStatus::EstablishedPractice,
            hardware_reading: "template instantiation of pre-characterised IP configurations",
        },
        PatternEntry {
            name: "Singleton",
            class: PatternClass::Creational,
            status: HardwareStatus::NoCounterpart,
            hardware_reading: "every hardware instance is physical; uniqueness is a floorplan \
                               property, not a pattern",
        },
        PatternEntry {
            name: "Adapter",
            class: PatternClass::Structural,
            status: HardwareStatus::EstablishedPractice,
            hardware_reading: "interface wrappers / bus bridges (wrapper generation in IP \
                               methodologies)",
        },
        PatternEntry {
            name: "Facade",
            class: PatternClass::Structural,
            status: HardwareStatus::EstablishedPractice,
            hardware_reading: "a bus interface unit hiding a subsystem behind one port map",
        },
        PatternEntry {
            name: "Proxy",
            class: PatternClass::Structural,
            status: HardwareStatus::EstablishedPractice,
            hardware_reading: "registered or arbitrated stand-ins for a shared physical \
                               resource (the generated SRAM arbiter port)",
        },
        PatternEntry {
            name: "Iterator",
            class: PatternClass::Behavioural,
            status: HardwareStatus::ThisLibrary,
            hardware_reading: "a traversal interface (inc/dec/read/write/index) decoupling \
                               algorithms from container implementations; concrete iterators \
                               instantiated at design time",
        },
        PatternEntry {
            name: "Strategy",
            class: PatternClass::Behavioural,
            status: HardwareStatus::Open,
            hardware_reading: "selectable datapath variants behind one operation interface \
                               (candidate: the per-target engine selection of the generator)",
        },
        PatternEntry {
            name: "Observer",
            class: PatternClass::Behavioural,
            status: HardwareStatus::Open,
            hardware_reading: "event/interrupt fan-out to subscribed components",
        },
        PatternEntry {
            name: "Template Method",
            class: PatternClass::Behavioural,
            status: HardwareStatus::Open,
            hardware_reading: "algorithm metamodels with target-specific hook fragments (the \
                               paper's deferred future work)",
        },
    ]
}

/// Catalog entries of one class.
#[must_use]
pub fn by_class(class: PatternClass) -> Vec<PatternEntry> {
    catalog().into_iter().filter(|e| e.class == class).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterator_is_the_behavioural_contribution() {
        let it = catalog()
            .into_iter()
            .find(|e| e.name == "Iterator")
            .expect("iterator in catalog");
        assert_eq!(it.class, PatternClass::Behavioural);
        assert_eq!(it.status, HardwareStatus::ThisLibrary);
    }

    #[test]
    fn prior_work_covers_structural_and_creational_only() {
        // "all previously published works are entirely devoted to
        // structural and creational patterns" — no behavioural entry
        // may be EstablishedPractice.
        for e in catalog() {
            if e.status == HardwareStatus::EstablishedPractice {
                assert_ne!(e.class, PatternClass::Behavioural, "{}", e.name);
            }
        }
    }

    #[test]
    fn every_class_is_represented() {
        for class in [
            PatternClass::Creational,
            PatternClass::Structural,
            PatternClass::Behavioural,
        ] {
            assert!(!by_class(class).is_empty(), "{class}");
        }
    }

    #[test]
    fn some_patterns_have_no_counterpart() {
        // "Many of the most successful design patterns do not have a
        // hardware counterpart."
        assert!(catalog()
            .iter()
            .any(|e| e.status == HardwareStatus::NoCounterpart));
    }

    #[test]
    fn readings_are_nonempty() {
        for e in catalog() {
            assert!(!e.hardware_reading.is_empty(), "{}", e.name);
        }
    }
}
